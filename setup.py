"""Setuptools entry point.

The pyproject.toml carries all metadata; this file exists so the package can
be installed editable (``pip install -e . --no-build-isolation``) on
environments whose setuptools predates PEP 660 wheel-based editable installs
(no ``wheel`` package available offline).
"""

from setuptools import setup

setup()
