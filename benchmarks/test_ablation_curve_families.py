"""Ablation: power-law curves vs other parametric families (Section 4.1).

The paper argues (following Hestness et al. and Domhan et al.) that "a
power-law curve fits as well as any other curve" for per-slice loss vs
training-set size.  This ablation measures real learning-curve points on the
fashion-like dataset and fits every family in the zoo, comparing weighted
log-space RMSE.  Shape asserted: the power-law family (with or without floor)
is the best or within a small margin of the best on the large majority of
slices.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import SPEED, emit

from repro.curves.estimator import CurveEstimationConfig, LearningCurveEstimator
from repro.curves.parametric import CURVE_FAMILIES, fit_family
from repro.datasets.fashion import fashion_like_task
from repro.experiments.config import fast_training_config
from repro.utils.tables import format_table


def measure_and_fit():
    task = fashion_like_task()
    sliced = task.initial_sliced_dataset(250, validation_size=SPEED["validation_size"], random_state=0)
    estimator = LearningCurveEstimator(
        trainer_config=fast_training_config(epochs=SPEED["epochs"]),
        config=CurveEstimationConfig(n_points=7, n_repeats=2, min_fraction=0.15),
        random_state=1,
    )
    points = estimator.collect_points(sliced)

    fits = {}
    for name in sliced.names:
        slice_points = [p for p in points if p.slice_name == name]
        sizes = np.array([p.size for p in slice_points], dtype=float)
        losses = np.array([p.loss for p in slice_points], dtype=float)
        fits[name] = {
            family: fit_family(family, sizes, losses).rmse for family in CURVE_FAMILIES
        }
    return fits


def test_ablation_power_law_fits_as_well_as_any_family(run_once):
    fits = run_once(measure_and_fit)

    families = sorted(CURVE_FAMILIES)
    rows = [
        [slice_name] + [f"{rmses[family]:.4f}" for family in families]
        for slice_name, rmses in fits.items()
    ]
    emit(
        "Ablation — weighted log-RMSE of each curve family per slice (fashion_like)",
        format_table(headers=["slice", *families], rows=rows),
    )

    power_competitive = 0
    for slice_name, rmses in fits.items():
        best = min(rmses.values())
        power_best = min(rmses["power_law"], rmses["power_law_floor"])
        if power_best <= best * 1.25 + 1e-6:
            power_competitive += 1
    # The power-law family is (near-)best on the large majority of slices —
    # the paper's justification for using it exclusively.
    assert power_competitive >= 0.8 * len(fits)
