"""Figure 9: learning curves fitted on small slices deviate from the truth.

The paper grows one Fashion-MNIST slice and refits its learning curve at each
size: curves fitted when the slice is small deviate most from the curve
fitted on the full data, which is why Slice Tuner re-estimates curves
iteratively.  This benchmark refits the "Shirt" slice's curve at three slice
sizes and asserts that the predicted loss at a large reference size gets
closer to the large-data curve's prediction as the fitting size grows.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import SPEED, emit

from repro.curves.estimator import CurveEstimationConfig, LearningCurveEstimator
from repro.datasets.fashion import fashion_like_task
from repro.experiments.config import fast_training_config
from repro.utils.tables import format_table

TARGET_SLICE = "Shirt"
FIT_SIZES = (80, 300, 1000)
REFERENCE_SIZE = 2000


def fit_curves_at_sizes():
    task = fashion_like_task()
    fitted = {}
    for size in FIT_SIZES:
        sizes = {name: 300 for name in task.slice_names}
        sizes[TARGET_SLICE] = size
        sliced = task.initial_sliced_dataset(
            sizes, validation_size=SPEED["validation_size"], random_state=0
        )
        estimator = LearningCurveEstimator(
            trainer_config=fast_training_config(epochs=SPEED["epochs"]),
            config=CurveEstimationConfig(n_points=6, n_repeats=2, min_fraction=0.15),
            random_state=1,
        )
        fitted[size] = estimator.estimate(sliced)[TARGET_SLICE]
    return fitted


def test_figure9_small_slice_curves_deviate(run_once):
    fitted = run_once(fit_curves_at_sizes)

    reference_curve = fitted[max(FIT_SIZES)]
    reference_prediction = reference_curve.predict(REFERENCE_SIZE)
    rows = [
        [
            size,
            curve.describe(),
            f"{curve.predict(REFERENCE_SIZE):.3f}",
            f"{abs(curve.predict(REFERENCE_SIZE) - reference_prediction):.3f}",
        ]
        for size, curve in fitted.items()
    ]
    emit(
        f"Figure 9 — {TARGET_SLICE} curve refitted as the slice grows "
        f"(prediction at {REFERENCE_SIZE} examples)",
        format_table(
            headers=["slice size at fit", "fitted curve", f"predicted loss @{REFERENCE_SIZE}", "deviation from largest fit"],
            rows=rows,
        ),
    )

    deviations = {
        size: abs(curve.predict(REFERENCE_SIZE) - reference_prediction)
        for size, curve in fitted.items()
    }
    # The curve fitted on the smallest slice deviates the most from the curve
    # fitted with the most data — the paper's justification for iterative
    # curve updates.
    assert deviations[FIT_SIZES[0]] >= deviations[FIT_SIZES[1]] - 0.02
    assert deviations[FIT_SIZES[0]] > deviations[FIT_SIZES[-1]]
