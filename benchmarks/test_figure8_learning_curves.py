"""Figure 8: fitted learning curves on all four datasets.

The paper shows, per dataset, the fitted power-law curves of two slices; even
"homogeneous" datasets exhibit clearly different curves per slice.  This
benchmark fits curves for every slice of every dataset with the amortized
estimator and asserts:

* every fitted curve has positive parameters and decreasing predictions,
* within each dataset the slices genuinely differ (spread of fitted losses),
* the digit slices of Mixed-MNIST have steeper curves than the clothing
  slices (the Figure 8b contrast), and
* the AdultCensus curves are the flattest of all datasets (Figure 8d).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import BASE_SIZES, SPEED, emit

from repro.curves.estimator import CurveEstimationConfig, LearningCurveEstimator
from repro.datasets.mixed import DIGIT_CLASSES
from repro.datasets.registry import build_task
from repro.experiments.config import fast_training_config
from repro.utils.tables import format_table

DATASETS = ("fashion_like", "mixed_like", "faces_like", "adult_like")


def fit_all_curves():
    curves_by_dataset = {}
    for dataset in DATASETS:
        task = build_task(dataset)
        sliced = task.initial_sliced_dataset(
            BASE_SIZES[dataset], validation_size=SPEED["validation_size"], random_state=0
        )
        estimator = LearningCurveEstimator(
            trainer_config=fast_training_config(epochs=SPEED["epochs"]),
            config=CurveEstimationConfig(n_points=6, n_repeats=2, min_fraction=0.15),
            random_state=1,
        )
        curves_by_dataset[dataset] = estimator.estimate(sliced)
    return curves_by_dataset


def test_figure8_learning_curves(run_once):
    curves_by_dataset = run_once(fit_all_curves)

    rows = []
    for dataset, curves in curves_by_dataset.items():
        for name, curve in curves.items():
            rows.append([dataset, name, f"{curve.b:.3f}", f"{curve.a:.3f}", f"{curve.reliability:.2f}"])
    emit(
        "Figure 8 — fitted power-law learning curves (loss = b * size^-a)",
        format_table(headers=["dataset", "slice", "b", "a", "reliability"], rows=rows),
    )

    for dataset, curves in curves_by_dataset.items():
        for curve in curves.values():
            assert curve.b > 0 and curve.a > 0
            assert curve.predict(50) > curve.predict(5000)
        # Slices within a dataset have visibly different current losses (the
        # binary adult task has the mildest spread, hence the modest bound).
        current = [c.predict(BASE_SIZES[dataset]) for c in curves.values()]
        assert max(current) > 1.15 * min(current)

    # Figure 8b: digits learn faster (steeper exponents) than clothing slices.
    mixed = curves_by_dataset["mixed_like"]
    digit_a = np.mean([mixed[name].a for name in DIGIT_CLASSES])
    clothing_a = np.mean([mixed[name].a for name in mixed if name not in DIGIT_CLASSES])
    assert digit_a > clothing_a

    # Figure 8d: the AdultCensus-like curves are flatter than the multi-class
    # image-like datasets' curves (the paper's 0.06-0.10 vs 0.2-0.93).
    mean_exponent = {
        dataset: float(np.mean([c.a for c in curves.values()]))
        for dataset, curves in curves_by_dataset.items()
    }
    assert mean_exponent["adult_like"] < np.mean(
        [mean_exponent["fashion_like"], mean_exponent["mixed_like"]]
    )
