"""Table 9 (Appendix B): a deeper model on the Fashion-MNIST-like dataset.

The paper repeats the basic-setting comparison with ResNet-18 instead of the
small CNN and finds the same ordering (Moderate beats the baselines), with
overall losses higher because the big model is overkill for the modest
dataset.  The deep-model stand-in here is an MLP with two hidden layers (the
linear softmax model plays the small CNN's role).  Shapes asserted:

* Moderate has the best Avg. EER of the three methods with the deep model,
* Moderate's loss is not meaningfully worse than the best baseline.
"""

from __future__ import annotations

import pytest

from conftest import emit, experiment_config

from repro.experiments.reporting import methods_table
from repro.experiments.runner import compare_methods

METHODS = ("uniform", "water_filling", "moderate")


def run_table9():
    config = experiment_config(
        "fashion_like",
        methods=METHODS,
        lam=0.1,
        budget=1500.0,
        seed=17,
        trials=2,
        model="mlp",
        hidden_sizes=(32, 16),
    )
    return compare_methods(config, include_original=True)


def test_table9_deep_model(run_once):
    aggregates = run_once(run_table9)

    emit(
        "Table 9 — deeper model (2-hidden-layer MLP) on fashion_like",
        methods_table(aggregates, method_order=["original", *METHODS]),
    )

    moderate = aggregates["moderate"]
    best_baseline_eer = min(
        aggregates["uniform"].avg_eer_mean, aggregates["water_filling"].avg_eer_mean
    )
    best_baseline_loss = min(
        aggregates["uniform"].loss_mean, aggregates["water_filling"].loss_mean
    )
    assert moderate.avg_eer_mean <= best_baseline_eer + 0.01
    assert moderate.loss_mean <= best_baseline_loss * 1.08 + 0.01
    # Acquisition helps the deep model too.
    assert moderate.loss_mean < aggregates["original"].loss_mean
