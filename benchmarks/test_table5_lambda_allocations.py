"""Table 5: per-slice allocations as lambda varies (Fashion-MNIST-like).

The paper's Table 5 shows that with larger lambda the Moderate method shifts
its acquisitions towards the highest-loss slices (slices #2/#4/#6 of
Fashion-MNIST; Pullover/Coat/Shirt here) and away from the easy slices.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, experiment_config

from repro.datasets.fashion import FASHION_CLASSES
from repro.experiments.reporting import allocations_table
from repro.experiments.runner import compare_methods

HARD_SLICES = ("Pullover", "Coat", "Shirt")
LAMBDAS = (0.0, 10.0)


def run_allocation_sweep():
    allocations = {}
    for lam in LAMBDAS:
        config = experiment_config(
            "fashion_like", methods=("moderate",), lam=lam, seed=47, trials=2
        )
        allocations[lam] = compare_methods(config, include_original=False)["moderate"]
    return allocations


def test_table5_lambda_allocations(run_once):
    allocations = run_once(run_allocation_sweep)

    emit(
        "Table 5 — Moderate allocations per slice for lambda in {0, 10}",
        allocations_table(
            {f"lambda={lam}": agg for lam, agg in allocations.items()},
            slice_names=list(FASHION_CLASSES),
        ),
    )

    shares = {}
    for lam, aggregate in allocations.items():
        total = sum(aggregate.acquired_mean.values())
        hard = sum(aggregate.acquired_mean[name] for name in HARD_SLICES)
        shares[lam] = hard / max(total, 1.0)

    # With a strong fairness emphasis the hard (high-loss) slices receive a
    # larger share of the budget than with lambda = 0.
    assert shares[10.0] > shares[0.0]
    # And in absolute terms they dominate the lambda=10 allocation.
    assert shares[10.0] > 0.45
