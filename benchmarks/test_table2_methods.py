"""Table 2: Slice Tuner methods compared on all four datasets.

The paper's Table 2 reports Loss and Avg./Max. EER for Original (no
acquisition), One-shot, and the three iterative variants on every dataset.
The shapes asserted here:

* every Slice Tuner method improves both loss and unfairness over Original,
* the iterative variants match or beat One-shot on unfairness (they can
  adjust over-shooting allocations), and
* Conservative performs at least as many iterations as Aggressive.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import ALL_DATASETS, emit, experiment_config

from repro.experiments.reporting import methods_table
from repro.experiments.runner import compare_methods

METHODS = ("oneshot", "aggressive", "moderate", "conservative")


def run_table2():
    results = {}
    for dataset in ALL_DATASETS:
        # Three trials: the 2-trial means are noisy enough that the oneshot
        # vs iterative Avg. EER comparison below flips sign run to run.
        config = experiment_config(dataset, methods=METHODS, lam=1.0, seed=11, trials=3)
        results[dataset] = compare_methods(config, include_original=True)
    return results


def test_table2_slice_tuner_methods(run_once):
    results = run_once(run_table2)

    for dataset, aggregates in results.items():
        emit(
            f"Table 2 — Slice Tuner methods on {dataset}",
            methods_table(aggregates, method_order=["original", *METHODS]),
        )

    improvements = 0
    comparisons = 0
    for dataset, aggregates in results.items():
        original = aggregates["original"]
        for method in METHODS:
            aggregate = aggregates[method]
            comparisons += 2
            improvements += int(aggregate.avg_eer_mean < original.avg_eer_mean)
            improvements += int(aggregate.loss_mean < original.loss_mean)
            # The iterative variants (the paper's recommended methods) must
            # improve unfairness and not hurt the loss; One-shot is allowed
            # more slack because, as the paper observes, it can overshoot.
            if method == "oneshot":
                assert aggregate.avg_eer_mean < original.avg_eer_mean + 0.05
            else:
                assert aggregate.avg_eer_mean < original.avg_eer_mean + 0.02, (
                    f"{method} on {dataset} did not improve Avg. EER"
                )
                assert aggregate.loss_mean < original.loss_mean + 0.03, (
                    f"{method} on {dataset} hurt the loss"
                )

        # Iterative variants are competitive with One-shot on unfairness.
        best_iterative_eer = min(
            aggregates[m].avg_eer_mean for m in ("aggressive", "moderate", "conservative")
        )
        assert best_iterative_eer <= aggregates["oneshot"].avg_eer_mean + 0.02

        # Conservative iterates at least as much as Aggressive.
        assert (
            aggregates["conservative"].iterations_mean
            >= aggregates["aggressive"].iterations_mean - 1e-9
        )

    # Overall, the clear majority of (method, dataset) cells strictly improve
    # on Original, as in the paper.
    assert improvements >= 0.6 * comparisons
