"""Table 4: the effect of the loss/fairness weight lambda.

The paper varies lambda in {0, 0.1, 1, 10} for the Moderate method: larger
lambda lowers Avg./Max. EER at the price of a (slightly) higher loss.  The
shapes asserted here on two datasets:

* Avg. EER at the largest lambda is lower than at lambda = 0, and
* loss at the largest lambda is at least as high as at lambda = 0 (the
  trade-off direction).
"""

from __future__ import annotations

import pytest

from conftest import emit, experiment_config

from repro.experiments.runner import compare_methods
from repro.utils.tables import format_table

LAMBDAS = (0.0, 0.1, 1.0, 10.0)
DATASETS = ("fashion_like", "mixed_like")


def run_lambda_sweep():
    results = {}
    for dataset in DATASETS:
        per_lambda = {}
        for lam in LAMBDAS:
            config = experiment_config(
                dataset, methods=("moderate",), lam=lam, seed=31, trials=2
            )
            per_lambda[lam] = compare_methods(config, include_original=False)["moderate"]
        results[dataset] = per_lambda
    return results


def test_table4_lambda_tradeoff(run_once):
    results = run_once(run_lambda_sweep)

    for dataset, per_lambda in results.items():
        rows = [
            [
                lam,
                f"{agg.loss_mean:.3f}",
                f"{agg.avg_eer_mean:.3f} / {agg.max_eer_mean:.3f}",
            ]
            for lam, agg in per_lambda.items()
        ]
        emit(
            f"Table 4 — Moderate with varying lambda on {dataset}",
            format_table(headers=["lambda", "Loss", "Avg./Max. EER"], rows=rows),
        )

    for dataset, per_lambda in results.items():
        # Fairness improves as lambda grows.
        assert (
            per_lambda[LAMBDAS[-1]].avg_eer_mean
            < per_lambda[0.0].avg_eer_mean + 0.01
        ), f"lambda had no fairness effect on {dataset}"
        # The loss pays for it (or at least does not improve).
        assert (
            per_lambda[LAMBDAS[-1]].loss_mean
            >= per_lambda[0.0].loss_mean - 0.02
        ), f"loss unexpectedly improved with max lambda on {dataset}"
