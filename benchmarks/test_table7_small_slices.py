"""Table 7 and Figure 11: tiny slices with unreliable learning curves.

The paper lowers the initial Fashion-MNIST slice sizes to 30 examples, where
the measured learning curves are visibly noisy (Figure 11), and shows that
Slice Tuner still beats the baselines (Table 7) because it only relies on the
*relative* ordering of the curves.  Shapes asserted:

* the fitted curves on tiny slices are indeed less reliable than curves
  fitted on the basic setting (lower reliability score),
* Moderate still improves loss and Avg. EER over Original, and
* Moderate's Avg. EER is at least as good as both baselines'.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import SPEED, emit, experiment_config

from repro.curves.estimator import CurveEstimationConfig, LearningCurveEstimator
from repro.datasets.fashion import fashion_like_task
from repro.experiments.config import fast_training_config
from repro.experiments.reporting import methods_table
from repro.experiments.runner import compare_methods

METHODS = ("uniform", "water_filling", "moderate")


def run_small_slices():
    # Figure 11: curves fitted on tiny slices are unreliable.  Reliability is
    # measured as the disagreement between two independent estimates of the
    # same slice's curve (different random subsets/seeds): unreliable curves
    # extrapolate to very different losses at a reference size.
    task = fashion_like_task()
    estimator_config = CurveEstimationConfig(n_points=4, n_repeats=1, min_fraction=0.2)
    reference_size = 300.0
    disagreement = {}
    for label, per_slice in (("tiny", 30), ("basic", 200)):
        sliced = task.initial_sliced_dataset(per_slice, validation_size=100, random_state=0)
        estimates = []
        for seed in (1, 2):
            estimator = LearningCurveEstimator(
                trainer_config=fast_training_config(epochs=SPEED["epochs"]),
                config=estimator_config,
                random_state=seed,
            )
            estimates.append(estimator.estimate(sliced))
        per_slice_disagreement = []
        for name in sliced.names:
            first = estimates[0][name].predict(reference_size)
            second = estimates[1][name].predict(reference_size)
            per_slice_disagreement.append(
                abs(first - second) / max(min(first, second), 1e-9)
            )
        disagreement[label] = float(np.mean(per_slice_disagreement))

    # Table 7: method comparison with tiny initial slices and a small budget.
    config = experiment_config(
        "fashion_like",
        methods=METHODS,
        scenario="small_slices",
        budget=500.0,
        lam=1.0,
        seed=13,
        trials=2,
        base_size=180,  # small_slices scenario divides this by 6 -> 30/slice
    )
    aggregates = compare_methods(config, include_original=True)
    return disagreement, aggregates


def test_table7_unreliable_curves(run_once):
    disagreement, aggregates = run_once(run_small_slices)

    emit(
        "Figure 11 — curve instability: relative disagreement between two "
        "independent curve estimates (prediction at 300 examples)",
        f"tiny slices (30/slice):   {disagreement['tiny']:.3f}\n"
        f"basic slices (200/slice): {disagreement['basic']:.3f}",
    )
    emit(
        "Table 7 — small slices (30/slice), budget 500",
        methods_table(aggregates, method_order=["original", *METHODS]),
    )

    # Figure 11 shape: curves fitted on tiny slices are far less stable.
    assert disagreement["tiny"] > disagreement["basic"]

    # Table 7 shapes: Slice Tuner still helps despite unreliable curves.
    original = aggregates["original"]
    moderate = aggregates["moderate"]
    assert moderate.loss_mean < original.loss_mean
    assert moderate.avg_eer_mean < original.avg_eer_mean + 0.01
    for baseline in ("uniform", "water_filling"):
        assert moderate.avg_eer_mean <= aggregates[baseline].avg_eer_mean + 0.01
