"""Ablation: learning-curve optimization vs a rotting-bandit policy (Section 7).

The paper frames selective data acquisition as a special multi-armed bandit
problem and argues that exploiting prior knowledge (power-law learning
curves, fairness objective) is what sets Slice Tuner apart from generic
bandit policies.  This ablation runs a sliding-window UCB rotting-bandit
acquirer against Slice Tuner's Moderate method on identical starting data.

Shapes asserted:

* both approaches respect the budget,
* Moderate achieves at least as good Avg. EER as the bandit, and
* Moderate needs far fewer model trainings, because the bandit must retrain
  after every pull to observe its reward.
"""

from __future__ import annotations

import pytest

from conftest import SPEED, emit

from repro.acquisition.source import GeneratorDataSource
from repro.bandit.rotting import RottingBanditAcquirer
from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.curves.estimator import CurveEstimationConfig
from repro.datasets.adult import adult_like_task
from repro.experiments.config import fast_training_config
from repro.utils.tables import format_table

BUDGET = 300.0
INITIAL_SIZE = 100


def run_both():
    results = {}

    task = adult_like_task()
    training = fast_training_config(epochs=SPEED["epochs"])

    # Slice Tuner (Moderate).
    sliced = task.initial_sliced_dataset(INITIAL_SIZE, validation_size=SPEED["validation_size"], random_state=0)
    source = GeneratorDataSource(task, random_state=1)
    tuner = SliceTuner(
        sliced,
        source,
        trainer_config=training,
        curve_config=CurveEstimationConfig(n_points=4, n_repeats=1),
        config=SliceTunerConfig(lam=1.0, evaluation_trials=2),
        random_state=2,
    )
    tuning = tuner.run(BUDGET, method="moderate")
    results["slice_tuner_moderate"] = {
        "loss": tuning.final_report.loss,
        "avg_eer": tuning.final_report.avg_eer,
        "spent": tuning.spent,
        "model_trainings": tuner.estimator.trainings_performed,
    }

    # Rotting bandit on identical starting data.
    sliced = task.initial_sliced_dataset(INITIAL_SIZE, validation_size=SPEED["validation_size"], random_state=0)
    source = GeneratorDataSource(task, random_state=1)
    bandit = RottingBanditAcquirer(
        batch_size=25, window=3, exploration=0.3, trainer_config=training, random_state=2
    )
    bandit_result = bandit.run(sliced, BUDGET, source)
    results["rotting_bandit"] = {
        "loss": bandit_result.final_loss,
        "avg_eer": bandit_result.final_avg_eer,
        "spent": bandit_result.spent,
        # One training per pull (reward measurement) plus the final model.
        "model_trainings": sum(bandit_result.pulls.values()) + 1,
    }
    return results


def test_ablation_bandit_vs_slice_tuner(run_once):
    results = run_once(run_both)

    rows = [
        [
            name,
            f"{stats['loss']:.3f}",
            f"{stats['avg_eer']:.3f}",
            f"{stats['spent']:.0f}",
            stats["model_trainings"],
        ]
        for name, stats in results.items()
    ]
    emit(
        "Ablation — Slice Tuner (Moderate) vs rotting-bandit acquisition (adult_like)",
        format_table(
            headers=["method", "Loss", "Avg. EER", "budget spent", "model trainings"],
            rows=rows,
        ),
    )

    tuner_stats = results["slice_tuner_moderate"]
    bandit_stats = results["rotting_bandit"]
    assert tuner_stats["spent"] <= BUDGET + 1e-6
    assert bandit_stats["spent"] <= BUDGET + 1e-6
    # Slice Tuner is at least as fair and does not need per-pull retraining.
    assert tuner_stats["avg_eer"] <= bandit_stats["avg_eer"] + 0.02
    assert tuner_stats["model_trainings"] <= bandit_stats["model_trainings"]
