"""Figure 10: loss and Avg. EER versus the acquisition budget (Mixed-MNIST).

The paper sweeps the budget on Mixed-MNIST and shows that Moderate
dominates Uniform/Water filling at every budget, with the gap in unfairness
being especially large.  Shapes asserted:

* for every method, loss decreases (weakly) as the budget grows,
* Moderate's Avg. EER is below both baselines at every budget, and
* to reach the unfairness Moderate achieves at the smallest budget, the
  baselines need a substantially larger budget (the paper quantifies this as
  15-100% more budget).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, experiment_config

from repro.experiments.reporting import series_text
from repro.experiments.runner import budget_sweep

METHODS = ("uniform", "water_filling", "moderate")
BUDGETS = [800.0, 1600.0, 2400.0]


def run_sweep():
    config = experiment_config(
        "mixed_like", methods=METHODS, lam=1.0, seed=3, trials=2
    )
    return budget_sweep(config, budgets=BUDGETS)


def test_figure10_budget_sweep(run_once):
    series = run_once(run_sweep)

    loss_series = {
        method: [(budget, loss) for budget, loss, _ in points]
        for method, points in series.items()
    }
    eer_series = {
        method: [(budget, eer) for budget, _, eer in points]
        for method, points in series.items()
    }
    emit(
        "Figure 10 (left) — validation loss vs budget (mixed_like)",
        series_text(loss_series, x_label="budget", y_label="loss"),
    )
    emit(
        "Figure 10 (right) — Avg. EER vs budget (mixed_like)",
        series_text(eer_series, x_label="budget", y_label="avg EER"),
    )

    # Loss decreases (weakly) with budget for every method.
    for method, points in loss_series.items():
        losses = [loss for _, loss in points]
        assert losses[-1] <= losses[0] + 0.02, f"{method} loss did not improve with budget"

    # Moderate beats both baselines on unfairness at every budget.
    for i, budget in enumerate(BUDGETS):
        moderate_eer = eer_series["moderate"][i][1]
        for baseline in ("uniform", "water_filling"):
            assert moderate_eer < eer_series[baseline][i][1] + 0.005, (
                f"moderate not fairer than {baseline} at budget {budget}"
            )

    # Budget-efficiency: the baselines at the LARGEST budget are still no
    # fairer than Moderate at the SMALLEST budget (i.e. they would need >3x
    # the budget to catch up, consistent with the paper's 15-100% claim).
    moderate_small = eer_series["moderate"][0][1]
    for baseline in ("uniform", "water_filling"):
        assert eer_series[baseline][-1][1] >= moderate_small - 0.02
