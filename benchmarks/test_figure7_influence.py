"""Figure 7: influence on other slices as one slice's data grows.

The paper grows the (initially tiny) White_Male slice of UTKFace and plots
the change in every other slice's loss against the change of the imbalance
ratio.  Claims reproduced here:

* the magnitude of influence grows with the imbalance-ratio change, and
* the slice most similar to the grown one (White_Female, same race class)
  is influenced *less negatively* than the average dissimilar slice —
  acquiring White_Male data helps or barely hurts White_Female while it
  hurts the other races.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit

from repro.datasets.faces import faces_like_task
from repro.experiments.influence import influence_experiment, influence_magnitude_by_step
from repro.experiments.reporting import series_text
from repro.ml.train import TrainingConfig


def run_influence():
    task = faces_like_task()
    return influence_experiment(
        task,
        target_slice="White_Male",
        base_size=250,
        target_initial_size=50,
        growth_steps=5,
        growth_per_step=300,
        validation_size=150,
        trainer_config=TrainingConfig(epochs=25, batch_size=64, learning_rate=0.03),
        n_repeats=2,
        random_state=0,
    )


def test_figure7_influence_vs_imbalance_change(run_once):
    points = run_once(run_influence)

    series = {}
    for point in points:
        series.setdefault(point.slice_name, []).append(
            (point.imbalance_change, point.influence)
        )
    emit(
        "Figure 7 — influence of growing White_Male on the other slices",
        series_text(series, x_label="imbalance ratio change", y_label="influence (loss change)"),
    )

    # Shape 1: influence magnitude grows with the imbalance-ratio change.
    magnitudes = influence_magnitude_by_step(points)
    first_change, first_magnitude = magnitudes[0]
    last_change, last_magnitude = magnitudes[-1]
    assert last_change > first_change
    assert last_magnitude > first_magnitude

    # Shape 2: the similar slice (White_Female) is influenced less negatively
    # than the dissimilar slices at the largest imbalance change.
    final_change = max(p.imbalance_change for p in points)
    final_points = {p.slice_name: p.influence for p in points if p.imbalance_change == final_change}
    dissimilar = [v for name, v in final_points.items() if not name.startswith("White")]
    assert final_points["White_Female"] < np.mean(dissimilar)
    # And the dissimilar slices are, on average, hurt (positive loss change).
    assert np.mean(dissimilar) > 0
