"""Telemetry overhead: a fully traced run vs an untraced one, byte-identical.

The telemetry layer promises to be effectively free: span ids derive from
(parent, name, sequence) — never clocks or RNGs — so tracing cannot perturb
results, and the instrumented code paths must cost almost nothing even with
the heaviest sink attached (every span JSON-encoded and flushed to a JSONL
file, plus the metrics registry live).

This benchmark runs the same deterministic tuning workload both ways,
min-of-repeats on each side for timing stability, and asserts:

* the traced and untraced results are **byte-identical** (``to_json``),
* the traced run actually recorded spans and metrics (the sink was hot,
  not bypassed), and
* the traced minimum is within **5%** of the untraced minimum.

Set ``BENCH_TELEMETRY_OUT`` to a path to record the numbers (reference
point committed at ``benchmarks/BENCH_telemetry.json``; the CI
``telemetry-smoke`` job regenerates it).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import emit, experiment_config

import repro.telemetry as telemetry
from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.experiments.runner import prepare_named_instance
from repro.telemetry import MetricsRegistry, read_spans, set_registry
from repro.utils.tables import format_table

REPEATS = 5
BUDGET = 300.0
OVERHEAD_GATE_PCT = 5.0


def _run_workload() -> str:
    """One deterministic end-to-end tuning run; returns the result JSON."""
    config = experiment_config(
        "adult_like", methods=("moderate",), budget=BUDGET, trials=1
    )
    sliced, sources = prepare_named_instance(config, seed=0)
    tuner = SliceTuner(
        sliced,
        trainer_config=config.training_config(),
        curve_config=config.curve_config(),
        config=SliceTunerConfig(lam=1.0),
        random_state=1,
        sources=sources,
    )
    session = tuner.session()
    for _ in session.stream(BUDGET, strategy="moderate"):
        pass
    return session.result().to_json()


def _timed(trace_dir: str | None) -> tuple[float, str]:
    """One timed workload run, traced into ``trace_dir`` when given."""
    if trace_dir is not None:
        telemetry.configure(trace_dir=trace_dir)
        previous_registry = set_registry(MetricsRegistry())
    try:
        start = time.perf_counter()
        payload = _run_workload()
        elapsed = time.perf_counter() - start
    finally:
        if trace_dir is not None:
            telemetry.shutdown()
            set_registry(previous_registry)
    return elapsed, payload


def _measure_once(trace_dir: str) -> dict:
    """Interleaved min-of-REPEATS for both modes.

    Each repeat times an untraced run immediately followed by a traced
    one, so a background-load spike on a shared CI box slows both sides
    instead of landing entirely on whichever mode happened to run last.
    """
    untraced_s = traced_s = float("inf")
    untraced_json: str | None = None
    traced_json: str | None = None
    for _ in range(REPEATS):
        elapsed, payload = _timed(None)
        untraced_s = min(untraced_s, elapsed)
        if untraced_json is None:
            untraced_json = payload
        else:
            assert payload == untraced_json  # repeats are deterministic
        elapsed, payload = _timed(trace_dir)
        traced_s = min(traced_s, elapsed)
        if traced_json is None:
            traced_json = payload
        else:
            assert payload == traced_json
    assert untraced_json is not None and traced_json is not None
    spans = read_spans(trace_dir)
    overhead_pct = (traced_s / untraced_s - 1.0) * 100.0
    return {
        "repeats": REPEATS,
        "budget": BUDGET,
        "untraced_s": round(untraced_s, 4),
        "traced_s": round(traced_s, 4),
        "overhead_pct": round(overhead_pct, 2),
        "spans_recorded": len(spans),
        "span_names": sorted({span["name"] for span in spans}),
        "byte_identical": traced_json == untraced_json,
    }


def _measure(tmp_path: Path) -> dict:
    _run_workload()  # warmup: imports, dataset synthesis, numpy caches
    numbers = _measure_once(str(tmp_path / "trace"))
    if numbers["overhead_pct"] >= OVERHEAD_GATE_PCT:
        # One noise retry: min-of-repeats can still lose to a sustained
        # load spike; a genuine instrumentation regression fails twice.
        numbers = _measure_once(str(tmp_path / "trace-retry"))
    return numbers


def _record(numbers: dict) -> None:
    """Write this run's numbers to ``$BENCH_TELEMETRY_OUT`` (when set)."""
    out = os.environ.get("BENCH_TELEMETRY_OUT")
    if not out:
        return
    Path(out).write_text(json.dumps(numbers, indent=2, sort_keys=True) + "\n")


def test_tracing_overhead_under_gate(run_once, tmp_path):
    numbers = run_once(_measure, tmp_path)

    rows = [
        ("untraced", f"{numbers['untraced_s']:.4f}", "-"),
        (
            "traced (JSONL sink)",
            f"{numbers['traced_s']:.4f}",
            f"{numbers['overhead_pct']:+.2f}%",
        ),
    ]
    emit(
        "Telemetry overhead: traced (full JSONL sink) vs untraced run",
        format_table(("mode", f"best-of-{REPEATS} seconds", "overhead"), rows)
        + f"\nspans recorded: {numbers['spans_recorded']} across "
        f"{len(numbers['span_names'])} name(s); byte-identical results: "
        f"{numbers['byte_identical']}",
    )
    _record(numbers)

    # Tracing was actually on (the per-iteration skeleton plus acquisition
    # spans all landed in the JSONL file) ...
    assert numbers["spans_recorded"] > 0
    assert "session.iteration" in numbers["span_names"]
    assert "acquisition.provider" in numbers["span_names"]
    # ... never changed the result ...
    assert numbers["byte_identical"] is True
    # ... and cost less than the gate.
    assert numbers["overhead_pct"] < OVERHEAD_GATE_PCT
