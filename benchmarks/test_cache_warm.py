"""Warm-cache benchmark: the first cache trajectory point of the repo.

Three ``python -m repro.cli run`` subprocesses share one ``--cache-dir``:

1. **cold** — a fresh cache; every training runs and is persisted.
2. **warm serial** — a brand-new process over the same directory; every
   training must be served from disk (``trainings_performed == 0``).
3. **warm process-pool** — the same again through ``--executor process``,
   proving pool workers read the shared WAL file too.

The benchmark asserts the acceptance property — warm reruns across a
process restart train nothing and their results are byte-identical to the
cold serial baseline on both executors — and records hit rate, trainings
avoided, and warm-vs-cold wall time to ``$BENCH_CACHE_OUT`` (the CI
artifact ``BENCH_cache.json``; the committed ``benchmarks/BENCH_cache.json``
is one reference point from a 1-CPU dev container).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from conftest import emit

_SRC = str(Path(__file__).resolve().parents[1] / "src")

RUN_ARGS = [
    "run",
    "--dataset", "adult_like",
    "--scenario", "basic",
    "--method", "moderate",
    "--budget", "200",
    "--initial-size", "60",
    "--validation-size", "60",
    "--epochs", "10",
    "--curve-points", "3",
    "--seed", "0",
    "--quiet",
    "--json",
]


def _cli_run(cache_dir: str, *extra: str) -> tuple[dict, float]:
    """One ``repro.cli run`` in a fresh process; returns (payload, seconds)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *RUN_ARGS,
         "--cache-dir", cache_dir, *extra],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    elapsed = time.perf_counter() - start
    assert proc.returncode == 0, (proc.returncode, proc.stderr)
    return json.loads(proc.stdout), elapsed


def run_cache_warm(cache_dir: str) -> dict:
    cold, cold_s = _cli_run(cache_dir)
    warm, warm_s = _cli_run(cache_dir)
    pool, pool_s = _cli_run(cache_dir, "--executor", "process", "--workers", "2")
    return {
        "cold": cold, "cold_s": cold_s,
        "warm": warm, "warm_s": warm_s,
        "pool": pool, "pool_s": pool_s,
    }


def _record_bench(numbers: dict) -> None:
    """Write this run's numbers to ``$BENCH_CACHE_OUT`` (when set)."""
    out = os.environ.get("BENCH_CACHE_OUT")
    if not out:
        return
    Path(out).write_text(json.dumps(numbers, indent=2, sort_keys=True) + "\n")


def test_cache_warm_across_restarts(run_once, tmp_path):
    cache_dir = str(tmp_path / "cache")
    results = run_once(run_cache_warm, cache_dir)
    cold, warm, pool = results["cold"], results["warm"], results["pool"]

    # The cache only ever removes work, never changes answers: both warm
    # reruns are byte-identical to the cold serial baseline.
    baseline = json.dumps(cold["result"], sort_keys=True)
    assert json.dumps(warm["result"], sort_keys=True) == baseline
    assert json.dumps(pool["result"], sort_keys=True) == baseline

    # Cold pays for every training; the warm restarts pay for none.
    trainings_cold = cold["trainings_performed"]
    assert trainings_cold > 0
    assert warm["trainings_performed"] == 0
    assert pool["trainings_performed"] == 0

    # Counters are cumulative across every process sharing the file: by the
    # pool run the two warm reruns have each avoided a cold run's worth.
    warm_hits = warm["cache"]["results"]["hits"]
    assert warm_hits >= trainings_cold

    hit_rate_warm = warm_hits / max(warm["cache"]["results"]["requests"], 1)
    numbers = {
        "trainings_cold": int(trainings_cold),
        "trainings_warm": int(warm["trainings_performed"]),
        "trainings_warm_pool": int(pool["trainings_performed"]),
        "trainings_avoided": int(warm_hits),
        "hit_rate_warm": round(hit_rate_warm, 4),
        "cold_s": round(results["cold_s"], 3),
        "warm_s": round(results["warm_s"], 3),
        "warm_pool_s": round(results["pool_s"], 3),
        "warm_speedup": round(results["cold_s"] / results["warm_s"], 3),
        "results_identical": True,
    }
    _record_bench(numbers)
    emit(
        "Warm-cache restart smoke — shared sqlite cache across processes",
        "\n".join(f"{key:>20}: {value}" for key, value in numbers.items()),
    )
