"""Serving-throughput smoke: N threaded clients against one tuner daemon.

The first serving-perf trajectory point of the repo: a
:class:`~repro.serve.server.TunerServer` (ThreadingHTTPServer) over one
shared scheduler serves several concurrent clients, each submitting its own
campaign and tailing the live SSE stream to completion.  The benchmark
asserts the serving layer adds correctness-preserving concurrency — every
wire-served result equals an in-process ``Campaign.run`` of the same spec —
and records wall-clock, request, and event-stream counters to
``$BENCH_SERVE_OUT`` (the CI artifact ``BENCH_serve.json``; the committed
``benchmarks/BENCH_serve.json`` is one reference point from a 1-CPU dev
container).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from conftest import emit

from repro.campaigns import Campaign, CampaignSpec, InMemoryStore
from repro.serve import TunerClient, TunerServer, TunerService

CLIENTS = 3


def _spec(index: int) -> dict:
    return {
        "name": f"serve-bench-{index}",
        "dataset": "adult_like",
        "scenario": "basic",
        "method": "uniform" if index % 2 == 0 else "moderate",
        "budget": 160.0,
        "seed": 40 + index,
        "base_size": 30,
        "validation_size": 30,
        "epochs": 4,
        "curve_points": 3,
    }


def run_serve_throughput() -> dict:
    app = TunerService().start()
    server = TunerServer(app).start_background()
    outcomes: dict[int, dict] = {}
    events_seen: dict[int, int] = {}
    errors: list[Exception] = []

    def one_client(index: int) -> None:
        try:
            client = TunerClient(server.url, timeout=60.0)
            submitted = client.submit(_spec(index))
            streamed = 0
            for frame in client.tail(submitted["campaign_id"]):
                if frame["id"] is not None:
                    streamed += 1
            events_seen[index] = streamed
            outcomes[index] = client.result(submitted["campaign_id"])
        except Exception as error:  # noqa: BLE001 - surfaced by the assert
            errors.append(error)

    start = time.perf_counter()
    threads = [
        threading.Thread(target=one_client, args=(index,))
        for index in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    stats = app.server_stats()
    server.shutdown()
    app.close()
    assert errors == [], errors
    return {
        "clients": CLIENTS,
        "elapsed_s": elapsed,
        "requests": stats["requests"],
        "events_streamed": stats["events_streamed"],
        "scheduler_steps": stats["scheduler_steps"],
        "campaigns_completed": stats["campaigns_completed"],
        "events_per_client": events_seen,
        "outcomes": outcomes,
    }


def _record_bench(numbers: dict) -> None:
    """Write this run's numbers to ``$BENCH_SERVE_OUT`` (when set)."""
    out = os.environ.get("BENCH_SERVE_OUT")
    if not out:
        return
    Path(out).write_text(json.dumps(numbers, indent=2, sort_keys=True) + "\n")


def test_serve_throughput_smoke(run_once):
    results = run_once(run_serve_throughput)

    # Correctness under concurrency: every wire-served result equals the
    # same spec run in-process, so the serving layer is pure plumbing.
    for index in range(CLIENTS):
        store = InMemoryStore()
        baseline = Campaign.start(store, CampaignSpec(**_spec(index))).run()
        assert results["outcomes"][index] == baseline.to_dict(), index

    assert results["campaigns_completed"] == CLIENTS
    # Each client saw a full event stream (>= iterations + completed).
    assert all(count >= 2 for count in results["events_per_client"].values())

    numbers = {
        "clients": results["clients"],
        "elapsed_s": round(results["elapsed_s"], 3),
        "requests": int(results["requests"]),
        "events_streamed": int(results["events_streamed"]),
        "scheduler_steps": int(results["scheduler_steps"]),
        "campaigns_completed": int(results["campaigns_completed"]),
        "campaigns_per_s": round(CLIENTS / results["elapsed_s"], 3),
    }
    _record_bench(numbers)
    emit(
        "Serving throughput smoke — concurrent clients over one daemon",
        "\n".join(f"{key:>20}: {value}" for key, value in numbers.items()),
    )
