"""Monitoring overhead: a monitored campaign vs ``monitor=False``, identical.

The health & alerting layer promises the same bargain telemetry struck:
rule evaluation folds payloads the campaign already persists (windows
keyed by iteration, samples that are ratios of payload integers), so it
cannot perturb results — and the per-iteration fold must cost almost
nothing next to the model trainings it watches.

This benchmark runs the same deterministic *flaky* campaign both ways
(the flaky source keeps the acquisition rules busy: alerts actually fire
and resolve, so the monitored side pays the full evaluation + durable
``alert``-event path), min-of-repeats per side, and asserts:

* monitored and unmonitored results are **byte-identical** (``to_json``),
* the monitored run produced a non-empty durable alert sequence,
* the same sequence is byte-identical on the process-pool executor, and
* the monitored minimum is within **5%** of the unmonitored minimum.

Set ``BENCH_MONITOR_OUT`` to a path to record the numbers (reference
point committed at ``benchmarks/BENCH_monitor.json``; the CI
``monitor-smoke`` job regenerates it).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import emit

from repro.campaigns import Campaign, CampaignSpec, InMemoryStore, replay_events
from repro.engine.executor import get_executor
from repro.utils.tables import format_table

REPEATS = 5
BUDGET = 300.0
OVERHEAD_GATE_PCT = 5.0

#: The flaky-source campaign the monitor tests use: provider trouble in
#: the early iterations trips the acquisition rules, then recovery
#: resolves them — alerts fire on every monitored run.
SPEC = dict(
    name="bench-monitor",
    dataset="adult_like",
    scenario="flaky_source",
    method="moderate",
    budget=BUDGET,
    seed=0,
    base_size=60,
    validation_size=50,
    epochs=8,
    curve_points=3,
)


def _run_campaign(monitor: bool, executor=None) -> tuple[str, list[dict]]:
    """One campaign run on a fresh store; returns (result JSON, alerts)."""
    store = InMemoryStore()
    spec = CampaignSpec(**{**SPEC, "monitor": monitor})
    campaign = Campaign.start(store, spec, executor=executor)
    result = campaign.run()
    alerts = [
        event.payload
        for event in replay_events(store.events(campaign.campaign_id))
        if event.kind == "alert"
    ]
    return result.to_json(), alerts


def _timed(monitor: bool) -> tuple[float, str, list[dict]]:
    start = time.perf_counter()
    payload, run_alerts = _run_campaign(monitor)
    return time.perf_counter() - start, payload, run_alerts


def _measure_once() -> dict:
    """Interleaved min-of-REPEATS for both modes.

    Each repeat times an unmonitored run immediately followed by a
    monitored one, so a background-load spike on a shared CI box slows
    both sides instead of landing entirely on whichever mode ran last.
    """
    unmonitored_s = monitored_s = float("inf")
    unmonitored_json: str | None = None
    monitored_json: str | None = None
    no_alerts: list[dict] | None = None
    alerts: list[dict] | None = None
    for _ in range(REPEATS):
        elapsed, payload, run_alerts = _timed(monitor=False)
        unmonitored_s = min(unmonitored_s, elapsed)
        if unmonitored_json is None:
            unmonitored_json, no_alerts = payload, run_alerts
        else:
            assert payload == unmonitored_json  # repeats are deterministic
            assert run_alerts == no_alerts
        elapsed, payload, run_alerts = _timed(monitor=True)
        monitored_s = min(monitored_s, elapsed)
        if monitored_json is None:
            monitored_json, alerts = payload, run_alerts
        else:
            assert payload == monitored_json
            assert run_alerts == alerts
    assert unmonitored_json is not None and no_alerts is not None
    assert monitored_json is not None and alerts is not None
    # The alert sequence is executor-independent: the process pool derives
    # the identical durable history.
    executor = get_executor("process", max_workers=2)
    try:
        pool_json, pool_alerts = _run_campaign(monitor=True, executor=executor)
    finally:
        executor.close()
    overhead_pct = (monitored_s / unmonitored_s - 1.0) * 100.0
    return {
        "repeats": REPEATS,
        "budget": BUDGET,
        "unmonitored_s": round(unmonitored_s, 4),
        "monitored_s": round(monitored_s, 4),
        "overhead_pct": round(overhead_pct, 2),
        "alerts_recorded": len(alerts),
        "alert_rules": sorted({alert["rule"] for alert in alerts}),
        "unmonitored_alerts": len(no_alerts),
        "byte_identical": monitored_json == unmonitored_json,
        "alerts_identical_across_executors": pool_alerts == alerts
        and pool_json == monitored_json,
    }


def _measure() -> dict:
    _run_campaign(monitor=True)  # warmup: imports, dataset synthesis
    numbers = _measure_once()
    if numbers["overhead_pct"] >= OVERHEAD_GATE_PCT:
        # One noise retry: min-of-repeats can still lose to a sustained
        # load spike; a genuine monitoring regression fails twice.
        numbers = _measure_once()
    return numbers


def _record(numbers: dict) -> None:
    """Write this run's numbers to ``$BENCH_MONITOR_OUT`` (when set)."""
    out = os.environ.get("BENCH_MONITOR_OUT")
    if not out:
        return
    Path(out).write_text(json.dumps(numbers, indent=2, sort_keys=True) + "\n")


def test_monitoring_overhead_under_gate(run_once):
    numbers = run_once(_measure)

    rows = [
        ("monitor=False", f"{numbers['unmonitored_s']:.4f}", "-"),
        (
            "monitored (rules + durable alerts)",
            f"{numbers['monitored_s']:.4f}",
            f"{numbers['overhead_pct']:+.2f}%",
        ),
    ]
    emit(
        "Monitoring overhead: rule evaluation + alert events vs bare run",
        format_table(("mode", f"best-of-{REPEATS} seconds", "overhead"), rows)
        + f"\nalerts recorded: {numbers['alerts_recorded']} across rules "
        f"{numbers['alert_rules']}; byte-identical results: "
        f"{numbers['byte_identical']}; identical across executors: "
        f"{numbers['alerts_identical_across_executors']}",
    )
    _record(numbers)

    # The monitor was actually hot: the flaky source tripped rules and
    # the transitions landed in the durable log ...
    assert numbers["alerts_recorded"] > 0
    assert "fulfillment_shortfall" in numbers["alert_rules"]
    # ... the unmonitored run wrote none ...
    assert numbers["unmonitored_alerts"] == 0
    # ... monitoring never changed the result, on either executor ...
    assert numbers["byte_identical"] is True
    assert numbers["alerts_identical_across_executors"] is True
    # ... and cost less than the gate.
    assert numbers["overhead_pct"] < OVERHEAD_GATE_PCT
