"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md for the index).  The goal is to reproduce *shapes* — which
method wins, how metrics move with budget/lambda/slice size — not the paper's
absolute numbers, since the substrate is a synthetic simulator rather than
the authors' GPU testbed (see DESIGN.md "Substitutions").

Benchmarks print the regenerated table/series to stdout (run pytest with
``-s`` to see them) and assert the qualitative claims.  Each benchmark runs
its workload exactly once through ``benchmark.pedantic(rounds=1,
iterations=1)`` so the suite finishes in minutes.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig

#: Baseline speed knobs shared by the experiment-style benchmarks.  They are
#: intentionally smaller than the paper's settings (fewer trials, smaller
#: validation sets) so the whole suite runs on a laptop in minutes.
SPEED = {
    "trials": 2,
    "validation_size": 120,
    "curve_points": 4,
    "curve_repeats": 1,
    "epochs": 25,
}

#: Per-dataset budgets: the paper uses 6K/6K/3K/500 for the Table 2 runs and
#: 3K/3K/3K/300 for Table 6; scaled down ~3x here to match the smaller
#: initial slice sizes and keep runtimes reasonable.
BUDGETS = {
    "fashion_like": 2000.0,
    "mixed_like": 2000.0,
    "faces_like": 1200.0,
    "adult_like": 300.0,
}

#: Initial per-slice sizes per dataset (the paper's Table 3 "Original" rows
#: use 200/150/400/150; scaled to keep model trainings fast).
BASE_SIZES = {
    "fashion_like": 150,
    "mixed_like": 120,
    "faces_like": 200,
    "adult_like": 120,
}

ALL_DATASETS = ("fashion_like", "mixed_like", "faces_like", "adult_like")


def experiment_config(
    dataset: str,
    methods: tuple[str, ...],
    scenario: str = "basic",
    budget: float | None = None,
    lam: float = 1.0,
    trials: int | None = None,
    seed: int = 0,
    **extra,
) -> ExperimentConfig:
    """Build an ExperimentConfig with the shared speed knobs applied."""
    merged_extra = {"base_size": BASE_SIZES[dataset]}
    merged_extra.update(extra)
    return ExperimentConfig(
        dataset=dataset,
        scenario=scenario,
        budget=BUDGETS[dataset] if budget is None else float(budget),
        methods=methods,
        lam=lam,
        trials=SPEED["trials"] if trials is None else trials,
        validation_size=SPEED["validation_size"],
        curve_points=SPEED["curve_points"],
        curve_repeats=SPEED["curve_repeats"],
        epochs=SPEED["epochs"],
        seed=seed,
        extra=merged_extra,
    )


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def emit(title: str, body: str) -> None:
    """Print a regenerated table/figure with a visible header."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
    print(body)
