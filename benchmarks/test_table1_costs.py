"""Table 1: per-slice crowdsourcing collection times and derived costs.

The paper derives each UTKFace slice's acquisition cost from the average time
an Amazon Mechanical Turk task took (cheapest slice normalized to 1, rounded
to one decimal).  This benchmark runs the crowdsourcing simulator over all
eight slices and regenerates the table, checking that the derived costs match
the paper's Table 1 and that the expensive/cheap ordering holds.
"""

from __future__ import annotations

import pytest

from conftest import emit

from repro.acquisition.crowdsourcing import CrowdsourcingSimulator, WorkerPool
from repro.acquisition.source import GeneratorDataSource
from repro.datasets.faces import UTKFACE_COSTS, UTKFACE_TASK_SECONDS, faces_like_task
from repro.utils.tables import format_table


def regenerate_table1():
    task = faces_like_task()
    crowd = CrowdsourcingSimulator(
        source=GeneratorDataSource(task, random_state=0),
        task_seconds=UTKFACE_TASK_SECONDS,
        workers=WorkerPool(mistake_rate=0.05, duplicate_rate=0.03, speed_spread=0.15),
        random_state=1,
    )
    for name in task.slice_names:
        crowd.acquire(name, 150)
    return crowd.observed_mean_seconds(), crowd.derive_costs(round_to=0.1), crowd


def test_table1_crowdsourcing_costs(run_once):
    observed_seconds, derived_costs, crowd = run_once(regenerate_table1)

    rows = [
        [
            name,
            f"{UTKFACE_TASK_SECONDS[name]:.1f}",
            f"{observed_seconds[name]:.1f}",
            UTKFACE_COSTS[name],
            derived_costs[name],
        ]
        for name in UTKFACE_TASK_SECONDS
    ]
    emit(
        "Table 1 — UTKFace crowdsourcing collection costs",
        format_table(
            headers=["slice", "paper avg time (s)", "simulated avg time (s)", "paper cost", "derived cost"],
            rows=rows,
        ),
    )

    # Shape assertions: the derived costs reproduce the paper's table within
    # one rounding step, and the expensive/cheap ordering is preserved.
    for name, paper_cost in UTKFACE_COSTS.items():
        assert derived_costs[name] == pytest.approx(paper_cost, abs=0.1001)
    assert derived_costs["Indian_Female"] == max(derived_costs.values())
    assert derived_costs["Black_Male"] == min(derived_costs.values())
    # Every batch was paid for: submissions = mistakes + duplicates + delivered.
    for report in crowd.reports:
        assert (
            report.submitted
            == report.mistakes_filtered + report.duplicates_filtered + report.delivered
        )
