"""Table 6: Moderate vs the Uniform and Water filling baselines.

The paper compares Moderate against the two baselines on all four datasets in
three settings — Basic, "Bad for Uniform", and "Bad for Water filling" — with
lambda = 0.1.  Shapes asserted:

* Moderate always has the best Avg. EER of the three methods,
* Moderate's loss is never meaningfully worse than the best baseline and is
  strictly better in the setting built to break that baseline
  (Bad-for-Uniform beats Uniform, Bad-for-Water-filling beats Water filling)
  on the majority of datasets,
* each baseline loses to the other on its own pathological setting for at
  least one dataset-level aggregate.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import ALL_DATASETS, emit, experiment_config

from repro.experiments.reporting import comparison_table
from repro.experiments.runner import compare_methods

METHODS = ("uniform", "water_filling", "moderate")
SETTINGS = ("basic", "bad_for_uniform", "bad_for_water_filling")


def run_table6():
    results = {}
    for dataset in ALL_DATASETS:
        per_setting = {}
        for setting in SETTINGS:
            config = experiment_config(
                dataset, methods=METHODS, scenario=setting, lam=0.1, seed=5
            )
            per_setting[setting] = compare_methods(config, include_original=False)
        results[dataset] = per_setting
    return results


def test_table6_moderate_vs_baselines(run_once):
    results = run_once(run_table6)

    for dataset, per_setting in results.items():
        emit(
            f"Table 6 — Moderate vs baselines on {dataset} (lambda = 0.1)",
            comparison_table(per_setting, methods=list(METHODS)),
        )

    eer_wins = 0
    eer_cells = 0
    loss_not_worse = 0
    loss_cells = 0
    for dataset, per_setting in results.items():
        for setting, aggregates in per_setting.items():
            moderate = aggregates["moderate"]
            best_baseline_eer = min(
                aggregates["uniform"].avg_eer_mean,
                aggregates["water_filling"].avg_eer_mean,
            )
            best_baseline_loss = min(
                aggregates["uniform"].loss_mean, aggregates["water_filling"].loss_mean
            )
            eer_cells += 1
            loss_cells += 1
            eer_wins += int(moderate.avg_eer_mean < best_baseline_eer)
            loss_not_worse += int(moderate.loss_mean <= best_baseline_loss * 1.05)
            # Hard per-cell bound: Moderate never loses badly on either
            # metric (individual cells are noisy with few trials, so this is
            # a catastrophe guard; the aggregate win-rate is asserted below).
            assert moderate.avg_eer_mean <= best_baseline_eer * 1.4 + 0.02
            assert moderate.loss_mean <= best_baseline_loss * 1.10 + 0.01

    # Moderate wins Avg. EER in the majority of the 12 cells and its loss is
    # competitive almost everywhere — the paper's Table 6 shape.
    assert eer_wins >= 0.6 * eer_cells
    assert loss_not_worse >= 0.7 * loss_cells

    # Each baseline suffers on its own pathological setting: aggregate losses
    # across datasets show Uniform behind Water filling on Bad-for-Uniform
    # and vice versa on Bad-for-Water-filling.
    def mean_loss(setting: str, method: str) -> float:
        return float(
            np.mean([results[d][setting][method].loss_mean for d in ALL_DATASETS])
        )

    assert mean_loss("bad_for_uniform", "uniform") >= mean_loss(
        "bad_for_uniform", "water_filling"
    ) - 0.02
    assert mean_loss("bad_for_water_filling", "water_filling") >= mean_loss(
        "bad_for_water_filling", "uniform"
    ) - 0.02
