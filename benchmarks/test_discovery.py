"""The discovery trajectory: slice discovery cost and dynamic re-slicing.

Measures the layer this repo adds on top of the paper (the paper takes its
slices as given and only sketches discovery in Appendix A):

* per-method discovery time and slices found for every registered method
  (``stump``, ``kmeans``, ``auto``) on one pooled instance, and
* a dynamic (``discover="kmeans", reslice_every=2``) tuner run against the
  static baseline of the same instance — same budget, same seed — reporting
  the final-loss delta and the re-slice boundaries crossed.

Shapes asserted: every method is deterministic (two fits agree on the
content fingerprint), discovery is cheap relative to the tuning run it
rides along with, and the dynamic run stays in the same quality regime as
the static baseline (re-slicing must not blow up the loss).

Set ``REPRO_EXECUTOR`` to ``serial`` (default) or ``process`` to route the
dynamic run through the chosen engine backend — the numbers must not depend
on it (the CI ``discovery-smoke`` job runs both and diffs the deterministic
sections) — and ``BENCH_DISCOVERY_OUT`` to a path to record the numbers
(reference point committed at ``benchmarks/BENCH_discovery.json``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import emit

from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.curves.estimator import default_model_factory
from repro.engine.executor import get_executor
from repro.experiments.config import ExperimentConfig, fast_training_config
from repro.experiments.runner import prepare_named_instance
from repro.ml.train import Trainer
from repro.slices.discovery import available_discovery_methods, get_discovery_method
from repro.utils.tables import format_table

# The recipe below (unbalanced exponential sizes, small slices, modest
# budget) is the smallest known configuration that runs several iterations
# and crosses a re-slice boundary; the balanced SPEED defaults spend the
# whole budget in one step and never re-slice.
BUDGET = 500.0
BASE_SIZE = 60
VALIDATION_SIZE = 60
EPOCHS = 8
SEED = 20_000
RESLICE_EVERY = 2


def _executor_name() -> str:
    return os.environ.get("REPRO_EXECUTOR", "serial").strip().lower()


def _config() -> ExperimentConfig:
    return ExperimentConfig(
        dataset="adult_like",
        scenario="exponential",
        budget=BUDGET,
        methods=("conservative",),
        lam=1.0,
        trials=1,
        validation_size=VALIDATION_SIZE,
        curve_points=3,
        curve_repeats=1,
        epochs=EPOCHS,
        seed=SEED,
        extra={"base_size": BASE_SIZE},
    )


def _discovery_sweep() -> dict[str, dict]:
    """Fit every registered method twice on one instance; time + verify."""
    config = _config()
    sliced, _ = prepare_named_instance(config, seed=config.seed)
    pool = sliced.combined_train()
    model = default_model_factory(sliced.n_classes)
    Trainer(
        config=fast_training_config(epochs=EPOCHS), random_state=0
    ).fit(model, pool)
    out: dict[str, dict] = {}
    for name in available_discovery_methods():
        start = time.perf_counter()
        method = get_discovery_method(name, seed=7)
        method.fit(None if name == "auto" else model, pool)
        discovered = method.transform(sliced)
        elapsed = time.perf_counter() - start
        repeat = get_discovery_method(name, seed=7)
        repeat.fit(None if name == "auto" else model, pool)
        repeat.transform(sliced)
        out[name] = {
            "discovery_s": elapsed,
            "slices_found": len(discovered.names),
            "fingerprint": method.fingerprint(),
            "deterministic": method.fingerprint() == repeat.fingerprint(),
            "pool_rows": len(pool),
        }
    return out


def _tuned_run(discover: str | None) -> dict:
    """One tuning run (static baseline when ``discover`` is None)."""
    config = _config()
    sliced, sources = prepare_named_instance(config, seed=config.seed)
    with get_executor(_executor_name()) as executor:
        tuner = SliceTuner(
            sliced,
            trainer_config=config.training_config(),
            curve_config=config.curve_config(),
            config=SliceTunerConfig(
                lam=1.0,
                discover=discover,
                reslice_every=RESLICE_EVERY if discover else 0,
            ),
            random_state=config.seed + 20_000,
            sources=sources,
            executor=executor,
        )
        session = tuner.session()
        reslices = []
        session.add_hook("reslice", reslices.append)
        start = time.perf_counter()
        result = session.run(BUDGET, strategy="conservative")
        elapsed = time.perf_counter() - start
    return {
        "loss": result.final_report.loss,
        "avg_eer": result.final_report.avg_eer,
        "runtime_s": elapsed,
        "iterations": result.n_iterations,
        "spent": result.spent,
        "reslices": [
            {
                "iteration": event.iteration,
                "slice_generation": event.slice_generation,
                "fingerprint": event.fingerprint,
                "slice_names": list(event.slice_names),
            }
            for event in reslices
        ],
        "final_slices": sorted(result.total_acquired),
    }


def run_discovery_bench() -> dict:
    return {
        "methods": _discovery_sweep(),
        "static": _tuned_run(None),
        "dynamic": _tuned_run("kmeans"),
    }


def _record_bench(results: dict) -> None:
    """Merge this run's numbers into ``$BENCH_DISCOVERY_OUT`` (when set)."""
    out = os.environ.get("BENCH_DISCOVERY_OUT")
    if not out:
        return
    path = Path(out)
    payload: dict = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            payload = {}
    static, dynamic = results["static"], results["dynamic"]
    payload[_executor_name()] = {
        "methods": {
            name: {
                "discovery_s": round(stats["discovery_s"], 4),
                "slices_found": int(stats["slices_found"]),
                "fingerprint": stats["fingerprint"],
                "pool_rows": int(stats["pool_rows"]),
            }
            for name, stats in results["methods"].items()
        },
        "static": {
            "loss": round(static["loss"], 6),
            "avg_eer": round(static["avg_eer"], 6),
            "runtime_s": round(static["runtime_s"], 3),
            "iterations": int(static["iterations"]),
        },
        "dynamic": {
            "loss": round(dynamic["loss"], 6),
            "avg_eer": round(dynamic["avg_eer"], 6),
            "runtime_s": round(dynamic["runtime_s"], 3),
            "iterations": int(dynamic["iterations"]),
            "reslices": dynamic["reslices"],
        },
        "loss_delta_dynamic_vs_static": round(dynamic["loss"] - static["loss"], 6),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_discovery_methods_and_dynamic_reslicing(run_once):
    results = run_once(run_discovery_bench)
    _record_bench(results)

    methods, static, dynamic = (
        results["methods"], results["static"], results["dynamic"],
    )
    rows = [
        [
            name,
            f"{stats['discovery_s'] * 1000:.1f}",
            int(stats["slices_found"]),
            "yes" if stats["deterministic"] else "NO",
            stats["fingerprint"][:12],
        ]
        for name, stats in methods.items()
    ]
    emit(
        "Slice discovery — per-method cost on one pooled instance "
        f"(adult_like/exponential, {next(iter(methods.values()))['pool_rows']} "
        f"rows, executor {_executor_name()})",
        format_table(
            headers=["method", "discovery (ms)", "slices", "deterministic", "fingerprint"],
            rows=rows,
        ),
    )
    emit(
        "Dynamic re-slicing vs static baseline "
        f"(budget {BUDGET:.0f}, reslice every {RESLICE_EVERY})",
        format_table(
            headers=["run", "Loss", "Avg. EER", "runtime (s)", "iterations", "reslices"],
            rows=[
                [
                    "static", f"{static['loss']:.3f}", f"{static['avg_eer']:.3f}",
                    f"{static['runtime_s']:.1f}", int(static["iterations"]), 0,
                ],
                [
                    "dynamic", f"{dynamic['loss']:.3f}", f"{dynamic['avg_eer']:.3f}",
                    f"{dynamic['runtime_s']:.1f}", int(dynamic["iterations"]),
                    len(dynamic["reslices"]),
                ],
            ],
        ),
    )

    # Every method is deterministic under a fixed seed.
    assert all(stats["deterministic"] for stats in methods.values()), methods
    # Every method actually partitioned the data (found at least 2 slices).
    assert all(stats["slices_found"] >= 2 for stats in methods.values())
    # The dynamic run crossed at least one re-slice boundary and swapped
    # onto discovered slices.
    assert dynamic["reslices"], "dynamic run never crossed a boundary"
    assert any(name.startswith("km") for name in dynamic["final_slices"])
    # Discovery itself is cheap relative to the tuning run it rides along.
    total_discovery = sum(s["discovery_s"] for s in methods.values())
    assert total_discovery <= max(static["runtime_s"], 1.0)
    # Re-slicing must not blow up quality: same budget, same seed, loss in
    # the same regime as the static baseline (generous margin — the point
    # is catastrophe detection, not superiority claims).
    assert dynamic["loss"] <= static["loss"] + 0.35
