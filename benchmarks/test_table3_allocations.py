"""Table 3: per-slice amounts of data acquired by each Slice Tuner method.

The paper's Table 3 lists, per dataset, how many examples each method
acquired per slice and how many iterations it used.  Shapes asserted on the
Fashion-MNIST-like dataset:

* allocations are non-uniform — the hard slices (Shirt, Coat, Pullover)
  together receive clearly more than the easy slices (Trouser, Sneaker,
  Sandal), matching the paper's slices #2/#4/#6 receiving the bulk,
* the whole budget is spent, and
* iterative methods use more than one iteration while One-shot uses exactly
  one.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, experiment_config

from repro.datasets.fashion import FASHION_CLASSES
from repro.experiments.reporting import allocations_table
from repro.experiments.runner import compare_methods

METHODS = ("oneshot", "aggressive", "moderate", "conservative")
HARD_SLICES = ("Shirt", "Coat", "Pullover")
EASY_SLICES = ("Trouser", "Sneaker", "Sandal")


def run_table3():
    config = experiment_config("fashion_like", methods=METHODS, lam=1.0, seed=23)
    return config, compare_methods(config, include_original=False)


def test_table3_per_slice_allocations(run_once):
    config, aggregates = run_once(run_table3)

    emit(
        "Table 3 — examples acquired per slice (fashion_like)",
        allocations_table(aggregates, slice_names=list(FASHION_CLASSES), method_order=list(METHODS)),
    )

    for method, aggregate in aggregates.items():
        acquired = aggregate.acquired_mean
        total = sum(acquired.values())
        # Budget is essentially exhausted (unit costs on this dataset).
        assert total == pytest.approx(config.budget, rel=0.05)
        # The allocation is far from uniform: hard slices get clearly more.
        hard = sum(acquired[name] for name in HARD_SLICES)
        easy = sum(acquired[name] for name in EASY_SLICES)
        assert hard > 1.5 * easy, f"{method} did not prioritize hard slices"

    # Iteration counts: One-shot does exactly one, iterative methods do more.
    assert aggregates["oneshot"].iterations_mean == pytest.approx(1.0)
    assert aggregates["moderate"].iterations_mean > 1.0
    assert (
        aggregates["conservative"].iterations_mean
        >= aggregates["moderate"].iterations_mean - 1e-9
    )
