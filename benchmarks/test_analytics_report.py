"""The analytics trajectory: cold rebuild vs incremental report refresh.

Measures the reporting layer this repo adds on top of the paper (the paper
reports its tables offline; here the campaign event log is mirrored into
SQL views that answer the same questions live):

* a **cold** report — mirror a multi-campaign event log from scratch
  (full rebuild) and render every report kind, and
* an **incremental** report — append a handful of new events against the
  warm cursor and refresh; the refresh must fold in only the new events.

Shapes asserted: every SQL view matches its pure-Python reference
row-for-row at both measurement points, the incremental mirror is
byte-identical to a from-scratch rebuild of the same log, and the
incremental refresh is faster than the cold one (it is O(new events), not
O(log)).

Set ``BENCH_ANALYTICS_OUT`` to a path to record the numbers (reference
point committed at ``benchmarks/BENCH_analytics.json``; the CI
``analytics-smoke`` job regenerates it).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import emit

from repro.analytics import REPORT_SECTIONS, Analytics, assert_consistent
from repro.campaigns.store import CampaignRecord, SqliteStore
from repro.utils.tables import format_table

N_CAMPAIGNS = 8
ITERATIONS = 40
SLICES = ("s0", "s1", "s2")
INCREMENTAL_ITERATIONS = 2


def _iteration_payload(campaign: int, it: int) -> dict:
    # Deterministic per-(campaign, iteration) numbers; the s1 curve drifts
    # every 5th iteration so cache_trends sees non-trivial reuse ratios.
    return {
        "iteration": it,
        "requested": {s: 5 + i for i, s in enumerate(SLICES)},
        "acquired": {s: 4 + i for i, s in enumerate(SLICES)},
        "spent": 7.25 + 0.5 * it + 0.125 * campaign,
        "limit": 100.0,
        "imbalance_before": 2.0 - 0.01 * it,
        "imbalance_after": 1.8 - 0.01 * it,
        "curve_parameters": {
            "s0": [2.5, 0.7],
            "s1": [3.0, 0.5 + 0.01 * (it // 5)],
            "s2": [1.75, 0.9],
        },
    }


def _fulfillment_payload(campaign: int, it: int) -> dict:
    partial = (it + campaign) % 7 == 0
    delivered = 3 if partial else 5
    return {
        "slice": SLICES[it % len(SLICES)],
        "requested": 5,
        "effective": 5,
        "delivered": delivered,
        "shortfall": 5 - delivered,
        "unit_cost": 1.0,
        "cost": float(delivered),
        "provenance": ["pool", "synth"] if partial else ["pool"],
        "contributions": {"pool": delivered},
        "rounds": 2 if partial else 1,
        "status": "partial" if partial else "fulfilled",
        "tag": f"iteration:{it}",
    }


def _fill(store: SqliteStore, iterations: int) -> int:
    """Build a deterministic multi-campaign log; return the event count."""
    events = 0
    for c in range(N_CAMPAIGNS):
        cid = f"bench-{c:02d}"
        store.create_campaign(
            CampaignRecord(
                campaign_id=cid,
                name=f"bench-{c:02d}",
                fingerprint=f"fp-{c:02d}",
                spec={"name": f"bench-{c:02d}", "budget": 500.0 + 50.0 * c},
                status="running",
                priority=c % 3,
                created_at=1000.0 + c,
            )
        )
        for it in range(iterations):
            store.append_event(
                cid, generation=0, iteration=it, kind="iteration",
                payload=_iteration_payload(c, it),
            )
            store.append_event(
                cid, generation=0, iteration=it, kind="fulfillment",
                payload=_fulfillment_payload(c, it),
            )
            events += 2
        if c % 2 == 0:
            store.append_event(
                cid, generation=1, iteration=iterations, kind="reslice",
                payload={
                    "slice_generation": 1,
                    "method": "kmeans",
                    "fingerprint": f"resliced-{c:02d}",
                    "slice_names": ["k0", "k1", "k2", "k3"],
                },
            )
            events += 1
        if c % 3 == 0:
            store.set_status(cid, "completed")
    return events


def _append_increment(store: SqliteStore, start: int) -> int:
    """Append a handful of fresh events to one campaign; return the count."""
    events = 0
    for it in range(start, start + INCREMENTAL_ITERATIONS):
        store.append_event(
            "bench-01", generation=0, iteration=it, kind="iteration",
            payload=_iteration_payload(1, it),
        )
        store.append_event(
            "bench-01", generation=0, iteration=it, kind="fulfillment",
            payload=_fulfillment_payload(1, it),
        )
        events += 2
    return events


def _report_bytes(analytics: Analytics) -> str:
    return json.dumps(
        {kind: analytics.report(kind) for kind in REPORT_SECTIONS},
        sort_keys=True,
    )


def _measure(tmp_path: Path) -> dict:
    store_path = str(tmp_path / "bench-campaigns.sqlite")
    with SqliteStore(store_path) as store:
        total_events = _fill(store, ITERATIONS)

        analytics = Analytics(store, path=str(tmp_path / "bench.analytics"))
        with analytics:
            start = time.perf_counter()
            cold = analytics.rebuild()
            rebuild_s = time.perf_counter() - start
            for kind in REPORT_SECTIONS:
                analytics.report(kind)
            cold_s = time.perf_counter() - start
            cold_counts = assert_consistent(store, analytics)

            new_events = _append_increment(store, ITERATIONS)
            start = time.perf_counter()
            warm = analytics.refresh()
            refresh_s = time.perf_counter() - start
            for kind in REPORT_SECTIONS:
                analytics.report(kind)
            incremental_s = time.perf_counter() - start
            warm_counts = assert_consistent(store, analytics)
            incremental_bytes = _report_bytes(analytics)

        # A from-scratch mirror of the final log must agree byte-for-byte.
        with Analytics(store, path=str(tmp_path / "rebuild.analytics")) as fresh:
            fresh.rebuild()
            assert _report_bytes(fresh) == incremental_bytes

    assert cold["events_seen"] == total_events
    assert warm["events_seen"] == new_events
    return {
        "campaigns": N_CAMPAIGNS,
        "events_total": total_events,
        "events_incremental": new_events,
        "cold_s": round(cold_s, 4),
        "incremental_s": round(incremental_s, 4),
        "rebuild_s": round(rebuild_s, 4),
        "refresh_s": round(refresh_s, 4),
        "fold_speedup": round(rebuild_s / refresh_s, 2),
        "rows_verified": sum(warm_counts.values()),
        "rollup_rows": warm_counts["campaign_rollup"],
        "cold_rows_verified": sum(cold_counts.values()),
    }


def _record(numbers: dict) -> None:
    """Write this run's numbers to ``$BENCH_ANALYTICS_OUT`` (when set)."""
    out = os.environ.get("BENCH_ANALYTICS_OUT")
    if not out:
        return
    Path(out).write_text(json.dumps(numbers, indent=2, sort_keys=True) + "\n")


def test_analytics_cold_vs_incremental_report(run_once, tmp_path):
    numbers = run_once(_measure, tmp_path)

    rows = [
        (
            "cold rebuild",
            numbers["events_total"],
            f"{numbers['rebuild_s']:.4f}",
            f"{numbers['cold_s']:.4f}",
        ),
        (
            "incremental refresh",
            numbers["events_incremental"],
            f"{numbers['refresh_s']:.4f}",
            f"{numbers['incremental_s']:.4f}",
        ),
    ]
    emit(
        "Analytics report latency: cold rebuild vs incremental refresh",
        format_table(
            ("phase", "events folded", "fold seconds", "report seconds"), rows
        )
        + f"\nfold speedup: {numbers['fold_speedup']}x"
        + f" | rows verified against the Python reference:"
        f" {numbers['rows_verified']}",
    )
    _record(numbers)

    # Shape: the incremental path folds only the new events, so its fold
    # step must beat the cold rebuild of the full log outright.
    assert numbers["rollup_rows"] == N_CAMPAIGNS
    assert numbers["rows_verified"] > numbers["rollup_rows"]
    assert numbers["refresh_s"] < numbers["rebuild_s"]
