"""Tables 10 and 11 (Appendix C): exponentially distributed initial sizes.

The paper repeats the Table 2/3 experiments with initial slice sizes drawn
from an exponential distribution instead of being equal.  Shapes asserted on
two datasets (fashion-like and adult-like):

* the iterative method (Moderate) improves loss and unfairness over Original,
* Moderate's unfairness is at least as good as One-shot's (One-shot tends to
  over-acquire for individual slices, Table 11), and
* the per-slice allocations are highly non-uniform, compensating the skewed
  starting sizes (slices that start large receive less than slices that
  start small, in aggregate).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, experiment_config

from repro.datasets.registry import build_task
from repro.experiments.reporting import allocations_table, methods_table
from repro.experiments.runner import compare_methods

METHODS = ("oneshot", "moderate")
DATASETS = ("fashion_like", "adult_like")


def run_table10():
    results = {}
    for dataset in DATASETS:
        config = experiment_config(
            dataset, methods=METHODS, scenario="exponential", lam=1.0, seed=29, trials=2
        )
        results[dataset] = (config, compare_methods(config, include_original=True))
    return results


def test_table10_exponential_initial_sizes(run_once):
    results = run_once(run_table10)

    for dataset, (config, aggregates) in results.items():
        task = build_task(dataset)
        emit(
            f"Table 10 — exponential initial sizes on {dataset}",
            methods_table(aggregates, method_order=["original", *METHODS]),
        )
        emit(
            f"Table 11 — per-slice acquisitions on {dataset}",
            allocations_table(
                {m: aggregates[m] for m in METHODS}, slice_names=task.slice_names
            ),
        )

    for dataset, (config, aggregates) in results.items():
        original = aggregates["original"]
        moderate = aggregates["moderate"]
        # Moderate improves unfairness and does not hurt the loss (on the
        # nearly-saturated adult task the loss difference is within noise).
        assert moderate.loss_mean < original.loss_mean + 0.03
        assert moderate.avg_eer_mean < original.avg_eer_mean + 0.01
        assert moderate.avg_eer_mean <= aggregates["oneshot"].avg_eer_mean + 0.02

        # Table 11 shape: the allocation is strongly non-uniform — some
        # slices receive several times the average while others receive
        # (almost) nothing, compensating the skewed starting sizes.
        acquired = list(moderate.acquired_mean.values())
        mean_acquired = float(np.mean(acquired))
        assert max(acquired) > 1.5 * mean_acquired
        # The least-served slice sits well below the average (the exact gap
        # swings with the RNG stream — on adult_like it hovers around half
        # the average, so leave margin for seed noise).
        assert min(acquired) < 0.7 * mean_acquired
