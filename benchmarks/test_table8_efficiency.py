"""Table 8: amortized ("efficient") vs exhaustive learning-curve generation.

The paper's Table 8 compares the Moderate method with the default amortized
curve estimation (Section 4.2) against a variant that regenerates curves
exhaustively (one training per slice per subset size), reporting runtime and
loss/unfairness.  Shapes asserted:

* the amortized estimator performs roughly ``1/|S|`` of the exhaustive
  estimator's model trainings and is several times faster end to end, and
* the resulting loss and Avg. EER are comparable (within a small margin) —
  the efficiency does not cost quality.

The benchmark doubles as the engine smoke test: set ``REPRO_EXECUTOR`` to
``serial`` (default) or ``process`` to run every training through the chosen
:mod:`repro.engine` backend — the numbers must not depend on it — and set
``BENCH_ENGINE_OUT`` to a path to record wall-clock and training-count
numbers (the CI benchmark-smoke job uploads the resulting
``BENCH_engine.json``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import SPEED, emit

from repro.acquisition.source import GeneratorDataSource
from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.curves.estimator import CurveEstimationConfig
from repro.datasets.fashion import fashion_like_task
from repro.engine.executor import get_executor
from repro.experiments.config import fast_training_config
from repro.utils.tables import format_table

BUDGET = 1200.0
INITIAL_SIZE = 150


def _executor_name() -> str:
    return os.environ.get("REPRO_EXECUTOR", "serial").strip().lower()


def run_one(strategy: str) -> dict[str, float]:
    task = fashion_like_task()
    sliced = task.initial_sliced_dataset(
        INITIAL_SIZE, validation_size=SPEED["validation_size"], random_state=0
    )
    source = GeneratorDataSource(task, random_state=1)
    with get_executor(_executor_name()) as executor:
        tuner = SliceTuner(
            sliced,
            source,
            trainer_config=fast_training_config(epochs=SPEED["epochs"]),
            curve_config=CurveEstimationConfig(n_points=4, n_repeats=1, strategy=strategy),
            config=SliceTunerConfig(lam=1.0, evaluation_trials=2),
            random_state=2,
            executor=executor,
        )
        start = time.perf_counter()
        result = tuner.run(BUDGET, method="moderate")
        elapsed = time.perf_counter() - start
    return {
        "loss": result.final_report.loss,
        "avg_eer": result.final_report.avg_eer,
        "max_eer": result.final_report.max_eer,
        "runtime_s": elapsed,
        "trainings": tuner.estimator.trainings_performed,
        "iterations": result.n_iterations,
    }


def run_table8():
    return {strategy: run_one(strategy) for strategy in ("exhaustive", "amortized")}


def _record_bench(results: dict[str, dict[str, float]]) -> None:
    """Merge this run's numbers into ``$BENCH_ENGINE_OUT`` (when set)."""
    out = os.environ.get("BENCH_ENGINE_OUT")
    if not out:
        return
    path = Path(out)
    payload: dict = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload[_executor_name()] = {
        strategy: {
            "runtime_s": round(stats["runtime_s"], 3),
            "trainings": int(stats["trainings"]),
            "loss": round(stats["loss"], 6),
            "avg_eer": round(stats["avg_eer"], 6),
            "iterations": int(stats["iterations"]),
        }
        for strategy, stats in results.items()
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_table8_efficient_curve_generation(run_once):
    results = run_once(run_table8)
    _record_bench(results)

    rows = [
        [
            strategy,
            f"{stats['loss']:.3f}",
            f"{stats['avg_eer']:.3f} / {stats['max_eer']:.3f}",
            f"{stats['runtime_s']:.1f}",
            int(stats["trainings"]),
            int(stats["iterations"]),
        ]
        for strategy, stats in results.items()
    ]
    emit(
        "Table 8 — exhaustive vs amortized learning-curve generation "
        f"(fashion_like, init {INITIAL_SIZE}, budget {BUDGET:.0f}, "
        f"executor {_executor_name()})",
        format_table(
            headers=["curve generation", "Loss", "Avg./Max. EER", "runtime (s)", "model trainings", "iterations"],
            rows=rows,
        ),
    )

    exhaustive, amortized = results["exhaustive"], results["amortized"]
    # The amortized protocol trains roughly |S| = 10 times fewer curve models.
    assert amortized["trainings"] * 4 <= exhaustive["trainings"]
    # And is substantially faster end to end (the paper reports 11-12x; the
    # exact factor depends on iteration counts, so assert a conservative 2x).
    assert amortized["runtime_s"] * 2 <= exhaustive["runtime_s"]
    # Quality is comparable: loss and unfairness within a small margin (the
    # margins cover single-run seed noise; both runs share one seed and the
    # loss gap swings ~0.05-0.1 across RNG streams while avg_eer favours the
    # amortized protocol).
    assert amortized["loss"] <= exhaustive["loss"] + 0.1
    assert amortized["avg_eer"] <= exhaustive["avg_eer"] + 0.05
