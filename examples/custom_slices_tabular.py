"""Using Slice Tuner on your own tabular data with predicate-defined slices.

The other examples build slices from the synthetic task generators.  This one
shows the workflow for a dataset you already have as feature/label arrays
(an AdultCensus-like income prediction task):

1. slice an existing dataset with conjunctions of feature-value pairs
   (``gender = female AND race = black``), as in Section 2.1 of the paper,
2. assemble a :class:`SlicedDataset` with per-slice validation data and
   per-slice acquisition costs,
3. acquire new examples from a finite reserve pool (``PoolDataSource``) —
   the analogue of a fixed unlabeled corpus that can run dry, and
4. let the automatic slicer (Appendix A) suggest finer unbiased slices.

Run with::

    python examples/custom_slices_tabular.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CurveEstimationConfig,
    PoolDataSource,
    SliceTuner,
    SliceTunerConfig,
    TableCost,
    TrainingConfig,
    adult_like_task,
)
from repro.ml.data import train_validation_split
from repro.slices import AutoSlicer, FeaturePredicate, SlicedDataset, partition_by_predicates
from repro.utils.tables import format_table

#: The demographic encoding used by the synthetic generator: the slice
#: identity shows up in which of the trailing feature columns carries the
#: demographic offset, but for this example we slice on synthetic
#: "gender"/"race" indicator columns appended below.
SLICE_NAMES = ("White_Male", "White_Female", "Black_Male", "Black_Female")


def build_raw_dataset(rng: np.random.Generator):
    """Materialize one flat dataset with explicit gender/race indicator columns."""
    task = adult_like_task()
    parts, genders, races = [], [], []
    for name in SLICE_NAMES:
        examples = task.generate(name, 700, random_state=rng)
        parts.append(examples)
        race, gender = name.split("_")
        genders.extend([1.0 if gender == "Female" else 0.0] * len(examples))
        races.extend([1.0 if race == "Black" else 0.0] * len(examples))
    from repro.ml.data import Dataset

    combined = Dataset.concatenate(parts)
    features = np.column_stack(
        [combined.features, np.asarray(genders), np.asarray(races)]
    )
    return Dataset(features, combined.labels), task


def main() -> None:
    rng = np.random.default_rng(0)
    dataset, task = build_raw_dataset(rng)
    gender_col = dataset.n_features - 2
    race_col = dataset.n_features - 1

    # 1. Slice with conjunctions of feature-value pairs.
    predicates = {
        "White_Male": FeaturePredicate(equals={gender_col: 0.0, race_col: 0.0}),
        "White_Female": FeaturePredicate(equals={gender_col: 1.0, race_col: 0.0}),
        "Black_Male": FeaturePredicate(equals={gender_col: 0.0, race_col: 1.0}),
        "Black_Female": FeaturePredicate(equals={gender_col: 1.0, race_col: 1.0}),
    }
    slices = partition_by_predicates(dataset, predicates)

    # 2. Per slice: keep a small training set, a validation set, and leave the
    #    rest as the acquisition reserve pool.
    train_by_slice, validation_by_slice, pools = {}, {}, {}
    initial_sizes = {"White_Male": 300, "White_Female": 150, "Black_Male": 80, "Black_Female": 50}
    for name, data in slices.items():
        reserve, rest = train_validation_split(data, validation_size=300, random_state=rng)
        validation, remainder = train_validation_split(rest, validation_size=200, random_state=rng)
        train_by_slice[name] = remainder.take(initial_sizes[name])
        validation_by_slice[name] = validation
        pools[name] = reserve

    costs = {"White_Male": 1.0, "White_Female": 1.0, "Black_Male": 1.3, "Black_Female": 1.5}
    sliced = SlicedDataset.from_datasets(
        train_by_slice, validation_by_slice, n_classes=2, costs=costs
    )

    # 3. Acquire from the finite pools.
    source = PoolDataSource(pools, random_state=1)
    tuner = SliceTuner(
        sliced,
        source,
        trainer_config=TrainingConfig(epochs=40, batch_size=64, learning_rate=0.05),
        curve_config=CurveEstimationConfig(n_points=5, n_repeats=1),
        cost_model=TableCost(costs),
        config=SliceTunerConfig(lam=1.0, min_slice_size=60, evaluation_trials=2),
        random_state=2,
    )
    result = tuner.run(budget=400, method="conservative")

    rows = [
        [name, initial_sizes[name], result.total_acquired.get(name, 0), source.available(name)]
        for name in SLICE_NAMES
    ]
    print(
        format_table(
            headers=["slice", "initial size", "acquired", "left in pool"],
            rows=rows,
            title="Conservative acquisition from finite pools (budget 400)",
        )
    )
    print()
    print(
        f"loss    {result.initial_report.loss:.3f} -> {result.final_report.loss:.3f}\n"
        f"avg EER {result.initial_report.avg_eer:.3f} -> {result.final_report.avg_eer:.3f}"
    )

    # 4. Appendix A: let the automatic slicer propose finer unbiased slices.
    print()
    print("Automatic slicing of the White_Male slice (Appendix A):")
    auto = AutoSlicer(max_depth=2, min_slice_size=50, entropy_threshold=0.45)
    for leaf in auto.slice(slices["White_Male"]):
        print(f"  {leaf.name}: {len(leaf.dataset)} examples, label entropy {leaf.entropy:.2f}")


if __name__ == "__main__":
    main()
