"""Crowdsourced face-image acquisition (the paper's UTKFace scenario).

The UTKFace experiment of the paper acquires new face images per demographic
slice through Amazon Mechanical Turk: workers take different amounts of time
per demographic (Table 1), make mistakes, and submit duplicates, and the
per-slice acquisition cost is derived from the average task time.

This example reproduces that pipeline with the crowdsourcing simulator:

* the 8 race x gender slices start with equal data,
* acquisition goes through :class:`CrowdsourcingSimulator`, which simulates
  task durations, filters mistakes/duplicates, and re-derives the cost table,
* Slice Tuner (Moderate) decides how many images to request per slice.

Run with::

    python examples/crowdsourced_faces.py
"""

from __future__ import annotations

from repro import (
    CrowdsourcingSimulator,
    CurveEstimationConfig,
    GeneratorDataSource,
    SliceTuner,
    SliceTunerConfig,
    TableCost,
    TrainingConfig,
    WorkerPool,
    faces_like_task,
)
from repro.datasets.faces import UTKFACE_COSTS, UTKFACE_TASK_SECONDS
from repro.utils.tables import format_table


def main() -> None:
    task = faces_like_task()
    sliced = task.initial_sliced_dataset(
        initial_sizes=300, validation_size=200, random_state=0
    )

    # Acquisition goes through the simulated crowdsourcing campaign: workers
    # find genuine examples most of the time, but some submissions are wrong
    # or duplicated and get filtered in post-processing.
    crowd = CrowdsourcingSimulator(
        source=GeneratorDataSource(task, random_state=1),
        task_seconds=UTKFACE_TASK_SECONDS,
        workers=WorkerPool(mistake_rate=0.06, duplicate_rate=0.04, speed_spread=0.3),
        random_state=2,
    )

    tuner = SliceTuner(
        sliced,
        crowd,
        trainer_config=TrainingConfig(epochs=40, batch_size=64, learning_rate=0.03),
        curve_config=CurveEstimationConfig(n_points=6, n_repeats=1),
        cost_model=TableCost(UTKFACE_COSTS),
        config=SliceTunerConfig(lam=1.0, evaluation_trials=2),
        random_state=3,
    )

    result = tuner.run(budget=2500, method="moderate")

    print("Requested vs delivered per slice (after filtering):")
    summary = crowd.summary()
    rows = [
        [
            name,
            stats["requested"],
            stats["delivered"],
            stats["mistakes_filtered"],
            stats["duplicates_filtered"],
            f"{stats['total_seconds'] / 3600.0:.1f} h",
        ]
        for name, stats in summary.items()
    ]
    print(
        format_table(
            headers=["slice", "requested", "delivered", "mistakes", "duplicates", "worker time"],
            rows=rows,
        )
    )

    print()
    print("Costs derived from observed task times (Table 1 construction):")
    derived = crowd.derive_costs()
    rows = [[name, UTKFACE_COSTS[name], derived[name]] for name in derived]
    print(format_table(headers=["slice", "paper cost", "derived cost"], rows=rows))

    print()
    print("Loss / unfairness before and after the campaign:")
    print(
        f"  loss    {result.initial_report.loss:.3f} -> {result.final_report.loss:.3f}"
    )
    print(
        f"  avg EER {result.initial_report.avg_eer:.3f} -> "
        f"{result.final_report.avg_eer:.3f}"
    )
    print(
        f"  max EER {result.initial_report.max_eer:.3f} -> "
        f"{result.final_report.max_eer:.3f}"
    )


if __name__ == "__main__":
    main()
