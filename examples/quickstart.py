"""Quickstart: selectively acquire data for a Fashion-MNIST-like task.

This is the smallest end-to-end use of the library:

1. build a synthetic task with ten label-defined slices,
2. start every slice with the same amount of data,
3. pick an acquisition strategy from the registry (any name printed by
   ``available_strategies()`` works, including the ``bandit`` comparator),
4. stream the run through a ``TunerSession`` — each acquisition batch is
   yielded as it lands, with an early-stop predicate cutting the run short
   once the slices are nearly balanced,
5. compare loss and unfairness before and after, and round-trip the result
   through JSON, and
6. tour the execution-engine knobs: every model training funnels through an
   ``Executor`` (serial or process pool — the backend never changes the
   numbers, because per-job seeds are spawned up-front) and an optional
   content-addressed ``ResultCache`` that makes repeated trainings free, and
7. tour the acquisition service: sources are *named providers* (the
   registry behind ``available_sources()`` / the CLI ``sources``
   subcommand), a tuner can route every acquisition across a provider
   table with failover (a draining pool backed by the generator), and the
   session streams each ``Fulfillment`` — delivered count, shortfall,
   provenance — as an event, and
8. make a run *durable*: start a ``Campaign`` persisting every iteration
   and snapshot to a store, kill it mid-run (here: simply abandon the
   object, the moral equivalent of ``kill -9`` — nothing is flushed at
   exit), then ``resume`` from the store and get a result byte-identical
   to an uninterrupted run, and
9. serve it all as a daemon: a ``TunerService`` pumps one shared scheduler
   in the background, a ``TunerServer`` exposes the HTTP campaign API, and
   a ``TunerClient`` submits a campaign, tails its live event stream
   (Server-Sent Events, resumable from any cursor), and fetches the final
   result — identical to running the same spec in-process, and
10. discover slices instead of taking them as given: a registered
    discovery method (``stump`` / ``kmeans`` / ``auto``) learns a
    partition from a trained model's behaviour, and a ``dynamic_slices``
    campaign re-runs discovery every few iterations mid-run, persisting
    each re-slice boundary as a durable event so crash-resume stays
    byte-identical, and
11. make the cache itself durable: a ``SqliteResultCache`` persists every
    training (and, with incremental curves, every fitted curve) to one
    sqlite file in WAL mode, shared by serial runs, pool workers, and
    restarted processes alike — a cold run trains and persists, a fresh
    handle over the same file (a restarted process) re-estimates with
    **zero** trainings and identical curves.  The CLI wires it through
    ``--cache-dir`` / ``REPRO_CACHE_DIR`` and manages the file with the
    ``cache stats / gc / clear`` subcommand, and

12. report over everything that happened: ``Analytics`` mirrors a campaign
    store's event log into a separate analytics database and serves named
    SQL views (per-slice trajectories, fulfillment shortfall/failover
    rates, scheduler fairness, curve-reuse and re-slice trends), each one
    verified row-for-row against a pure-Python reference by
    ``assert_consistent``.  The CLI equivalent is ``python -m repro.cli
    report summary|slices|fulfillment|fairness|cache [--json] [--verify]``,
    and a running daemon serves the *same* payloads at
    ``GET /reports/summary`` and ``GET /campaigns/<id>/report``, and

13. watch where the time goes: ``telemetry.configure(trace_dir=...)``
    turns on structured tracing — every iteration, acquisition,
    provider call, and engine job emits a ``Span`` whose id derives
    from (parent, name, sequence), never from clocks, so a traced run
    is byte-identical to an untraced one — plus a Counter/Gauge/
    Histogram ``MetricsRegistry``.  Spans land in ``spans.jsonl``, the
    final metrics snapshot in ``metrics.json``, and ``python -m
    repro.cli telemetry spans|metrics|summary`` (or a daemon's
    ``GET /metrics`` / ``GET /campaigns/<id>/spans``) reads them back.
    When tracing is off (the default) every instrumented path hits a
    no-op tracer and costs nothing, and

14. watch the watchers: every campaign is monitored by declarative SLO
    ``AlertRule``s (``available_rules()`` / ``python -m repro.cli monitor
    rules``) evaluated over rolling windows keyed by iteration — never
    wall-clock — so the durable ``alert`` events a flaky run fires are
    byte-identical across executors, store backends, and crash-resume.
    A ``HealthEvaluator`` folds the same alerts (plus live metric
    snapshots) into per-component verdicts: the CLI surface is
    ``monitor alerts|status|watch|bench``, the daemon's is
    ``GET /health/deep`` (503 while critical) and ``GET /alerts``, and
    the ``alert_history`` analytics view serves the identical rows with
    SQL — verified row-for-row against a Python reference.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import os
import tempfile

import repro.telemetry as telemetry
from repro import (
    Analytics,
    Campaign,
    CampaignSpec,
    CurveEstimationConfig,
    GeneratorDataSource,
    HealthEvaluator,
    InMemoryResultCache,
    InMemoryStore,
    PoolDataSource,
    SerialExecutor,
    SliceTuner,
    SliceTunerConfig,
    SqliteResultCache,
    TrainingConfig,
    TunerClient,
    TunerServer,
    TunerService,
    TuningResult,
    alert_history,
    assert_consistent,
    available_discovery_methods,
    available_rules,
    available_sources,
    available_strategies,
    fashion_like_task,
    get_discovery_method,
)


def main() -> None:
    # 1. The task: ten clothing classes, one slice per class.
    task = fashion_like_task()

    # 2. Initial data: 150 training examples per slice plus a fixed
    #    validation set per slice used to measure per-slice loss.
    sliced = task.initial_sliced_dataset(
        initial_sizes=150, validation_size=200, random_state=0
    )
    # New data comes from the task's generative model — the stand-in for
    # crowdsourcing or dataset search.
    source = GeneratorDataSource(task, random_state=1)

    # 3. The tuner: fixed training hyperparameters, amortized learning-curve
    #    estimation, and lambda = 1 balancing loss and fairness.  Every
    #    acquisition policy is a registered strategy.
    print(f"Registered strategies: {', '.join(available_strategies())}")
    tuner = SliceTuner(
        sliced,
        source,
        trainer_config=TrainingConfig(epochs=40, batch_size=64, learning_rate=0.03),
        curve_config=CurveEstimationConfig(n_points=6, n_repeats=1),
        config=SliceTunerConfig(lam=1.0, evaluation_trials=2),
        random_state=2,
    )

    print("\nFitted learning curves (loss = b * size^-a):")
    for name, curve in tuner.estimate_curves().items():
        print(f"  {curve.describe()}  (reliability {curve.reliability:.2f})")

    # 4. Stream the run: one IterationRecord per acquisition batch, stopping
    #    early once the imbalance ratio drops below 1.2.
    initial_report = tuner.evaluate()
    session = tuner.session(
        on_acquire=lambda record: print(
            f"  iteration {record.iteration}: "
            f"+{sum(record.acquired.values())} examples, "
            f"spent {record.spent:.0f}, "
            f"imbalance {record.imbalance_after:.2f}"
        )
    )
    print("\nStreaming a Moderate run (budget 2000):")
    for _ in session.stream(
        budget=2000,
        strategy="moderate",
        stop_when=lambda record: record.imbalance_after < 1.2,
    ):
        pass
    result = session.result()
    result.initial_report = initial_report
    result.final_report = tuner.evaluate()

    # 5. Inspect the outcome; to_json()/from_json() round-trips the result
    #    for checkpoints and CI artifacts.
    print()
    print(result.acquisitions_table())
    print()
    print("Before acquisition:")
    print(result.initial_report.to_text())
    print()
    print("After acquisition:")
    print(result.final_report.to_text())
    restored = TuningResult.from_json(result.to_json())
    assert restored.total_acquired == result.total_acquired

    # 6. Engine knobs.  The executor decides *where* trainings run —
    #    SerialExecutor() in-process, ProcessPoolExecutor(max_workers=N)
    #    across worker processes — and the result cache decides *whether*
    #    they run at all: jobs are fingerprinted by data content, trainer
    #    config, model family, and seed, so re-estimating curves on
    #    unchanged data is served entirely from cache.
    #    (SliceTunerConfig(incremental_curves=True) goes further: refits
    #    skip entirely when nothing changed, and the exhaustive protocol
    #    re-measures only the slices whose pools changed.)
    cache = InMemoryResultCache()
    cached_tuner = SliceTuner(
        task.initial_sliced_dataset(
            initial_sizes=150, validation_size=200, random_state=0
        ),
        GeneratorDataSource(task, random_state=1),
        trainer_config=TrainingConfig(epochs=40, batch_size=64, learning_rate=0.03),
        curve_config=CurveEstimationConfig(n_points=6, n_repeats=1),
        random_state=2,
        executor=SerialExecutor(),  # or ProcessPoolExecutor(max_workers=4)
        result_cache=cache,
    )
    cached_tuner.estimate_curves()
    cold_trainings = cached_tuner.estimator.trainings_performed
    cached_tuner.estimate_curves()  # warm: zero new trainings
    assert cached_tuner.estimator.trainings_performed == cold_trainings
    print(
        f"\nEngine: {cold_trainings} trainings cold, 0 warm "
        f"({cache.stats.hits} cache hits, hit rate {cache.stats.hit_rate:.0%})"
    )

    # 7. The acquisition service.  Sources are named providers (see
    #    `python -m repro.cli sources`); a tuner routes every acquisition
    #    across its provider table in priority order, so a finite pool that
    #    drains mid-run fails over to the generator instead of ending the
    #    run, and every delivery surfaces as a Fulfillment event carrying
    #    its provenance and shortfall.
    print(f"\nRegistered source providers: {', '.join(available_sources())}")
    pools = {
        name: task.generate(name, 40, random_state=10 + i)
        for i, name in enumerate(task.slice_names)
    }
    routed_tuner = SliceTuner(
        task.initial_sliced_dataset(
            initial_sizes=150, validation_size=200, random_state=0
        ),
        trainer_config=TrainingConfig(epochs=40, batch_size=64, learning_rate=0.03),
        curve_config=CurveEstimationConfig(n_points=6, n_repeats=1),
        random_state=2,
        sources={
            "pool": PoolDataSource(pools, random_state=3),     # tried first
            "generator": GeneratorDataSource(task, random_state=4),  # failover
        },
    )
    print("Streaming with pool -> generator failover (budget 600):")
    routed_session = routed_tuner.session()
    for event in routed_session.stream_events(budget=600, strategy="uniform"):
        if event.kind == "fulfillment":
            f = event.fulfillment
            print(
                f"  {f.slice_name}: {f.delivered_count}/{f.effective_count} "
                f"delivered via {'+'.join(f.provenance) or '-'} ({f.status})"
            )
        else:
            print(f"  iteration {event.record.iteration} complete")

    # 8. Campaigns: durable runs.  A CampaignSpec declaratively names the
    #    work (dataset, scenario, strategy, budget, seed), a store persists
    #    an append-only event log plus runtime-state snapshots, and
    #    Campaign.resume() rebuilds everything from the store — the resumed
    #    result is byte-identical to a never-interrupted run.  Swap the
    #    in-memory store for SqliteStore("campaigns.sqlite") (or use
    #    `python -m repro.cli campaign start/resume/list/show`) to survive
    #    a real kill -9.
    store = InMemoryStore()
    spec = CampaignSpec(
        name="quickstart",
        dataset="adult_like",
        method="moderate",
        budget=600,
        base_size=50,
        validation_size=50,
        epochs=8,
        curve_points=3,
    )
    print("\nCampaign start -> kill -> resume:")
    doomed = Campaign.start(store, spec)
    doomed.advance()                  # one iteration (event + snapshot) lands...
    del doomed                        # ...then the process "dies": no pause(),
    # no final flush — the status is still "running", exactly the state a
    # real kill -9 leaves behind (tests/campaigns/test_crash_resume.py
    # SIGKILLs an actual subprocess; the sqlite-backed CLI survives the same
    # way: `python -m repro.cli campaign resume --all`).

    revived = Campaign.resume(store, spec.campaign_id())
    resumed_result = revived.run()
    baseline = Campaign.start(InMemoryStore(), spec).run()
    assert resumed_result.to_json() == baseline.to_json()
    print(
        f"  resumed {revived.campaign_id}: "
        f"{resumed_result.n_iterations} iterations, "
        f"spent {resumed_result.spent:.0f} — byte-identical to uninterrupted"
    )

    # 9. The tuner service daemon.  One TunerService pumps a shared
    #    scheduler on a background thread; the HTTP layer serves any number
    #    of concurrent clients (the CLI equivalent: `python -m repro.cli
    #    serve --store campaigns.sqlite`, then `remote submit/tail/show`
    #    from other terminals).  Events stream over SSE with durable
    #    cursors, and the wire-served result is identical to step 8's.
    print("\nTuner service daemon (HTTP + SSE):")
    service = TunerService().start()
    server = TunerServer(service).start_background()   # port 0 = pick free
    client = TunerClient(server.url)
    campaign_id = client.submit(spec.to_dict())["campaign_id"]
    for frame in client.tail(campaign_id):             # replay + live tail
        if frame["event"] == "iteration":
            payload = frame["data"]["payload"]
            print(
                f"  [SSE {frame['id']}] iteration {payload['iteration']}: "
                f"spent {payload['spent']:.0f}"
            )
    served_result = client.result(campaign_id)
    assert served_result == baseline.to_dict()
    stats = client.stats()
    print(
        f"  served result identical to in-process run "
        f"({stats['requests']} requests, "
        f"{stats['events_streamed']} events streamed); draining..."
    )
    server.shutdown()
    service.close()

    # 10. Slice discovery + dynamic re-slicing.  Slices don't have to be
    #     given: a registered discovery method (`python -m repro.cli
    #     discover --list`) learns a partition of feature space, and the
    #     dynamic_slices scenario re-runs discovery every 2 iterations,
    #     swapping the tuner onto the discovered slices mid-run.  Every
    #     re-slice boundary is a durable "reslice" event in the campaign
    #     store, so a kill -9 at a boundary still resumes byte-identically
    #     (tests/campaigns/test_dynamic_reslice.py asserts exactly that).
    print(f"\nSlice discovery ({', '.join(available_discovery_methods())}):")
    auto = get_discovery_method("auto", max_depth=3, min_slice_size=30)
    discovered = auto.fit(None, sliced.combined_train()).transform(sliced)
    print(
        f"  auto discovered {len(discovered.names)} slices "
        f"[{auto.fingerprint()[:12]}]"
    )

    dynamic_store = InMemoryStore()
    dynamic = Campaign.start(
        dynamic_store,
        CampaignSpec(
            name="dynamic",
            dataset="adult_like",
            scenario="dynamic_slices",     # carries discover="kmeans", every 2
            method="conservative",
            budget=500,
            seed=20_000,
            base_size=60,
            validation_size=60,
            epochs=8,
            curve_points=3,
        ),
    )
    dynamic_result = dynamic.run()
    for event in dynamic_store.events(dynamic.campaign_id):
        if event.kind == "reslice":
            payload = event.payload
            print(
                f"  reslice @ iteration {event.iteration}: generation "
                f"{payload['slice_generation']} ({payload['method']}) -> "
                f"{', '.join(payload['slice_names'])}"
            )
    print(
        f"  dynamic campaign done: {dynamic_result.n_iterations} iterations, "
        f"spent {dynamic_result.spent:.0f}, "
        f"slice generation {dynamic.slice_generation}"
    )

    # 11. The persistent cache.  Step 6's cache dies with the process; a
    #     SqliteResultCache is the same protocol backed by one WAL-mode
    #     sqlite file, so a *fresh handle over the same file* — standing in
    #     for a restarted process here, and literally another process under
    #     the pool executor or the serve daemon — re-estimates everything
    #     with zero trainings and identical curves.
    print("\nPersistent cache (one sqlite file, shared across restarts):")
    with tempfile.TemporaryDirectory() as cache_dir:
        cache_path = os.path.join(cache_dir, "cache.sqlite")

        def estimate_with(cache: SqliteResultCache) -> tuple[dict, int]:
            cached = SliceTuner(
                task.initial_sliced_dataset(
                    initial_sizes=150, validation_size=200, random_state=0
                ),
                GeneratorDataSource(task, random_state=1),
                trainer_config=TrainingConfig(
                    epochs=40, batch_size=64, learning_rate=0.03
                ),
                curve_config=CurveEstimationConfig(n_points=6, n_repeats=1),
                random_state=2,
                result_cache=cache,
            )
            curves = cached.estimate_curves()
            return curves, cached.estimator.trainings_performed

        with SqliteResultCache(cache_path) as cold_cache:
            cold_curves, cold_n = estimate_with(cold_cache)
        with SqliteResultCache(cache_path) as warm_cache:  # "restarted"
            warm_curves, warm_n = estimate_with(warm_cache)
            hits = warm_cache.tier_stats()["results"].hits
        assert cold_n > 0 and warm_n == 0
        assert {n: c.describe() for n, c in warm_curves.items()} == {
            n: c.describe() for n, c in cold_curves.items()
        }
        print(
            f"  {cold_n} trainings cold, {warm_n} after restart "
            f"({hits} served from disk, curves identical)"
        )

    # 12. Analytics over the event log.  The dynamic campaign of step 10
    #     left a real log behind (iterations, fulfillments, a reslice);
    #     Analytics mirrors it into a separate database — the store is only
    #     ever *read* — and every SQL view is checked row-for-row against
    #     its pure-Python reference before we trust a single number.  A
    #     daemon over the same store serves the identical payload at
    #     GET /reports/summary (and `python -m repro.cli report` prints it).
    print("\nAnalytics (SQL views over the campaign event log):")
    with Analytics(dynamic_store) as analytics:
        analytics.refresh()
        counts = assert_consistent(dynamic_store, analytics)
        print(
            f"  verified {sum(counts.values())} row(s) across "
            f"{len(counts)} view(s) against the Python reference"
        )
        summary = analytics.report("summary")
        columns = summary["sections"]["campaign_rollup"]["columns"]
        for row in summary["sections"]["campaign_rollup"]["rows"]:
            rollup = dict(zip(columns, row))
            print(
                f"  {rollup['campaign_id']}: {rollup['status']}, "
                f"{rollup['iterations']} iterations, "
                f"spent {rollup['spent']:.0f}, "
                f"slice generation {rollup['slice_generation']}"
            )
    report_service = TunerService(store=dynamic_store)
    report_server = TunerServer(report_service).start_background()
    served = TunerClient(report_server.url).report("cache")
    assert served["sections"]["reslice_trends"]["rows"], "reslice missing"
    print(
        f"  GET /reports/summary?kind=cache served "
        f"{len(served['sections']['reslice_trends']['rows'])} reslice "
        f"trend row(s) — same builder, same payload"
    )
    report_server.shutdown()
    report_service.close()

    # 13. Telemetry.  Everything above ran untraced — the instrumented
    #     paths hit a no-op tracer and cost nothing.  Turn tracing on and
    #     the same run also leaves a profile behind: one span per
    #     iteration / acquisition / provider call, all deterministically
    #     id'd, so the *result* is byte-identical either way (the
    #     benchmark suite gates that, plus <5% overhead, in CI).
    print("\nTelemetry (structured tracing + metrics):")
    with tempfile.TemporaryDirectory() as trace_dir:
        live_names: list[str] = []
        tracer = telemetry.configure(trace_dir=trace_dir)
        tracer.add_listener(lambda span: live_names.append(span.name))
        previous_registry = telemetry.set_registry(telemetry.MetricsRegistry())
        try:
            traced_tuner = SliceTuner(
                task.initial_sliced_dataset(
                    initial_sizes=150, validation_size=200, random_state=0
                ),
                GeneratorDataSource(task, random_state=1),
                trainer_config=TrainingConfig(
                    epochs=40, batch_size=64, learning_rate=0.03
                ),
                curve_config=CurveEstimationConfig(n_points=6, n_repeats=1),
                random_state=2,
            )
            traced_session = traced_tuner.session()
            for _ in traced_session.stream(budget=1000, strategy="moderate"):
                pass
        finally:
            telemetry.shutdown()
            telemetry.set_registry(previous_registry)
        total, rollup = telemetry.summarize_spans(
            telemetry.read_spans(trace_dir)
        )
        counters = telemetry.read_metrics(trace_dir).get("counters", {})
        assert len(live_names) == total  # the on_span hook saw every one
        print(
            f"  {total} spans ({len(rollup)} names), "
            f"{counters.get('session.iterations', 0):.0f} iterations counted"
        )
        for name in ("session.iteration", "acquisition.provider"):
            entry = rollup[name]
            print(
                f"  {name}: {entry['count']} span(s), "
                f"mean {entry['mean_seconds']:.4f}s, "
                f"max {entry['max_seconds']:.4f}s"
            )
    assert not telemetry.get_tracer().enabled  # back to the free no-op

    # 14. Health & alerting.  Campaigns monitor themselves: the flaky
    #     provider scenario below falls short of its requests early on,
    #     which trips the built-in acquisition rules
    #     (`fulfillment_shortfall`, `provider_failover`) — each
    #     transition is persisted as a durable `alert` event, replayable
    #     like every other event, and resolved by the time the campaign
    #     completes.  `alert_history` is the same surface the CLI
    #     (`monitor alerts`), the daemon (`GET /alerts`), and the
    #     `alert_history` analytics view serve.
    print("\nHealth & alerting (SLO rules over the event log):")
    print(f"  registered rules: {', '.join(available_rules())}")
    monitor_store = InMemoryStore()
    flaky = Campaign.start(
        monitor_store,
        CampaignSpec(
            name="flaky",
            dataset="adult_like",
            scenario="flaky_source",
            method="moderate",
            budget=300.0,
            seed=0,
            base_size=60,
            validation_size=50,
            epochs=8,
            curve_points=3,
        ),
    )
    flaky.run()
    alerts = alert_history(monitor_store)
    assert alerts, "the flaky source should have tripped a rule"
    for alert in alerts:
        print(
            f"  iter {alert['iteration']:>2}: {alert['rule']} "
            f"{alert['state']} ({alert['severity']}) — "
            f"value {alert['value']:.3f} vs threshold {alert['threshold']}"
        )
    verdict = HealthEvaluator().health(store=monitor_store)
    assert verdict["status"] == "ok"  # completed campaigns are healthy
    print(f"  post-run health verdict: {verdict['status']}")


if __name__ == "__main__":
    main()
