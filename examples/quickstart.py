"""Quickstart: selectively acquire data for a Fashion-MNIST-like task.

This is the smallest end-to-end use of the library:

1. build a synthetic task with ten label-defined slices,
2. start every slice with the same amount of data,
3. ask Slice Tuner (Moderate strategy) how to spend a budget of 2,000
   examples, let it acquire them, and
4. compare loss and unfairness before and after.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CurveEstimationConfig,
    GeneratorDataSource,
    SliceTuner,
    SliceTunerConfig,
    TrainingConfig,
    fashion_like_task,
)


def main() -> None:
    # 1. The task: ten clothing classes, one slice per class.
    task = fashion_like_task()

    # 2. Initial data: 150 training examples per slice plus a fixed
    #    validation set per slice used to measure per-slice loss.
    sliced = task.initial_sliced_dataset(
        initial_sizes=150, validation_size=200, random_state=0
    )
    # New data comes from the task's generative model — the stand-in for
    # crowdsourcing or dataset search.
    source = GeneratorDataSource(task, random_state=1)

    # 3. The tuner: fixed training hyperparameters, amortized learning-curve
    #    estimation, and lambda = 1 balancing loss and fairness.
    tuner = SliceTuner(
        sliced,
        source,
        trainer_config=TrainingConfig(epochs=40, batch_size=64, learning_rate=0.03),
        curve_config=CurveEstimationConfig(n_points=6, n_repeats=1),
        config=SliceTunerConfig(lam=1.0, evaluation_trials=2),
        random_state=2,
    )

    print("Fitted learning curves (loss = b * size^-a):")
    for name, curve in tuner.estimate_curves().items():
        print(f"  {curve.describe()}  (reliability {curve.reliability:.2f})")

    result = tuner.run(budget=2000, method="moderate")

    print()
    print(result.acquisitions_table())
    print()
    print("Before acquisition:")
    print(result.initial_report.to_text())
    print()
    print("After acquisition:")
    print(result.final_report.to_text())


if __name__ == "__main__":
    main()
