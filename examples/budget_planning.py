"""Budget planning: compare acquisition strategies before spending anything.

A practitioner with a limited labeling budget wants to know (a) how much each
strategy would improve the model and (b) how a Slice Tuner plan differs from
naive strategies, *before* committing to a crowdsourcing campaign.

This example uses the Mixed-MNIST-like task (20 slices from two sources with
very different learning curves) and:

1. prints the One-shot plan for several budgets (pure planning, no data is
   acquired), and
2. executes Uniform, Water filling, and Moderate on copies of the same
   starting data to compare final loss and unfairness — a small version of
   the paper's Figure 10 budget sweep.

Run with::

    python examples/budget_planning.py
"""

from __future__ import annotations

from repro import (
    CurveEstimationConfig,
    GeneratorDataSource,
    SliceTuner,
    SliceTunerConfig,
    TrainingConfig,
    mixed_like_task,
)
from repro.utils.tables import format_table


def build_tuner(seed: int) -> SliceTuner:
    """A fresh task/tuner pair so every strategy starts from identical data."""
    task = mixed_like_task()
    sliced = task.initial_sliced_dataset(
        initial_sizes=120, validation_size=150, random_state=seed
    )
    source = GeneratorDataSource(task, random_state=seed + 1)
    return SliceTuner(
        sliced,
        source,
        trainer_config=TrainingConfig(epochs=35, batch_size=64, learning_rate=0.03),
        curve_config=CurveEstimationConfig(n_points=5, n_repeats=1),
        config=SliceTunerConfig(lam=1.0, evaluation_trials=1),
        random_state=seed + 2,
    )


def main() -> None:
    # -- 1. pure planning: what would Slice Tuner buy at different budgets? --
    tuner = build_tuner(seed=0)
    curves = tuner.estimate_curves()
    print("Slices with the steepest learning curves (best data-acquisition value):")
    steepest = sorted(curves.values(), key=lambda c: c.a, reverse=True)[:5]
    for curve in steepest:
        print(f"  {curve.describe()}")
    print()
    for budget in (500, 1500, 3000):
        plan = tuner.plan(budget=budget, curves=curves)
        top = sorted(plan.counts.items(), key=lambda kv: kv[1], reverse=True)[:5]
        summary = ", ".join(f"{name}: {count}" for name, count in top if count > 0)
        print(f"budget {budget:5d} -> top allocations: {summary}")
    print()

    # -- 2. execute each strategy on identical starting data -----------------
    rows = []
    for method in ("uniform", "water_filling", "moderate"):
        runner = build_tuner(seed=7)
        result = runner.run(budget=2000, method=method)
        rows.append(
            [
                method,
                f"{result.final_report.loss:.3f}",
                f"{result.final_report.avg_eer:.3f}",
                f"{result.final_report.max_eer:.3f}",
                result.n_iterations,
            ]
        )
    print(
        format_table(
            headers=["method", "loss", "avg EER", "max EER", "iterations"],
            rows=rows,
            title="Executed strategies at budget 2000 (Mixed-MNIST-like)",
        )
    )


if __name__ == "__main__":
    main()
