"""Data sources: where acquired examples come from.

A :class:`DataSource` answers ``acquire(slice_name, count)`` with a
:class:`~repro.ml.data.Dataset` of (up to) ``count`` fresh examples for that
slice.  Two implementations cover the paper's settings:

* :class:`GeneratorDataSource` — unlimited, backed by a synthetic task's
  generative model; the analogue of a simulator or of the web at large.
* :class:`PoolDataSource` — finite per-slice reserve pools; the analogue of a
  fixed unlabeled corpus.  Useful to test Slice Tuner's behaviour when a
  slice runs dry.
"""

from __future__ import annotations

from typing import Mapping, Protocol, runtime_checkable

import numpy as np

from repro.datasets.blueprints import SyntheticTask
from repro.ml.data import Dataset
from repro.utils.exceptions import AcquisitionError
from repro.utils.rng import RandomState, as_generator


@runtime_checkable
class DataSource(Protocol):
    """Anything that can deliver new examples for a named slice."""

    def acquire(self, slice_name: str, count: int) -> Dataset:
        """Return up to ``count`` fresh examples for ``slice_name``."""
        ...

    def available(self, slice_name: str) -> int | None:
        """Remaining examples for ``slice_name`` (``None`` when unlimited)."""
        ...


class GeneratorDataSource:
    """Unlimited source backed by a :class:`SyntheticTask`'s generative model.

    Parameters
    ----------
    task:
        The synthetic task whose ``generate`` method produces examples.
    random_state:
        Seed or generator for the draws.
    """

    def __init__(self, task: SyntheticTask, random_state: RandomState = None) -> None:
        self._task = task
        self._rng = as_generator(random_state)
        self.total_delivered = 0

    def acquire(self, slice_name: str, count: int) -> Dataset:
        """Generate ``count`` fresh examples for ``slice_name``."""
        count = int(count)
        if count < 0:
            raise AcquisitionError(f"cannot acquire a negative count ({count})")
        dataset = self._task.generate(slice_name, count, random_state=self._rng)
        self.total_delivered += len(dataset)
        return dataset

    def available(self, slice_name: str) -> None:
        """Generators never run dry."""
        self._task.blueprint(slice_name)  # validates the name
        return None


class PoolDataSource:
    """Finite source drawing (without replacement) from per-slice pools.

    Parameters
    ----------
    pools:
        Mapping from slice name to the reserve dataset for that slice.
    random_state:
        Seed or generator controlling which pooled examples are handed out.
    strict:
        When True, asking for more examples than remain raises
        :class:`~repro.utils.exceptions.AcquisitionError`; when False (the
        default) the request is truncated to what is available, mirroring a
        crowdsourcing campaign that simply comes back short.
    """

    def __init__(
        self,
        pools: Mapping[str, Dataset],
        random_state: RandomState = None,
        strict: bool = False,
    ) -> None:
        if not pools:
            raise AcquisitionError("PoolDataSource needs at least one pool")
        self._remaining: dict[str, Dataset] = dict(pools)
        self._rng = as_generator(random_state)
        self.strict = bool(strict)
        self.total_delivered = 0

    def acquire(self, slice_name: str, count: int) -> Dataset:
        """Remove and return up to ``count`` examples from the slice's pool."""
        count = int(count)
        if count < 0:
            raise AcquisitionError(f"cannot acquire a negative count ({count})")
        pool = self._get_pool(slice_name)
        if count > len(pool):
            if self.strict:
                raise AcquisitionError(
                    f"slice {slice_name!r} has only {len(pool)} examples left "
                    f"but {count} were requested"
                )
            count = len(pool)
        if count == 0:
            return Dataset.empty(pool.n_features)
        order = self._rng.permutation(len(pool))
        taken_idx, kept_idx = order[:count], order[count:]
        taken = pool.subset(taken_idx)
        self._remaining[slice_name] = pool.subset(np.sort(kept_idx))
        self.total_delivered += len(taken)
        return taken

    def available(self, slice_name: str) -> int:
        """Number of examples left in the slice's pool."""
        return len(self._get_pool(slice_name))

    def _get_pool(self, slice_name: str) -> Dataset:
        try:
            return self._remaining[slice_name]
        except KeyError:
            raise AcquisitionError(
                f"no acquisition pool for slice {slice_name!r}"
            ) from None
