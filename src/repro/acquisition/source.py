"""Data sources: where acquired examples come from.

A :class:`DataSource` answers ``acquire(slice_name, count)`` with a
:class:`~repro.ml.data.Dataset` of (up to) ``count`` fresh examples for that
slice.  Two implementations cover the paper's settings:

* :class:`GeneratorDataSource` — unlimited, backed by a synthetic task's
  generative model; the analogue of a simulator or of the web at large.
* :class:`PoolDataSource` — finite per-slice reserve pools; the analogue of a
  fixed unlabeled corpus.  Useful to test Slice Tuner's behaviour when a
  slice runs dry.
* :class:`DiscoverySource` — adapts a base source that only understands the
  *original* task slices to the slices a fitted
  :class:`~repro.slices.discovery.SliceDiscoveryMethod` discovered, by
  rejection-sampling candidate batches and keeping the rows the method
  routes to the requested slice.
"""

from __future__ import annotations

from typing import Mapping, Protocol, runtime_checkable

import numpy as np

from repro.datasets.blueprints import SyntheticTask
from repro.ml.data import Dataset
from repro.utils.exceptions import AcquisitionError
from repro.utils.rng import RandomState, as_generator


@runtime_checkable
class DataSource(Protocol):
    """Anything that can deliver new examples for a named slice."""

    def acquire(self, slice_name: str, count: int) -> Dataset:
        """Return up to ``count`` fresh examples for ``slice_name``."""
        ...

    def available(self, slice_name: str) -> int | None:
        """Remaining examples for ``slice_name`` (``None`` when unlimited)."""
        ...


class GeneratorDataSource:
    """Unlimited source backed by a :class:`SyntheticTask`'s generative model.

    Parameters
    ----------
    task:
        The synthetic task whose ``generate`` method produces examples.
    random_state:
        Seed or generator for the draws.
    """

    def __init__(self, task: SyntheticTask, random_state: RandomState = None) -> None:
        self._task = task
        self._rng = as_generator(random_state)
        self.total_delivered = 0

    def acquire(self, slice_name: str, count: int) -> Dataset:
        """Generate ``count`` fresh examples for ``slice_name``."""
        count = int(count)
        if count < 0:
            raise AcquisitionError(f"cannot acquire a negative count ({count})")
        dataset = self._task.generate(slice_name, count, random_state=self._rng)
        self.total_delivered += len(dataset)
        return dataset

    def available(self, slice_name: str) -> None:
        """Generators never run dry."""
        self._task.blueprint(slice_name)  # validates the name
        return None


class PoolDataSource:
    """Finite source drawing (without replacement) from per-slice pools.

    Parameters
    ----------
    pools:
        Mapping from slice name to the reserve dataset for that slice.
    random_state:
        Seed or generator controlling which pooled examples are handed out.
    strict:
        When True, asking for more examples than remain raises
        :class:`~repro.utils.exceptions.AcquisitionError`; when False (the
        default) the request is truncated to what is available, mirroring a
        crowdsourcing campaign that simply comes back short.
    """

    def __init__(
        self,
        pools: Mapping[str, Dataset],
        random_state: RandomState = None,
        strict: bool = False,
    ) -> None:
        if not pools:
            raise AcquisitionError("PoolDataSource needs at least one pool")
        self._remaining: dict[str, Dataset] = dict(pools)
        self._rng = as_generator(random_state)
        self.strict = bool(strict)
        self.total_delivered = 0

    def acquire(self, slice_name: str, count: int) -> Dataset:
        """Remove and return up to ``count`` examples from the slice's pool."""
        count = int(count)
        if count < 0:
            raise AcquisitionError(f"cannot acquire a negative count ({count})")
        pool = self._get_pool(slice_name)
        if count > len(pool):
            if self.strict:
                raise AcquisitionError(
                    f"slice {slice_name!r} has only {len(pool)} examples left "
                    f"but {count} were requested"
                )
            count = len(pool)
        if count == 0:
            return Dataset.empty(pool.n_features)
        order = self._rng.permutation(len(pool))
        taken_idx, kept_idx = order[:count], order[count:]
        taken = pool.subset(taken_idx)
        self._remaining[slice_name] = pool.subset(np.sort(kept_idx))
        self.total_delivered += len(taken)
        return taken

    def available(self, slice_name: str) -> int:
        """Number of examples left in the slice's pool."""
        return len(self._get_pool(slice_name))

    def _get_pool(self, slice_name: str) -> Dataset:
        try:
            return self._remaining[slice_name]
        except KeyError:
            raise AcquisitionError(
                f"no acquisition pool for slice {slice_name!r}"
            ) from None


class DiscoverySource:
    """Serve *discovered* slices from a source that knows the original ones.

    Real providers (generators, pools, crowdsourcing campaigns) deliver
    examples for the task's original slices; after slice discovery the tuner
    asks for examples of slices that exist only as regions of feature space.
    This adapter bridges the two by rejection sampling: it draws candidate
    batches from every base slice in turn, routes each row through the
    fitted method's ``assign``, keeps the rows that land in the requested
    discovered slice, and stops after ``max_rounds`` sweeps even if the
    order is still short (a shortfall the acquisition service already
    accounts for).

    The adapter is deterministic (given a deterministic base source) and
    picklable, so it survives campaign snapshots; nested adapters never
    occur because re-slicing unwraps :attr:`base` before wrapping again.

    Parameters
    ----------
    base:
        The underlying source, addressed by the original slice names.
    method:
        A fitted + transformed discovery method whose ``assign`` /
        ``slice_names`` define the discovered slices.
    base_names:
        The original slice names to draw candidates from.
    n_features:
        Feature width, for empty deliveries.
    batch_size:
        Minimum candidate batch drawn per base slice per round.
    max_rounds:
        Maximum sweeps over the base slices per order.
    """

    def __init__(
        self,
        base: DataSource,
        method,
        base_names: list[str],
        n_features: int,
        batch_size: int = 32,
        max_rounds: int = 12,
    ) -> None:
        if not base_names:
            raise AcquisitionError("DiscoverySource needs at least one base slice")
        self.base = base
        self.method = method
        self.base_names = list(base_names)
        self._n_features = int(n_features)
        self._batch_size = int(batch_size)
        self._max_rounds = int(max_rounds)
        self.total_delivered = 0

    def _target_index(self, slice_name: str) -> int:
        try:
            return self.method.slice_names.index(slice_name)
        except ValueError:
            raise AcquisitionError(
                f"no discovered slice named {slice_name!r}; "
                f"known: {self.method.slice_names}"
            ) from None

    def acquire(self, slice_name: str, count: int) -> Dataset:
        """Rejection-sample up to ``count`` rows of the discovered slice."""
        count = int(count)
        if count < 0:
            raise AcquisitionError(f"cannot acquire a negative count ({count})")
        target = self._target_index(slice_name)
        if count == 0:
            return Dataset.empty(self._n_features)
        kept: list[Dataset] = []
        delivered = 0
        draw = max(self._batch_size, count)
        for _ in range(self._max_rounds):
            for base_name in self.base_names:
                batch = self.base.acquire(base_name, draw)
                if len(batch) == 0:
                    continue
                mask = (
                    np.asarray(self.method.assign(batch.features)) == target
                )
                if mask.any():
                    matched = batch.subset(np.nonzero(mask)[0])
                    kept.append(matched)
                    delivered += len(matched)
            if delivered >= count:
                break
        if not kept:
            return Dataset.empty(self._n_features)
        merged = Dataset.concatenate(kept)
        taken = merged.take(min(count, len(merged)))
        self.total_delivered += len(taken)
        return taken

    def available(self, slice_name: str) -> None:
        """Unknown ahead of time: rejection sampling has no fixed reserve."""
        self._target_index(slice_name)  # validates the name
        return None
