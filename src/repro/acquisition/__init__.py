"""Data acquisition substrate.

The paper abstracts over how new data is obtained (dataset search,
crowdsourcing, simulators) behind a per-slice cost function.  This package
provides the same abstraction:

* :class:`~repro.acquisition.source.DataSource` — interface with
  ``acquire(slice_name, count)``.
* :class:`~repro.acquisition.source.GeneratorDataSource` — unlimited
  simulator-backed source (wraps a :class:`repro.datasets.SyntheticTask`).
* :class:`~repro.acquisition.source.PoolDataSource` — finite reserve pools,
  modelling a fixed unlabeled corpus that can run dry.
* :mod:`~repro.acquisition.cost` — cost models (unit, per-slice table,
  escalating).
* :class:`~repro.acquisition.budget.BudgetLedger` — budget accounting.
* :class:`~repro.acquisition.crowdsourcing.CrowdsourcingSimulator` — the
  Amazon-Mechanical-Turk-style source with task durations, worker mistakes,
  duplicates, and a post-processing filter (Section 6.1).
"""

from repro.acquisition.budget import BudgetLedger
from repro.acquisition.cost import (
    CostModel,
    EscalatingCost,
    TableCost,
    UnitCost,
    cost_model_from_slices,
)
from repro.acquisition.crowdsourcing import (
    AcquisitionReport,
    CrowdsourcingSimulator,
    WorkerPool,
)
from repro.acquisition.source import (
    DataSource,
    GeneratorDataSource,
    PoolDataSource,
)

__all__ = [
    "DataSource",
    "GeneratorDataSource",
    "PoolDataSource",
    "CostModel",
    "UnitCost",
    "TableCost",
    "EscalatingCost",
    "cost_model_from_slices",
    "BudgetLedger",
    "WorkerPool",
    "CrowdsourcingSimulator",
    "AcquisitionReport",
]
