"""Data acquisition substrate.

The paper abstracts over how new data is obtained (dataset search,
crowdsourcing, simulators) behind a per-slice cost function.  This package
provides the same abstraction, plus the service layer that makes acquisition
batch-oriented, partially-fulfilled, and multi-source:

* :class:`~repro.acquisition.source.DataSource` — interface with
  ``acquire(slice_name, count)``.
* :class:`~repro.acquisition.source.GeneratorDataSource` — unlimited
  simulator-backed source (wraps a :class:`repro.datasets.SyntheticTask`).
* :class:`~repro.acquisition.source.PoolDataSource` — finite reserve pools,
  modelling a fixed unlabeled corpus that can run dry.
* :mod:`~repro.acquisition.providers` — the named provider registry
  (``register_source`` / ``get_source`` / ``available_sources``) and the
  :class:`~repro.acquisition.providers.CompositeSource` (priority/failover)
  and :class:`~repro.acquisition.providers.ThrottledSource` (rate limits +
  simulated latency) decorators.
* :mod:`~repro.acquisition.requests` —
  :class:`~repro.acquisition.requests.AcquisitionRequest` /
  :class:`~repro.acquisition.requests.Fulfillment`, the declarative
  request/fulfillment records.
* :class:`~repro.acquisition.router.AcquisitionRouter` — multi-source
  routing with per-slice routes and bounded retry rounds.
* :class:`~repro.acquisition.service.AcquisitionService` — the
  acquire/charge/record pipeline every driver funnels through.
* :mod:`~repro.acquisition.cost` — cost models (unit, per-slice table,
  escalating).
* :class:`~repro.acquisition.budget.BudgetLedger` — budget accounting.
* :class:`~repro.acquisition.crowdsourcing.CrowdsourcingSimulator` — the
  Amazon-Mechanical-Turk-style source with task durations, worker mistakes,
  duplicates, and a post-processing filter (Section 6.1).
"""

from repro.acquisition.budget import BudgetLedger
from repro.acquisition.cost import (
    CostModel,
    EscalatingCost,
    TableCost,
    UnitCost,
    cost_model_from_slices,
)
from repro.acquisition.crowdsourcing import (
    AcquisitionReport,
    CrowdsourcingSimulator,
    WorkerPool,
)
from repro.acquisition.providers import (
    CompositeSource,
    ThrottledSource,
    available_sources,
    get_source,
    is_source_registered,
    register_source,
    source_descriptions,
    unregister_source,
)
from repro.acquisition.requests import AcquisitionRequest, Fulfillment
from repro.acquisition.router import AcquisitionRouter, RoutedDelivery
from repro.acquisition.service import AcquisitionService
from repro.acquisition.source import (
    DataSource,
    DiscoverySource,
    GeneratorDataSource,
    PoolDataSource,
)

__all__ = [
    "DataSource",
    "GeneratorDataSource",
    "PoolDataSource",
    "DiscoverySource",
    "CompositeSource",
    "ThrottledSource",
    "register_source",
    "unregister_source",
    "get_source",
    "available_sources",
    "source_descriptions",
    "is_source_registered",
    "AcquisitionRequest",
    "Fulfillment",
    "AcquisitionRouter",
    "RoutedDelivery",
    "AcquisitionService",
    "CostModel",
    "UnitCost",
    "TableCost",
    "EscalatingCost",
    "cost_model_from_slices",
    "BudgetLedger",
    "WorkerPool",
    "CrowdsourcingSimulator",
    "AcquisitionReport",
]
