"""Declarative acquisition requests and their fulfillments.

The paper's loop treats acquisition as an instantaneous
``source.acquire(name, count)`` call, but the campaigns it models (AMT
crowdsourcing, Table 1) are slow, lossy, partially fulfilled, and
heterogeneous across sources.  This module gives the request side of that
reality a first-class shape:

* :class:`AcquisitionRequest` — a declarative order for one slice: how many
  examples, an optional spend cap, and a deadline in routing rounds for
  sources that deliver incrementally (throttled providers, draining pools).
* :class:`Fulfillment` — what actually came back: the delivered dataset, the
  realized cost, the shortfall against the effective request, and the
  provenance (which named providers contributed, over how many rounds).

Strategies and sessions emit batches of requests; the
:class:`~repro.acquisition.service.AcquisitionService` routes them across the
provider registry and hands back fulfillments, so partial delivery, dry
pools, and retries are data instead of exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.utils.exceptions import AcquisitionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ml.data import Dataset

#: Fulfillment statuses (see :attr:`Fulfillment.status`).
FULFILLED = "fulfilled"
PARTIAL = "partial"
EMPTY = "empty"
SKIPPED = "skipped"


@dataclass(frozen=True)
class AcquisitionRequest:
    """A declarative order for new examples of one slice.

    Attributes
    ----------
    slice_name:
        The slice the examples must belong to.
    count:
        Examples wanted.  The service may reduce the effective count to what
        ``max_cost`` and the remaining budget afford.
    max_cost:
        Optional cap on what this request may spend (``None`` = no cap
        beyond the run's budget ledger).
    deadline_rounds:
        How many routing rounds the router may use to fill the request.  A
        round walks every eligible provider once; more rounds let throttled
        or partially-delivering providers be retried.  The default of 1
        reproduces the classic single-shot ``acquire`` semantics.
    tag:
        Free-form label carried through to the fulfillment (e.g. the
        iteration that emitted the request).
    """

    slice_name: str
    count: int
    max_cost: float | None = None
    deadline_rounds: int = 1
    tag: str = ""

    def __post_init__(self) -> None:
        if int(self.count) != self.count or self.count < 0:
            raise AcquisitionError(
                f"request count must be a non-negative integer, got {self.count!r}"
            )
        object.__setattr__(self, "count", int(self.count))
        if self.max_cost is not None and self.max_cost < 0:
            raise AcquisitionError(
                f"max_cost must be >= 0 or None, got {self.max_cost}"
            )
        if self.deadline_rounds < 1:
            raise AcquisitionError(
                f"deadline_rounds must be >= 1, got {self.deadline_rounds}"
            )


@dataclass
class Fulfillment:
    """What came back for one :class:`AcquisitionRequest`.

    Attributes
    ----------
    request:
        The originating request (with its original, uncapped count).
    effective_count:
        The count actually ordered after applying ``max_cost`` and the
        budget ledger; the shortfall is measured against this number, so a
        budget-capped request is not misreported as a provider failure.
    delivered:
        The delivered dataset (``None`` when the request was skipped before
        reaching any provider, or after :meth:`release_payload` dropped the
        data to save memory — the accounting fields survive either way).
    delivered_count:
        Number of examples actually delivered (kept even after the payload
        is released).
    unit_cost:
        Per-example cost in force for the batch (constant within a batch,
        as the paper assumes).
    cost:
        Amount actually charged to the ledger (``unit_cost * delivered_count``).
    provenance:
        Names of the providers that contributed at least one example, in
        delivery order.
    contributions:
        Examples delivered per contributing provider.
    rounds:
        Routing rounds consumed (0 when the request never reached a
        provider).
    """

    request: AcquisitionRequest
    effective_count: int
    delivered: "Dataset | None" = None
    delivered_count: int = 0
    unit_cost: float = 0.0
    cost: float = 0.0
    provenance: tuple[str, ...] = ()
    contributions: dict[str, int] = field(default_factory=dict)
    rounds: int = 0

    def __post_init__(self) -> None:
        if self.delivered is not None and not self.delivered_count:
            self.delivered_count = len(self.delivered)

    @property
    def slice_name(self) -> str:
        """The slice the fulfillment is for."""
        return self.request.slice_name

    def release_payload(self) -> None:
        """Drop the delivered dataset, keeping every accounting field.

        The data itself lives on in the run's
        :class:`~repro.slices.sliced_dataset.SlicedDataset`; releasing the
        payload stops the fulfillment log from pinning a second copy.
        """
        self.delivered = None

    @property
    def shortfall(self) -> int:
        """Examples ordered (post-cap) but not delivered."""
        return max(self.effective_count - self.delivered_count, 0)

    @property
    def status(self) -> str:
        """``fulfilled`` / ``partial`` / ``empty`` / ``skipped``.

        ``skipped`` means no provider was consulted (the effective count was
        zero); ``empty`` means providers were asked but delivered nothing
        (e.g. every pool ran dry).
        """
        if self.rounds == 0:
            return SKIPPED
        if self.delivered_count == 0:
            return EMPTY
        if self.shortfall > 0:
            return PARTIAL
        return FULFILLED

    def summary(self) -> dict[str, Any]:
        """JSON-compatible summary (no dataset payload)."""
        return {
            "slice": self.slice_name,
            "requested": self.request.count,
            "effective": self.effective_count,
            "delivered": self.delivered_count,
            "shortfall": self.shortfall,
            "unit_cost": self.unit_cost,
            "cost": self.cost,
            "provenance": list(self.provenance),
            "contributions": dict(self.contributions),
            "rounds": self.rounds,
            "status": self.status,
            "tag": self.request.tag,
        }
