"""Acquisition cost models.

The paper's cost function ``C(s)`` returns the cost of acquiring one example
of slice ``s`` and is assumed constant within a batch.  Three models are
provided:

* :class:`UnitCost` — every example costs 1 (the simulated-acquisition
  datasets).
* :class:`TableCost` — a fixed per-slice cost table (UTKFace, Table 1).
* :class:`EscalatingCost` — cost grows as more data is acquired for a slice,
  modelling the paper's remark that "as more examples are acquired, C(s) may
  increase possibly because data becomes scarcer"; within one batch the cost
  is still constant.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Protocol, runtime_checkable

from repro.slices.slice import SliceSpec
from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_non_negative, check_positive


@runtime_checkable
class CostModel(Protocol):
    """Per-slice, per-example acquisition cost."""

    def cost(self, slice_name: str) -> float:
        """Cost of one example of ``slice_name`` at the current batch."""
        ...

    def record_acquisition(self, slice_name: str, count: int) -> None:
        """Inform the model that ``count`` examples were acquired."""
        ...


class UnitCost:
    """Every example of every slice costs the same fixed amount (default 1)."""

    def __init__(self, per_example: float = 1.0) -> None:
        self.per_example = check_positive(per_example, "per_example")

    def cost(self, slice_name: str) -> float:
        return self.per_example

    def record_acquisition(self, slice_name: str, count: int) -> None:
        """Unit cost never changes."""


class TableCost:
    """Fixed per-slice cost table, e.g. the UTKFace costs of Table 1."""

    def __init__(self, costs: Mapping[str, float], default: float | None = None) -> None:
        if not costs and default is None:
            raise ConfigurationError("TableCost needs at least one entry or a default")
        self._costs = {name: check_positive(c, f"cost[{name}]") for name, c in costs.items()}
        self._default = None if default is None else check_positive(default, "default")

    def cost(self, slice_name: str) -> float:
        if slice_name in self._costs:
            return self._costs[slice_name]
        if self._default is not None:
            return self._default
        raise ConfigurationError(f"no cost configured for slice {slice_name!r}")

    def record_acquisition(self, slice_name: str, count: int) -> None:
        """Table costs are constant."""


class EscalatingCost:
    """Cost that increases as a slice's data becomes scarcer.

    The cost of slice ``s`` is ``base(s) * (1 + escalation) ** batches(s)``
    where ``batches(s)`` counts how many acquisition batches have already been
    recorded for ``s``.  Within one batch the cost is constant, as the paper
    assumes.
    """

    def __init__(
        self,
        base_costs: Mapping[str, float],
        escalation: float = 0.1,
        default: float = 1.0,
    ) -> None:
        self._base = TableCost(base_costs, default=default)
        self.escalation = check_non_negative(escalation, "escalation")
        self._batches: dict[str, int] = {}

    def cost(self, slice_name: str) -> float:
        batches = self._batches.get(slice_name, 0)
        return self._base.cost(slice_name) * (1.0 + self.escalation) ** batches

    def record_acquisition(self, slice_name: str, count: int) -> None:
        if count > 0:
            self._batches[slice_name] = self._batches.get(slice_name, 0) + 1

    def batches_recorded(self, slice_name: str) -> int:
        """How many acquisition batches have been recorded for ``slice_name``."""
        return self._batches.get(slice_name, 0)


def cost_model_from_slices(specs: Iterable[SliceSpec]) -> TableCost:
    """Build a :class:`TableCost` from the costs stored on slice specs."""
    return TableCost({spec.name: spec.cost for spec in specs})
