"""Simulated crowdsourcing (the Amazon Mechanical Turk scenario, Section 6.1).

The paper's UTKFace experiment posts tasks on AMT asking workers to find face
images of a given demographic, pays per image, and then post-processes the
submissions: filtering obvious mistakes, removing exact duplicates, and
cropping faces.  The collection cost of a slice is defined to be proportional
to the average time a task takes.

:class:`CrowdsourcingSimulator` reproduces that pipeline end to end on top of
any underlying :class:`~repro.acquisition.source.DataSource`:

1. each requested example becomes a *task* assigned to a simulated worker,
2. the worker takes a log-normal amount of time centred on the slice's mean
   task duration,
3. with some probability the worker submits a wrong-demographic example
   (drawn from a random other slice) or an exact duplicate of an earlier
   submission,
4. post-processing drops mistakes and duplicates, so the delivered dataset
   can be smaller than requested — just like the real campaign.

The simulator also re-derives the per-slice cost table from the observed mean
task durations, which is how Table 1 of the paper is regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.acquisition.source import DataSource
from repro.ml.data import Dataset
from repro.utils.exceptions import AcquisitionError, ConfigurationError
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class WorkerPool:
    """Statistical description of the simulated worker population.

    Attributes
    ----------
    mistake_rate:
        Probability a submission does not belong to the requested slice.
    duplicate_rate:
        Probability a submission duplicates an earlier one exactly.
    speed_spread:
        Sigma of the log-normal task-duration multiplier; 0 means every task
        takes exactly the slice's mean time.
    """

    mistake_rate: float = 0.05
    duplicate_rate: float = 0.03
    speed_spread: float = 0.25

    def __post_init__(self) -> None:
        check_probability(self.mistake_rate, "mistake_rate")
        check_probability(self.duplicate_rate, "duplicate_rate")
        if self.speed_spread < 0:
            raise ConfigurationError(
                f"speed_spread must be >= 0, got {self.speed_spread}"
            )


@dataclass
class AcquisitionReport:
    """Outcome of one crowdsourced acquisition batch for one slice.

    Attributes
    ----------
    slice_name:
        The requested slice.
    requested:
        Number of examples requested.
    submitted:
        Number of worker submissions (equals ``requested``).
    mistakes_filtered:
        Submissions removed because the worker picked the wrong demographic.
    duplicates_filtered:
        Submissions removed as exact duplicates.
    delivered:
        Examples that survived post-processing.
    mean_task_seconds:
        Mean simulated task duration over the batch.
    total_seconds:
        Total simulated worker time spent.
    """

    slice_name: str
    requested: int
    submitted: int = 0
    mistakes_filtered: int = 0
    duplicates_filtered: int = 0
    delivered: int = 0
    mean_task_seconds: float = 0.0
    total_seconds: float = 0.0


class CrowdsourcingSimulator:
    """AMT-style acquisition source with mistakes, duplicates, and timing.

    Parameters
    ----------
    source:
        The underlying source that produces genuine examples per slice.
    task_seconds:
        Mean task duration per slice (e.g.
        :data:`repro.datasets.faces.UTKFACE_TASK_SECONDS`).
    workers:
        Worker population statistics.
    random_state:
        Seed or generator.
    """

    def __init__(
        self,
        source: DataSource,
        task_seconds: Mapping[str, float],
        workers: WorkerPool | None = None,
        random_state: RandomState = None,
    ) -> None:
        if not task_seconds:
            raise ConfigurationError("task_seconds must name at least one slice")
        self._source = source
        self._task_seconds = {
            name: check_positive(seconds, f"task_seconds[{name}]")
            for name, seconds in task_seconds.items()
        }
        self.workers = workers or WorkerPool()
        self._rng = as_generator(random_state)
        self.reports: list[AcquisitionReport] = []
        self._observed_seconds: dict[str, list[float]] = {
            name: [] for name in self._task_seconds
        }

    # -- DataSource interface ---------------------------------------------------
    def acquire(self, slice_name: str, count: int) -> Dataset:
        """Run a crowdsourcing batch and return the post-processed examples."""
        count = int(count)
        if count < 0:
            raise AcquisitionError(f"cannot acquire a negative count ({count})")
        if slice_name not in self._task_seconds:
            raise AcquisitionError(
                f"no crowdsourcing task configured for slice {slice_name!r}"
            )
        report = AcquisitionReport(slice_name=slice_name, requested=count)
        if count == 0:
            self.reports.append(report)
            probe = self._source.acquire(slice_name, 0)
            return probe

        durations = self._simulate_durations(slice_name, count)
        report.submitted = count
        report.mean_task_seconds = float(np.mean(durations))
        report.total_seconds = float(np.sum(durations))
        self._observed_seconds[slice_name].extend(float(d) for d in durations)

        outcomes = self._rng.random(count)
        mistakes = outcomes < self.workers.mistake_rate
        duplicates = (~mistakes) & (
            outcomes < self.workers.mistake_rate + self.workers.duplicate_rate
        )
        report.mistakes_filtered = int(mistakes.sum())
        report.duplicates_filtered = int(duplicates.sum())
        delivered_count = count - report.mistakes_filtered - report.duplicates_filtered

        delivered = self._source.acquire(slice_name, delivered_count)
        report.delivered = len(delivered)
        self.reports.append(report)
        return delivered

    def available(self, slice_name: str) -> int | None:
        """Delegate availability to the underlying source."""
        return self._source.available(slice_name)

    # -- internals -----------------------------------------------------------------
    def _simulate_durations(self, slice_name: str, count: int) -> np.ndarray:
        """Draw per-task durations around the slice's configured mean."""
        mean_seconds = self._task_seconds[slice_name]
        if self.workers.speed_spread == 0:
            return np.full(count, mean_seconds)
        sigma = self.workers.speed_spread
        # A log-normal with mean 1: exp(N(-sigma^2/2, sigma^2)).
        multipliers = self._rng.lognormal(-0.5 * sigma**2, sigma, size=count)
        return mean_seconds * multipliers

    # -- cost derivation (Table 1) ----------------------------------------------------
    def observed_mean_seconds(self) -> dict[str, float]:
        """Mean observed task duration per slice (falls back to the configured mean)."""
        means = {}
        for name, configured in self._task_seconds.items():
            observed = self._observed_seconds[name]
            means[name] = float(np.mean(observed)) if observed else configured
        return means

    def derive_costs(self, round_to: float = 0.1) -> dict[str, float]:
        """Derive per-slice costs proportional to mean task time (Table 1).

        The cheapest slice is normalized to cost 1 and every other slice's
        cost is its mean task time divided by the cheapest slice's, rounded
        to ``round_to`` — exactly the construction in the paper.
        """
        means = self.observed_mean_seconds()
        cheapest = min(means.values())
        costs = {}
        for name, seconds in means.items():
            ratio = seconds / cheapest
            costs[name] = round(ratio / round_to) * round_to if round_to > 0 else ratio
        return costs

    def summary(self) -> dict[str, dict[str, float]]:
        """Aggregate the reports per slice (requested/delivered/filter counts)."""
        aggregate: dict[str, dict[str, float]] = {}
        for report in self.reports:
            entry = aggregate.setdefault(
                report.slice_name,
                {
                    "requested": 0,
                    "delivered": 0,
                    "mistakes_filtered": 0,
                    "duplicates_filtered": 0,
                    "total_seconds": 0.0,
                },
            )
            entry["requested"] += report.requested
            entry["delivered"] += report.delivered
            entry["mistakes_filtered"] += report.mistakes_filtered
            entry["duplicates_filtered"] += report.duplicates_filtered
            entry["total_seconds"] += report.total_seconds
        return aggregate
