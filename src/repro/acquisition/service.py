"""The asynchronous-style acquisition service: requests in, fulfillments out.

:class:`AcquisitionService` is the single authoritative acquire/charge/record
path of the framework.  Strategies and sessions emit declarative
:class:`~repro.acquisition.requests.AcquisitionRequest` batches; the service

1. resolves the batch's per-example cost (constant within a batch, as the
   paper assumes),
2. caps the effective count to the request's ``max_cost`` and to what the
   run's :class:`~repro.acquisition.budget.BudgetLedger` still affords,
3. routes the order across the named providers through an
   :class:`~repro.acquisition.router.AcquisitionRouter` (retrying up to the
   request's ``deadline_rounds``),
4. charges the ledger and the cost model for what was actually *delivered* —
   never for phantom examples a dry pool or a lossy campaign failed to
   produce — and grows the sliced dataset, and
5. hands back a :class:`~repro.acquisition.requests.Fulfillment` carrying
   the delivered data, realized cost, shortfall, and provenance.

Deliveries are consumed incrementally — the incremental-view-maintenance
stance of the FO+MOD line of work: each fulfillment is an *update* applied
to the run's state the moment it lands, rather than a world recomputed per
blocking call.  ``acquire_batch`` in :mod:`repro.core.strategy_api` is a
thin facade over this service, so every driver (sessions, the legacy
iterative algorithm, the bandit) shares the same accounting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.acquisition.requests import AcquisitionRequest, Fulfillment
from repro.acquisition.router import AcquisitionRouter
from repro.acquisition.source import DataSource
from repro.telemetry import get_registry, get_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.acquisition.budget import BudgetLedger
    from repro.acquisition.cost import CostModel
    from repro.slices.sliced_dataset import SlicedDataset

#: Callback fired with every fulfillment the service produces.
FulfillmentCallback = Callable[[Fulfillment], None]

#: Provider name used when a bare source is wrapped into a router.
DEFAULT_PROVIDER = "default"


class AcquisitionService:
    """Routes acquisition requests and applies their fulfillments.

    Parameters
    ----------
    source:
        Either a single :class:`~repro.acquisition.source.DataSource`
        (wrapped as the ``"default"`` provider), a mapping of provider name
        to source (priority = insertion order), or a pre-built
        :class:`~repro.acquisition.router.AcquisitionRouter`.
    cost_model:
        Per-slice unit costs; consulted once per request so the cost is
        constant within a batch.
    ledger:
        The run's budget ledger; charged by delivered count.
    sliced:
        Optional :class:`~repro.slices.sliced_dataset.SlicedDataset` that
        delivered examples are appended to.  ``None`` for callers that only
        want routed data back (e.g. warm-up pre-fetches).
    cap_to_budget:
        When True (default) the effective count of every request is capped
        to what the remaining budget affords, so a too-large order becomes
        a partial fulfillment instead of a
        :class:`~repro.utils.exceptions.BudgetError`.
    """

    def __init__(
        self,
        source: DataSource | Mapping[str, DataSource] | AcquisitionRouter,
        cost_model: "CostModel",
        ledger: "BudgetLedger",
        sliced: "SlicedDataset | None" = None,
        cap_to_budget: bool = True,
    ) -> None:
        if isinstance(source, AcquisitionRouter):
            self.router = source
        elif isinstance(source, Mapping):
            self.router = AcquisitionRouter(source)
        else:
            self.router = AcquisitionRouter({DEFAULT_PROVIDER: source})
        self.cost_model = cost_model
        self.ledger = ledger
        self.sliced = sliced
        self.cap_to_budget = bool(cap_to_budget)
        self.fulfillments: list[Fulfillment] = []
        self._callbacks: list[FulfillmentCallback] = []

    # -- observers ---------------------------------------------------------------
    def add_callback(self, callback: FulfillmentCallback) -> "AcquisitionService":
        """Fire ``callback`` with every fulfillment; returns ``self``."""
        self._callbacks.append(callback)
        return self

    # -- the request/fulfillment pipeline ----------------------------------------
    def submit(
        self, requests: Iterable[AcquisitionRequest]
    ) -> list[Fulfillment]:
        """Fulfill a batch of requests in order, applying each as it lands."""
        return [self._fulfill(request) for request in requests]

    def acquire(
        self,
        slice_name: str,
        count: int,
        max_cost: float | None = None,
        deadline_rounds: int = 1,
        tag: str = "",
    ) -> Fulfillment:
        """Convenience single-request form of :meth:`submit`."""
        request = AcquisitionRequest(
            slice_name=slice_name,
            count=int(count),
            max_cost=max_cost,
            deadline_rounds=deadline_rounds,
            tag=tag,
        )
        return self._fulfill(request)

    def _fulfill(self, request: AcquisitionRequest) -> Fulfillment:
        name = request.slice_name
        registry = get_registry()
        registry.counter("acquisition.requests").inc()
        with get_tracer().span(
            "acquisition.fulfill",
            attributes={"slice": name, "requested": request.count},
        ) as span:
            unit_cost = self.cost_model.cost(name)
            effective = request.count
            if request.max_cost is not None and unit_cost > 0:
                effective = min(effective, int(request.max_cost // unit_cost))
            if self.cap_to_budget:
                effective = min(
                    effective, self.ledger.affordable_count(unit_cost)
                )
            if effective <= 0:
                fulfillment = Fulfillment(
                    request=request,
                    effective_count=max(effective, 0),
                    unit_cost=unit_cost,
                )
            else:
                delivery = self.router.fulfill(
                    name, effective, deadline_rounds=request.deadline_rounds
                )
                delivered = delivery.dataset
                charged = self.ledger.charge(name, len(delivered), unit_cost)
                self.cost_model.record_acquisition(name, len(delivered))
                if self.sliced is not None and len(delivered):
                    self.sliced.add_examples(name, delivered)
                fulfillment = Fulfillment(
                    request=request,
                    effective_count=effective,
                    delivered=delivered,
                    unit_cost=unit_cost,
                    cost=charged,
                    provenance=delivery.provenance,
                    contributions=delivery.contributions,
                    rounds=delivery.rounds,
                )
            span.set_attribute("status", fulfillment.status)
            span.set_attribute("delivered", fulfillment.delivered_count)
            span.set_attribute("shortfall", fulfillment.shortfall)
        registry.counter("acquisition.delivered").inc(
            fulfillment.delivered_count
        )
        registry.counter("acquisition.shortfall").inc(fulfillment.shortfall)
        self.fulfillments.append(fulfillment)
        for callback in self._callbacks:
            callback(fulfillment)
        return fulfillment

    # -- introspection -----------------------------------------------------------
    def available(self, slice_name: str) -> int | None:
        """Availability across the slice's routed providers."""
        return self.router.available(slice_name)

    def release_payloads(self) -> int:
        """Drop the delivered datasets retained in the fulfillment log.

        The log keeps every :class:`~repro.acquisition.requests.Fulfillment`
        for the life of the run so events and introspection work; on large
        campaigns that pins a second copy of all acquired data (the first
        lives in the sliced dataset).  Call this once downstream consumers
        have seen the payloads — all counts, costs, and provenance survive.
        Returns the number of payloads released.
        """
        released = 0
        for fulfillment in self.fulfillments:
            if fulfillment.delivered is not None:
                fulfillment.release_payload()
                released += 1
        return released

    def delivered_by_slice(self) -> dict[str, int]:
        """Total examples delivered per slice over the service's lifetime."""
        totals: dict[str, int] = {}
        for fulfillment in self.fulfillments:
            totals[fulfillment.slice_name] = (
                totals.get(fulfillment.slice_name, 0)
                + fulfillment.delivered_count
            )
        return totals

    def shortfall_by_slice(self) -> dict[str, int]:
        """Total shortfall per slice (orders placed but not delivered)."""
        totals: dict[str, int] = {}
        for fulfillment in self.fulfillments:
            totals[fulfillment.slice_name] = (
                totals.get(fulfillment.slice_name, 0) + fulfillment.shortfall
            )
        return totals
