"""Budget accounting for data acquisition.

The selective data acquisition problem (Definition 2 of the paper) fixes a
total budget ``B``; every acquisition batch spends ``C(s_i) * d_i`` of it.
:class:`BudgetLedger` tracks that spending, refuses to overspend, and records
a journal of charges for later inspection/reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.exceptions import BudgetError
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class BudgetCharge:
    """One recorded charge against the budget."""

    slice_name: str
    count: int
    unit_cost: float
    total: float


@dataclass
class BudgetLedger:
    """Tracks remaining budget and the history of charges.

    Parameters
    ----------
    total:
        The initial budget ``B``.  Must be non-negative.
    tolerance:
        Small numerical slack allowed when charging (rounding the optimizer's
        continuous allocation to integers can overshoot by a fraction of one
        example's cost).
    """

    total: float
    tolerance: float = 1e-6
    spent: float = field(default=0.0, init=False)
    charges: list[BudgetCharge] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        self.total = check_non_negative(self.total, "total budget")
        self.tolerance = check_non_negative(self.tolerance, "tolerance")

    @property
    def remaining(self) -> float:
        """Budget still available (never negative)."""
        return max(self.total - self.spent, 0.0)

    @property
    def exhausted(self) -> bool:
        """True once less than the tolerance remains."""
        return self.remaining <= self.tolerance

    def can_afford(self, unit_cost: float, count: int) -> bool:
        """Whether ``count`` examples at ``unit_cost`` fit in the remaining budget."""
        return unit_cost * count <= self.remaining + self.tolerance

    def affordable_count(self, unit_cost: float) -> int:
        """Largest number of examples at ``unit_cost`` the remaining budget buys."""
        unit_cost = check_non_negative(unit_cost, "unit_cost")
        if unit_cost == 0:
            raise BudgetError("unit_cost must be positive to bound a count")
        return int((self.remaining + self.tolerance) // unit_cost)

    def charge(self, slice_name: str, count: int, unit_cost: float) -> float:
        """Record the acquisition of ``count`` examples for ``slice_name``.

        Returns the amount charged.  Raises :class:`BudgetError` if the charge
        would exceed the remaining budget beyond the tolerance.
        """
        count = int(count)
        if count < 0:
            raise BudgetError(f"cannot charge a negative count ({count})")
        unit_cost = check_non_negative(unit_cost, "unit_cost")
        amount = unit_cost * count
        if amount > self.remaining + self.tolerance:
            raise BudgetError(
                f"charge of {amount:.4f} for slice {slice_name!r} exceeds the "
                f"remaining budget {self.remaining:.4f}"
            )
        self.spent += amount
        self.charges.append(
            BudgetCharge(
                slice_name=slice_name, count=count, unit_cost=unit_cost, total=amount
            )
        )
        return amount

    def spent_by_slice(self) -> dict[str, float]:
        """Total amount charged per slice so far."""
        totals: dict[str, float] = {}
        for charge in self.charges:
            totals[charge.slice_name] = totals.get(charge.slice_name, 0.0) + charge.total
        return totals

    def acquired_by_slice(self) -> dict[str, int]:
        """Total examples charged per slice so far."""
        counts: dict[str, int] = {}
        for charge in self.charges:
            counts[charge.slice_name] = counts.get(charge.slice_name, 0) + charge.count
        return counts
