"""Named data-source providers: the registry and the source decorators.

Mirrors :mod:`repro.core.registry` for the acquisition side: every way of
obtaining examples — the unlimited generator, finite pools, the AMT-style
crowdsourcing simulator, and any user-defined source — is registered here
under one or more names.  :class:`~repro.acquisition.router.AcquisitionRouter`
and the :class:`~repro.acquisition.service.AcquisitionService` resolve
provider names against this registry, and the CLI ``sources`` subcommand
lists it.

Registering a custom provider::

    from repro.acquisition.providers import register_source

    @register_source("cached_corpus", description="pre-downloaded corpus shards")
    class CachedCorpusSource:
        def acquire(self, slice_name, count): ...
        def available(self, slice_name): ...

Two decorators compose with any provider:

* :class:`CompositeSource` — priority/failover across providers: walk the
  providers in order, take what each can deliver, fall through to the next
  on a shortfall or a per-provider :class:`AcquisitionError`.
* :class:`ThrottledSource` — per-slice rate limits and simulated latency:
  each request is truncated to the slice's per-request cap (so callers see
  partial fulfillments and must come back next round), and the simulated
  wall-clock cost of every delivery is accumulated without ever sleeping.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.acquisition.crowdsourcing import CrowdsourcingSimulator
from repro.acquisition.source import (
    DataSource,
    GeneratorDataSource,
    PoolDataSource,
)
from repro.ml.data import Dataset
from repro.utils.exceptions import AcquisitionError, ConfigurationError
from repro.utils.validation import check_non_negative

#: A callable building a fresh data source (a class or a factory).
SourceFactory = Callable[..., DataSource]

_REGISTRY: dict[str, SourceFactory] = {}
_PRIMARY: dict[str, str] = {}  # registry key -> primary name
_DESCRIPTIONS: dict[str, str] = {}  # primary name -> one-line description


def _normalize(name: str) -> str:
    return name.strip().lower()


def register_source(
    name: str,
    *,
    aliases: Iterable[str] = (),
    description: str = "",
    overwrite: bool = False,
) -> Callable[[SourceFactory], SourceFactory]:
    """Class/function decorator registering a data-source provider.

    Parameters
    ----------
    name:
        Primary registry key (case-insensitive).
    aliases:
        Additional keys resolving to the same factory.
    description:
        One-line summary shown by :func:`source_descriptions` and the CLI
        ``sources`` subcommand; defaults to the factory's first docstring
        line.
    overwrite:
        Allow replacing an existing registration (off by default so typos
        don't silently shadow built-ins).
    """
    keys = [_normalize(name), *(_normalize(alias) for alias in aliases)]

    def decorator(factory: SourceFactory) -> SourceFactory:
        for key in keys:
            if not overwrite and key in _REGISTRY:
                raise ConfigurationError(
                    f"source {key!r} is already registered; pass "
                    f"overwrite=True to replace it"
                )
        doc = description
        if not doc:
            lines = (factory.__doc__ or "").strip().splitlines()
            doc = lines[0] if lines else ""
        for key in keys:
            _REGISTRY[key] = factory
            _PRIMARY[key] = keys[0]
        _DESCRIPTIONS[keys[0]] = doc
        return factory

    return decorator


def unregister_source(name: str) -> None:
    """Remove a registration (primarily for tests tearing down fixtures)."""
    key = _normalize(name)
    primary = _PRIMARY.get(key)
    for alias in [k for k, p in _PRIMARY.items() if p == primary]:
        _REGISTRY.pop(alias, None)
        _PRIMARY.pop(alias, None)
    _DESCRIPTIONS.pop(primary, None)


def get_source(name: str, **kwargs) -> DataSource:
    """Instantiate the provider registered under ``name``.

    Extra keyword arguments are forwarded to the provider factory, e.g.
    ``get_source("generator", task=task, random_state=3)``.  Raises
    :class:`~repro.utils.exceptions.ConfigurationError` for unknown names.
    """
    key = _normalize(name)
    factory = _REGISTRY.get(key)
    if factory is None:
        raise ConfigurationError(
            f"unknown source {name!r}; registered sources: "
            f"{', '.join(available_sources())}"
        )
    source = factory(**kwargs)
    if not isinstance(source, DataSource):
        raise ConfigurationError(
            f"factory for source {name!r} returned "
            f"{type(source).__name__}, which does not implement DataSource"
        )
    return source


def available_sources() -> tuple[str, ...]:
    """Sorted primary names of every registered provider."""
    return tuple(sorted(set(_PRIMARY.values())))


def source_descriptions() -> dict[str, str]:
    """Mapping of primary provider name to its one-line description."""
    return {name: _DESCRIPTIONS.get(name, "") for name in available_sources()}


def is_source_registered(name: str) -> bool:
    """Whether ``name`` resolves to a registered provider."""
    return _normalize(name) in _REGISTRY


# -- source decorators ----------------------------------------------------------


class CompositeSource:
    """Priority/failover composition of several providers.

    ``acquire`` walks the providers in order, taking what each can deliver
    until the request is filled; a provider that raises
    :class:`~repro.utils.exceptions.AcquisitionError` (e.g. a pool that does
    not cover the slice) is skipped and the next provider tried.  The names
    of the providers that contributed to the most recent acquisition are
    exposed as :attr:`last_provenance` / :attr:`last_contributions`.

    The walk itself is one routing round of
    :class:`~repro.acquisition.router.AcquisitionRouter` — this class is the
    plain-``DataSource`` face of the same algorithm, so the two can never
    drift apart.

    Parameters
    ----------
    providers:
        Mapping of provider name to source, or a sequence of
        ``(name, source)`` pairs; iteration order is priority order.
    """

    def __init__(
        self,
        providers: Mapping[str, DataSource] | Sequence[tuple[str, DataSource]],
    ) -> None:
        pairs = (
            list(providers.items())
            if isinstance(providers, Mapping)
            else list(providers)
        )
        if not pairs:
            raise ConfigurationError("CompositeSource needs at least one provider")
        table: dict[str, DataSource] = {}
        for provider_name, source in pairs:
            if provider_name in table:
                raise ConfigurationError(
                    f"duplicate provider name {provider_name!r} in CompositeSource"
                )
            table[str(provider_name)] = source
        # Imported here so the registry module stays importable on its own.
        from repro.acquisition.router import AcquisitionRouter

        self._router = AcquisitionRouter(table)
        self.total_delivered = 0
        self.last_provenance: tuple[str, ...] = ()
        self.last_contributions: dict[str, int] = {}

    @property
    def provider_names(self) -> tuple[str, ...]:
        """Provider names in priority order."""
        return self._router.provider_names

    def acquire(self, slice_name: str, count: int) -> Dataset:
        """Fill the request across providers in priority order."""
        delivery = self._router.fulfill(slice_name, count, deadline_rounds=1)
        self.last_provenance = delivery.provenance
        self.last_contributions = delivery.contributions
        self.total_delivered += len(delivery.dataset)
        return delivery.dataset

    def available(self, slice_name: str) -> int | None:
        """Total availability across providers (``None`` when any is unlimited)."""
        return self._router.available(slice_name)


class ThrottledSource:
    """Per-slice rate limits and simulated latency around any provider.

    Each ``acquire`` is truncated to the slice's per-request cap, modelling
    a campaign that can only ingest so many tasks per round; callers that
    want the full count must come back for more rounds (which the
    :class:`~repro.acquisition.router.AcquisitionRouter` does when the
    request's ``deadline_rounds`` allows).  Latency is *simulated*: the
    would-be wall-clock cost of every delivery accumulates in
    :attr:`simulated_seconds` without ever sleeping, keeping runs fast and
    deterministic.

    Parameters
    ----------
    source:
        The underlying provider.
    per_request_cap:
        Maximum examples delivered per ``acquire`` call — an int applying
        to every slice, or a mapping of slice name to cap (missing slices
        are uncapped).  ``None`` disables the limit.
    latency_per_request / latency_per_example:
        Simulated seconds added per ``acquire`` call and per delivered
        example.
    """

    def __init__(
        self,
        source: DataSource,
        per_request_cap: int | Mapping[str, int] | None = None,
        latency_per_request: float = 0.0,
        latency_per_example: float = 0.0,
    ) -> None:
        self._source = source
        if isinstance(per_request_cap, Mapping):
            self._caps: Mapping[str, int] | None = {
                name: int(cap) for name, cap in per_request_cap.items()
            }
            self._default_cap: int | None = None
        else:
            self._caps = None
            self._default_cap = None if per_request_cap is None else int(per_request_cap)
        if self._default_cap is not None and self._default_cap < 1:
            raise ConfigurationError(
                f"per_request_cap must be >= 1, got {self._default_cap}"
            )
        if self._caps is not None and any(cap < 1 for cap in self._caps.values()):
            raise ConfigurationError("every per-slice cap must be >= 1")
        self.latency_per_request = check_non_negative(
            latency_per_request, "latency_per_request"
        )
        self.latency_per_example = check_non_negative(
            latency_per_example, "latency_per_example"
        )
        self.simulated_seconds = 0.0
        self.requests_served = 0
        self.throttled_requests = 0

    def cap_for(self, slice_name: str) -> int | None:
        """The per-request cap in force for ``slice_name`` (None = uncapped)."""
        if self._caps is not None:
            return self._caps.get(slice_name)
        return self._default_cap

    def acquire(self, slice_name: str, count: int) -> Dataset:
        """Deliver up to the slice's cap, accumulating simulated latency."""
        count = int(count)
        if count < 0:
            raise AcquisitionError(f"cannot acquire a negative count ({count})")
        cap = self.cap_for(slice_name)
        granted = count if cap is None else min(count, cap)
        if granted < count:
            self.throttled_requests += 1
        delivered = self._source.acquire(slice_name, granted)
        self.requests_served += 1
        self.simulated_seconds += (
            self.latency_per_request + self.latency_per_example * len(delivered)
        )
        return delivered

    def available(self, slice_name: str) -> int | None:
        """Delegate availability to the underlying provider."""
        return self._source.available(slice_name)


# -- built-in registrations ------------------------------------------------------

register_source(
    "generator",
    aliases=("simulator",),
    description="unlimited synthetic source backed by a task's generative model",
)(GeneratorDataSource)
register_source(
    "pool",
    description="finite per-slice reserve pools that can run dry",
)(PoolDataSource)
register_source(
    "crowdsourcing",
    aliases=("amt",),
    description="AMT-style campaign with worker mistakes, duplicates, and timing",
)(CrowdsourcingSimulator)
register_source(
    "composite",
    description="priority/failover composition of several providers",
)(CompositeSource)
register_source(
    "throttled",
    description="per-slice rate limits and simulated latency around a provider",
)(ThrottledSource)
