"""Routing acquisition requests across named providers.

The :class:`AcquisitionRouter` owns a table of named providers (any objects
implementing :class:`~repro.acquisition.source.DataSource`) and answers one
question: *given a request for a slice, which providers serve it, in what
order, and over how many rounds?*

Routing model
-------------
* Every slice resolves to a priority-ordered tuple of provider names —
  either an explicit per-slice route or the router's default order.
* One *round* walks that order once, asking each provider for whatever is
  still missing; a provider that raises
  :class:`~repro.utils.exceptions.AcquisitionError` (it does not cover the
  slice) is skipped, which is what makes pool→generator failover work.
* If the request is still short after a round and its ``deadline_rounds``
  allows, the walk repeats — this is how throttled providers that cap each
  request eventually fill a large order.  A round that delivers nothing ends
  the attempt early: retrying dry providers cannot help.

The router only moves data; charging the ledger, recording costs, and
growing the dataset belong to the
:class:`~repro.acquisition.service.AcquisitionService` on top.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.acquisition.source import DataSource
from repro.ml.data import Dataset
from repro.telemetry import get_registry, get_tracer
from repro.utils.exceptions import AcquisitionError, ConfigurationError


@dataclass
class RoutedDelivery:
    """What one routed fulfillment attempt produced (pre-accounting).

    Attributes
    ----------
    dataset:
        Everything delivered across providers and rounds (possibly empty).
    provenance:
        Names of the providers that contributed at least one example, in
        delivery order.
    contributions:
        Examples delivered per contributing provider.
    rounds:
        Rounds actually walked (>= 1 when any provider was consulted).
    """

    dataset: Dataset
    provenance: tuple[str, ...]
    contributions: dict[str, int]
    rounds: int


class AcquisitionRouter:
    """Fans slice requests out across a table of named providers.

    Parameters
    ----------
    providers:
        Mapping of provider name to source; insertion order is the fallback
        priority order when ``default`` is not given.
    routes:
        Optional per-slice routing table: slice name → provider name or
        priority-ordered sequence of provider names.  Slices without an
        entry use the default order.
    default:
        Priority order for unrouted slices; defaults to all providers in
        insertion order.
    """

    def __init__(
        self,
        providers: Mapping[str, DataSource],
        routes: Mapping[str, str | Sequence[str]] | None = None,
        default: Sequence[str] | None = None,
    ) -> None:
        if not providers:
            raise ConfigurationError("AcquisitionRouter needs at least one provider")
        self._providers = dict(providers)
        self._default = self._check_order(
            tuple(default) if default is not None else tuple(self._providers)
        )
        self._routes: dict[str, tuple[str, ...]] = {}
        for slice_name, route in (routes or {}).items():
            order = (route,) if isinstance(route, str) else tuple(route)
            self._routes[slice_name] = self._check_order(order)

    def _check_order(self, order: tuple[str, ...]) -> tuple[str, ...]:
        unknown = [name for name in order if name not in self._providers]
        if unknown:
            raise ConfigurationError(
                f"route names unknown providers {unknown}; available: "
                f"{sorted(self._providers)}"
            )
        if not order:
            raise ConfigurationError("a route must name at least one provider")
        return order

    @property
    def provider_names(self) -> tuple[str, ...]:
        """All provider names, in table order."""
        return tuple(self._providers)

    def provider(self, name: str) -> DataSource:
        """The provider registered under ``name``."""
        try:
            return self._providers[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown provider {name!r}; available: {sorted(self._providers)}"
            ) from None

    def route(self, slice_name: str) -> tuple[str, ...]:
        """Priority-ordered provider names serving ``slice_name``."""
        return self._routes.get(slice_name, self._default)

    def set_route(self, slice_name: str, order: str | Sequence[str]) -> None:
        """Install or replace the route for one slice."""
        resolved = (order,) if isinstance(order, str) else tuple(order)
        self._routes[slice_name] = self._check_order(resolved)

    # -- fulfillment -------------------------------------------------------------
    def fulfill(
        self, slice_name: str, count: int, deadline_rounds: int = 1
    ) -> RoutedDelivery:
        """Collect up to ``count`` examples for ``slice_name`` across providers.

        Raises :class:`~repro.utils.exceptions.AcquisitionError` only when
        *every* routed provider refuses the slice outright; partial and
        empty deliveries are normal outcomes, reported in the returned
        :class:`RoutedDelivery`.
        """
        count = int(count)
        if count < 0:
            raise AcquisitionError(f"cannot acquire a negative count ({count})")
        order = self.route(slice_name)
        tracer = get_tracer()
        registry = get_registry()
        parts: list[Dataset] = []
        provenance: list[str] = []
        contributions: dict[str, int] = {}
        fallback: Dataset | None = None
        last_error: AcquisitionError | None = None
        remaining = count
        rounds = 0
        for _ in range(max(int(deadline_rounds), 1)):
            if remaining <= 0 and fallback is not None:
                break
            rounds += 1
            progress = 0
            for provider_name in order:
                if remaining <= 0 and fallback is not None:
                    break
                with tracer.span(
                    "acquisition.provider",
                    attributes={
                        "provider": provider_name,
                        "slice": slice_name,
                    },
                ) as span:
                    started = time.perf_counter()
                    try:
                        delivered = self._providers[provider_name].acquire(
                            slice_name, max(remaining, 0)
                        )
                    except AcquisitionError as error:
                        last_error = error
                        delivered = None
                        span.set_attribute("refused", True)
                    finally:
                        registry.histogram(
                            "acquisition.provider_seconds",
                            provider=provider_name,
                        ).observe(time.perf_counter() - started)
                    if delivered is not None:
                        span.set_attribute("delivered", len(delivered))
                if delivered is None:
                    continue
                if fallback is None:
                    fallback = delivered
                if len(delivered):
                    parts.append(delivered)
                    if provider_name not in contributions:
                        provenance.append(provider_name)
                    contributions[provider_name] = (
                        contributions.get(provider_name, 0) + len(delivered)
                    )
                    progress += len(delivered)
                    remaining -= len(delivered)
            if progress == 0:
                break  # every routed provider is dry; retrying cannot help
        if fallback is None:
            raise last_error if last_error is not None else AcquisitionError(
                f"no provider routed for slice {slice_name!r}"
            )
        dataset = Dataset.concatenate(parts) if parts else fallback
        return RoutedDelivery(
            dataset=dataset,
            provenance=tuple(provenance),
            contributions=contributions,
            rounds=rounds,
        )

    def available(self, slice_name: str) -> int | None:
        """Total availability across the slice's routed providers.

        ``None`` when any routed provider is unlimited.
        """
        total = 0
        seen = False
        last_error: AcquisitionError | None = None
        for provider_name in self.route(slice_name):
            try:
                remaining = self._providers[provider_name].available(slice_name)
            except AcquisitionError as error:
                last_error = error
                continue
            seen = True
            if remaining is None:
                return None
            total += int(remaining)
        if not seen:
            raise last_error if last_error is not None else AcquisitionError(
                f"no provider routed for slice {slice_name!r}"
            )
        return total
