"""Multi-layer perceptron classifier.

This is the stand-in for the paper's small convolutional networks (2-3 hidden
layers) and, with more/wider layers, for the ResNet-18 comparison in
Appendix B.  The implementation is a straightforward fully-connected network
with ReLU activations and a softmax output trained by mini-batch gradient
descent through the shared :class:`repro.ml.train.Trainer`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ml.data import Dataset
from repro.ml.losses import cross_entropy_gradient, cross_entropy_loss, softmax
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_non_negative, check_positive_int


class MLPClassifier:
    """Fully connected ReLU network with a softmax output layer.

    Parameters
    ----------
    n_classes:
        Number of output classes.
    hidden_sizes:
        Widths of the hidden layers, e.g. ``(32, 16)``.  An empty tuple makes
        the model equivalent to softmax regression.
    l2:
        L2 regularization applied to all weight matrices.
    random_state:
        Controls weight initialization.
    """

    def __init__(
        self,
        n_classes: int,
        hidden_sizes: Sequence[int] = (32,),
        l2: float = 1e-4,
        random_state: RandomState = None,
    ) -> None:
        self.n_classes = check_positive_int(n_classes, "n_classes")
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        if any(h <= 0 for h in self.hidden_sizes):
            raise ConfigurationError(
                f"hidden_sizes must all be positive, got {self.hidden_sizes}"
            )
        self.l2 = check_non_negative(l2, "l2")
        self._rng = as_generator(random_state)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []

    # -- parameter plumbing ---------------------------------------------------
    def initialize(self, n_features: int) -> None:
        """(Re-)initialize all layers with He-style scaling."""
        sizes = [int(n_features), *self.hidden_sizes, self.n_classes]
        self.weights = []
        self.biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / max(fan_in, 1))
            self.weights.append(
                self._rng.normal(0.0, scale, size=(fan_in, fan_out))
            )
            self.biases.append(np.zeros(fan_out, dtype=np.float64))

    @property
    def is_initialized(self) -> bool:
        """Whether the layer parameters exist."""
        return bool(self.weights)

    def parameters(self) -> list[np.ndarray]:
        """Return all trainable arrays (weights then biases, per layer)."""
        if not self.is_initialized:
            raise ConfigurationError("model is not initialized")
        params: list[np.ndarray] = []
        for weight, bias in zip(self.weights, self.biases):
            params.append(weight)
            params.append(bias)
        return params

    # -- forward / backward ---------------------------------------------------
    def _forward(self, features: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        """Run the network, returning hidden activations and output logits."""
        activations = [np.asarray(features, dtype=np.float64)]
        current = activations[0]
        for weight, bias in zip(self.weights[:-1], self.biases[:-1]):
            current = np.maximum(current @ weight + bias, 0.0)
            activations.append(current)
        logits = current @ self.weights[-1] + self.biases[-1]
        return activations, logits

    def gradients(self, features: np.ndarray, labels: np.ndarray) -> list[np.ndarray]:
        """Backpropagate the regularized cross-entropy loss for a mini-batch."""
        if not self.is_initialized:
            raise ConfigurationError("model is not initialized")
        activations, logits = self._forward(features)
        probabilities = softmax(logits)
        delta = cross_entropy_gradient(probabilities, labels)

        weight_grads: list[np.ndarray] = [np.empty(0)] * len(self.weights)
        bias_grads: list[np.ndarray] = [np.empty(0)] * len(self.biases)
        for layer in range(len(self.weights) - 1, -1, -1):
            weight_grads[layer] = (
                activations[layer].T @ delta + self.l2 * self.weights[layer]
            )
            bias_grads[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = delta @ self.weights[layer].T
                delta = delta * (activations[layer] > 0.0)

        grads: list[np.ndarray] = []
        for wg, bg in zip(weight_grads, bias_grads):
            grads.append(wg)
            grads.append(bg)
        return grads

    # -- inference -------------------------------------------------------------
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Return raw class logits."""
        if not self.is_initialized:
            raise ConfigurationError("model is not initialized")
        _, logits = self._forward(features)
        return logits

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Return class probabilities of shape ``(n, n_classes)``."""
        return softmax(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Return the most likely class index per row."""
        return np.argmax(self.predict_proba(features), axis=1)

    def loss(self, dataset: Dataset) -> float:
        """Mean log loss of the model on ``dataset``."""
        if len(dataset) == 0:
            return 0.0
        return cross_entropy_loss(self.predict_proba(dataset.features), dataset.labels)

    def clone(self) -> "MLPClassifier":
        """Return an untrained copy with the same hyperparameters."""
        return MLPClassifier(
            n_classes=self.n_classes,
            hidden_sizes=self.hidden_sizes,
            l2=self.l2,
            random_state=self._rng.integers(0, 2**31 - 1),
        )
