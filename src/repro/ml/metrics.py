"""Evaluation metrics: log loss, accuracy, error rate, and per-slice losses.

The per-slice loss evaluation is the quantity everything else in Slice Tuner
is built on: learning curves fit it, the optimizer predicts it, and the
unfairness measure compares it against the loss on the whole dataset.
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence

import numpy as np

from repro.ml.data import Dataset
from repro.ml.losses import cross_entropy_loss


class ProbabilisticClassifier(Protocol):
    """Anything that can produce class probabilities and hard predictions."""

    def predict_proba(self, features: np.ndarray) -> np.ndarray: ...

    def predict(self, features: np.ndarray) -> np.ndarray: ...


def log_loss(model: ProbabilisticClassifier, dataset: Dataset) -> float:
    """Mean multi-class log loss of ``model`` on ``dataset``.

    Returns ``nan`` for an empty dataset so callers can detect and skip it
    rather than silently treating it as a perfect score.
    """
    if len(dataset) == 0:
        return float("nan")
    probabilities = model.predict_proba(dataset.features)
    return cross_entropy_loss(probabilities, dataset.labels)


def accuracy(model: ProbabilisticClassifier, dataset: Dataset) -> float:
    """Fraction of correct hard predictions on ``dataset``."""
    if len(dataset) == 0:
        return float("nan")
    predictions = model.predict(dataset.features)
    return float(np.mean(predictions == dataset.labels))


def error_rate(model: ProbabilisticClassifier, dataset: Dataset) -> float:
    """Misclassification rate (``1 - accuracy``)."""
    acc = accuracy(model, dataset)
    return float("nan") if np.isnan(acc) else 1.0 - acc


def per_slice_losses(
    model: ProbabilisticClassifier,
    slice_datasets: Mapping[str, Dataset] | Sequence[Dataset],
) -> dict[str, float] | list[float]:
    """Log loss of ``model`` on each slice's evaluation dataset.

    Accepts either a mapping from slice name to dataset (returns a dict) or a
    sequence of datasets (returns a list in the same order).
    """
    if isinstance(slice_datasets, Mapping):
        return {name: log_loss(model, ds) for name, ds in slice_datasets.items()}
    return [log_loss(model, ds) for ds in slice_datasets]


def overall_loss(
    model: ProbabilisticClassifier, slice_datasets: Sequence[Dataset]
) -> float:
    """Log loss over the union of all slices' evaluation data.

    This corresponds to the paper's :math:`\\psi(D, M)`: the loss on the
    entire dataset, where larger slices naturally weigh more.
    """
    non_empty = [ds for ds in slice_datasets if len(ds) > 0]
    if not non_empty:
        return float("nan")
    combined = Dataset.concatenate(non_empty)
    return log_loss(model, combined)


def confusion_matrix(
    model: ProbabilisticClassifier, dataset: Dataset, n_classes: int
) -> np.ndarray:
    """Return the ``(n_classes, n_classes)`` confusion matrix (rows = truth)."""
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    if len(dataset) == 0:
        return matrix
    predictions = model.predict(dataset.features)
    for truth, predicted in zip(dataset.labels, predictions):
        matrix[int(truth), int(predicted)] += 1
    return matrix
