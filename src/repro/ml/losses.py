"""Numerically stable activations and loss functions.

The paper measures model accuracy with log loss (cross entropy); the same
quantity drives the learning curves, the optimizer objective, and the
unfairness metric, so a single well-tested implementation lives here.
"""

from __future__ import annotations

import numpy as np

#: Probabilities are clipped to [EPS, 1 - EPS] before taking logarithms.
EPS = 1e-12


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax of a ``(n, k)`` logit matrix.

    The maximum logit is subtracted per row before exponentiation to avoid
    overflow, which leaves the result unchanged mathematically.
    """
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Elementwise logistic sigmoid, stable for large positive/negative inputs."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Encode integer labels as a ``(n, n_classes)`` one-hot matrix."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ValueError(
            f"labels must lie in [0, {n_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], n_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def cross_entropy_loss(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Mean multi-class log loss of predicted ``probabilities`` against ``labels``.

    Parameters
    ----------
    probabilities:
        Array of shape ``(n, k)`` with rows summing to one.
    labels:
        Integer class indices of shape ``(n,)``.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if probabilities.shape[0] != labels.shape[0]:
        raise ValueError(
            f"probabilities has {probabilities.shape[0]} rows but labels has "
            f"{labels.shape[0]} entries"
        )
    if probabilities.shape[0] == 0:
        return 0.0
    clipped = np.clip(probabilities[np.arange(labels.shape[0]), labels], EPS, 1.0)
    return float(-np.mean(np.log(clipped)))


def binary_cross_entropy_loss(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Mean binary log loss for probabilities of the positive class."""
    probabilities = np.asarray(probabilities, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if probabilities.shape[0] != labels.shape[0]:
        raise ValueError("probabilities and labels must have the same length")
    if probabilities.shape[0] == 0:
        return 0.0
    clipped = np.clip(probabilities, EPS, 1.0 - EPS)
    losses = -labels * np.log(clipped) - (1.0 - labels) * np.log(1.0 - clipped)
    return float(np.mean(losses))


def cross_entropy_gradient(
    probabilities: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Gradient of the mean cross entropy with respect to the logits.

    For softmax + cross entropy the gradient simplifies to
    ``(probabilities - one_hot(labels)) / n``.
    """
    n, k = probabilities.shape
    grad = probabilities - one_hot(labels, k)
    return grad / max(n, 1)
