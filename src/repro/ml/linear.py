"""Linear classifiers: softmax (multinomial) and binary logistic regression.

These are the work-horse models of the reproduction.  The AdultCensus
experiments in the paper use a fully connected network with no hidden layer,
which is exactly softmax regression; the image datasets use small CNNs, whose
role here is played by :class:`repro.ml.mlp.MLPClassifier`.
"""

from __future__ import annotations

import numpy as np

from repro.ml.data import Dataset
from repro.ml.losses import (
    binary_cross_entropy_loss,
    cross_entropy_gradient,
    cross_entropy_loss,
    one_hot,
    sigmoid,
    softmax,
)
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_non_negative, check_positive_int


class SoftmaxRegression:
    """Multinomial logistic regression trained with full-batch gradient steps.

    Parameters
    ----------
    n_classes:
        Number of output classes.  Fixed up front so a model trained on a
        subset missing some class still produces probabilities for all
        classes.
    l2:
        L2 regularization strength applied to the weight matrix (not the
        bias).
    random_state:
        Controls weight initialization.
    """

    def __init__(
        self,
        n_classes: int,
        l2: float = 1e-4,
        random_state: RandomState = None,
    ) -> None:
        self.n_classes = check_positive_int(n_classes, "n_classes")
        self.l2 = check_non_negative(l2, "l2")
        self._rng = as_generator(random_state)
        self.weights: np.ndarray | None = None
        self.bias: np.ndarray | None = None

    # -- parameter plumbing used by the shared Trainer ----------------------
    def initialize(self, n_features: int) -> None:
        """(Re-)initialize parameters for inputs of width ``n_features``."""
        scale = 1.0 / np.sqrt(max(n_features, 1))
        self.weights = self._rng.normal(0.0, scale, size=(n_features, self.n_classes))
        self.bias = np.zeros(self.n_classes, dtype=np.float64)

    @property
    def is_initialized(self) -> bool:
        """Whether :meth:`initialize` (or training) has been called."""
        return self.weights is not None

    def parameters(self) -> list[np.ndarray]:
        """Return the trainable parameter arrays (views, not copies)."""
        if self.weights is None or self.bias is None:
            raise ConfigurationError("model is not initialized")
        return [self.weights, self.bias]

    def gradients(self, features: np.ndarray, labels: np.ndarray) -> list[np.ndarray]:
        """Return gradients of the regularized loss for a mini-batch."""
        if self.weights is None or self.bias is None:
            raise ConfigurationError("model is not initialized")
        probabilities = self.predict_proba(features)
        dlogits = cross_entropy_gradient(probabilities, labels)
        dweights = features.T @ dlogits + self.l2 * self.weights
        dbias = dlogits.sum(axis=0)
        return [dweights, dbias]

    # -- inference -----------------------------------------------------------
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Return raw class logits of shape ``(n, n_classes)``."""
        if self.weights is None or self.bias is None:
            raise ConfigurationError("model is not initialized")
        features = np.asarray(features, dtype=np.float64)
        return features @ self.weights + self.bias

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Return class probabilities of shape ``(n, n_classes)``."""
        return softmax(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Return the most likely class index per row."""
        return np.argmax(self.predict_proba(features), axis=1)

    def loss(self, dataset: Dataset) -> float:
        """Mean log loss of the model on ``dataset``."""
        if len(dataset) == 0:
            return 0.0
        return cross_entropy_loss(self.predict_proba(dataset.features), dataset.labels)

    def clone(self) -> "SoftmaxRegression":
        """Return an untrained copy with the same hyperparameters."""
        return SoftmaxRegression(
            n_classes=self.n_classes,
            l2=self.l2,
            random_state=self._rng.integers(0, 2**31 - 1),
        )


class LogisticRegression:
    """Binary logistic regression with an interface mirroring SoftmaxRegression.

    Provided for completeness (the paper's log-loss definition is stated for
    binary classification); internally it is a thin wrapper over a weight
    vector and scalar bias.
    """

    def __init__(self, l2: float = 1e-4, random_state: RandomState = None) -> None:
        self.l2 = check_non_negative(l2, "l2")
        self._rng = as_generator(random_state)
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0
        self.n_classes = 2

    def initialize(self, n_features: int) -> None:
        """(Re-)initialize parameters for inputs of width ``n_features``."""
        scale = 1.0 / np.sqrt(max(n_features, 1))
        self.weights = self._rng.normal(0.0, scale, size=n_features)
        self.bias = 0.0

    @property
    def is_initialized(self) -> bool:
        return self.weights is not None

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Return the raw scores ``w.x + b``."""
        if self.weights is None:
            raise ConfigurationError("model is not initialized")
        features = np.asarray(features, dtype=np.float64)
        return features @ self.weights + self.bias

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Return ``(n, 2)`` probabilities for the negative/positive classes."""
        positive = sigmoid(self.decision_function(features))
        return np.column_stack([1.0 - positive, positive])

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Return 0/1 predictions at the 0.5 threshold."""
        return (self.decision_function(features) >= 0.0).astype(np.int64)

    def fit(
        self,
        dataset: Dataset,
        epochs: int = 200,
        learning_rate: float = 0.5,
    ) -> "LogisticRegression":
        """Train with full-batch gradient descent; returns ``self``."""
        if len(dataset) == 0:
            raise ConfigurationError("cannot fit on an empty dataset")
        labels = dataset.labels
        if labels.min() < 0 or labels.max() > 1:
            raise ConfigurationError("LogisticRegression expects labels in {0, 1}")
        self.initialize(dataset.n_features)
        features = dataset.features
        y = labels.astype(np.float64)
        n = len(dataset)
        for _ in range(int(epochs)):
            probs = sigmoid(features @ self.weights + self.bias)
            error = probs - y
            grad_w = features.T @ error / n + self.l2 * self.weights
            grad_b = float(error.mean())
            self.weights -= learning_rate * grad_w
            self.bias -= learning_rate * grad_b
        return self

    def loss(self, dataset: Dataset) -> float:
        """Mean binary log loss on ``dataset``."""
        if len(dataset) == 0:
            return 0.0
        positive = self.predict_proba(dataset.features)[:, 1]
        return binary_cross_entropy_loss(positive, dataset.labels)


def one_hot_labels(dataset: Dataset, n_classes: int) -> np.ndarray:
    """Convenience wrapper returning the dataset labels one-hot encoded."""
    return one_hot(dataset.labels, n_classes)
