"""Dataset container and split utilities.

A :class:`Dataset` is an immutable pair of a 2-D float feature matrix and a
1-D integer label vector.  All higher layers (slicing, acquisition, curve
estimation) manipulate datasets through the small set of operations here:
subsetting, sampling, concatenation, and train/validation splitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RandomState, as_generator


@dataclass(frozen=True)
class Dataset:
    """An immutable labeled dataset.

    Attributes
    ----------
    features:
        Array of shape ``(n_examples, n_features)``; stored as ``float64``.
    labels:
        Array of shape ``(n_examples,)``; stored as ``int64``.  Labels are
        class indices and need not be contiguous, though the classifiers
        expect them in ``range(n_classes)``.
    """

    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        features = np.asarray(self.features, dtype=np.float64)
        labels = np.asarray(self.labels, dtype=np.int64)
        if features.ndim != 2:
            raise ConfigurationError(
                f"features must be 2-dimensional, got shape {features.shape}"
            )
        if labels.ndim != 1:
            raise ConfigurationError(
                f"labels must be 1-dimensional, got shape {labels.shape}"
            )
        if features.shape[0] != labels.shape[0]:
            raise ConfigurationError(
                f"features has {features.shape[0]} rows but labels has "
                f"{labels.shape[0]} entries"
            )
        object.__setattr__(self, "features", features)
        object.__setattr__(self, "labels", labels)

    def __len__(self) -> int:
        return int(self.features.shape[0])

    @property
    def n_features(self) -> int:
        """Number of feature columns."""
        return int(self.features.shape[1])

    @property
    def n_classes(self) -> int:
        """Number of distinct labels present (0 for an empty dataset)."""
        if len(self) == 0:
            return 0
        return int(self.labels.max()) + 1

    def class_counts(self, n_classes: int | None = None) -> np.ndarray:
        """Return per-class example counts as an integer array."""
        n_classes = n_classes if n_classes is not None else self.n_classes
        return np.bincount(self.labels, minlength=n_classes)

    def subset(self, indices: Sequence[int] | np.ndarray) -> "Dataset":
        """Return a new dataset containing only the rows at ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(self.features[indices], self.labels[indices])

    def sample(self, size: int, random_state: RandomState = None) -> "Dataset":
        """Return a uniform random subset (without replacement) of ``size`` rows.

        ``size`` is clamped to the dataset size so callers may over-request.
        """
        size = int(min(max(size, 0), len(self)))
        if size == len(self):
            return self
        rng = as_generator(random_state)
        indices = rng.choice(len(self), size=size, replace=False)
        return self.subset(indices)

    def shuffle(self, random_state: RandomState = None) -> "Dataset":
        """Return a copy with rows in random order."""
        rng = as_generator(random_state)
        return self.subset(rng.permutation(len(self)))

    def take(self, size: int) -> "Dataset":
        """Return the first ``size`` rows (clamped to the dataset size)."""
        size = int(min(max(size, 0), len(self)))
        return self.subset(np.arange(size))

    @staticmethod
    def empty(n_features: int) -> "Dataset":
        """Return an empty dataset with ``n_features`` feature columns."""
        return Dataset(
            np.empty((0, n_features), dtype=np.float64),
            np.empty((0,), dtype=np.int64),
        )

    @staticmethod
    def concatenate(datasets: Iterable["Dataset"]) -> "Dataset":
        """Stack several datasets (they must agree on the feature width)."""
        datasets = [d for d in datasets if len(d) > 0]
        if not datasets:
            raise ConfigurationError("cannot concatenate zero non-empty datasets")
        widths = {d.n_features for d in datasets}
        if len(widths) > 1:
            raise ConfigurationError(
                f"datasets disagree on feature width: {sorted(widths)}"
            )
        features = np.concatenate([d.features for d in datasets], axis=0)
        labels = np.concatenate([d.labels for d in datasets], axis=0)
        return Dataset(features, labels)


def train_validation_split(
    dataset: Dataset,
    validation_size: int | float,
    random_state: RandomState = None,
) -> tuple[Dataset, Dataset]:
    """Split ``dataset`` into a train part and a validation part.

    Parameters
    ----------
    dataset:
        The dataset to split.
    validation_size:
        Either an absolute number of validation rows (``int``) or a fraction
        in ``(0, 1)`` (``float``).
    random_state:
        Seed or generator controlling the shuffle before splitting.

    Returns
    -------
    (train, validation):
        Two datasets whose sizes sum to ``len(dataset)``.
    """
    n = len(dataset)
    if isinstance(validation_size, float) and 0 < validation_size < 1:
        n_val = int(round(n * validation_size))
    else:
        n_val = int(validation_size)
    if n_val < 0 or n_val > n:
        raise ConfigurationError(
            f"validation_size={validation_size} resolves to {n_val} rows, "
            f"but the dataset only has {n}"
        )
    shuffled = dataset.shuffle(random_state)
    validation = shuffled.take(n_val)
    train = shuffled.subset(np.arange(n_val, n))
    return train, validation
