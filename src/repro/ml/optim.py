"""First-order optimizers for the NumPy classifiers.

The optimizers operate on a flat list of parameter arrays and matching
gradient arrays; models own their parameters and call ``update`` once per
mini-batch.  ``SGD``, ``Momentum``, and ``Adam`` cover everything the paper's
small CNN/fully-connected models need.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.validation import check_positive


class Optimizer:
    """Base class: applies gradient updates to a list of parameter arrays."""

    def __init__(self, learning_rate: float = 0.1) -> None:
        self.learning_rate = check_positive(learning_rate, "learning_rate")

    def update(
        self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]
    ) -> None:
        """Update ``params`` in place using ``grads``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any internal state (moment estimates, step counters)."""


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def update(
        self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]
    ) -> None:
        for param, grad in zip(params, grads):
            param -= self.learning_rate * grad


class Momentum(Optimizer):
    """SGD with classical (heavy-ball) momentum."""

    def __init__(self, learning_rate: float = 0.1, momentum: float = 0.9) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must lie in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocities: list[np.ndarray] | None = None

    def reset(self) -> None:
        self._velocities = None

    def update(
        self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]
    ) -> None:
        if self._velocities is None:
            self._velocities = [np.zeros_like(p) for p in params]
        for param, grad, velocity in zip(params, grads, self._velocities):
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            param += velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0:
            raise ValueError(f"beta1 must lie in [0, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must lie in [0, 1), got {beta2}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = check_positive(epsilon, "epsilon")
        self._first_moments: list[np.ndarray] | None = None
        self._second_moments: list[np.ndarray] | None = None
        self._step = 0

    def reset(self) -> None:
        self._first_moments = None
        self._second_moments = None
        self._step = 0

    def update(
        self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]
    ) -> None:
        if self._first_moments is None:
            self._first_moments = [np.zeros_like(p) for p in params]
            self._second_moments = [np.zeros_like(p) for p in params]
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param, grad, m, v in zip(
            params, grads, self._first_moments, self._second_moments
        ):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(grad)
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


def make_optimizer(name: str, learning_rate: float = 0.05) -> Optimizer:
    """Construct an optimizer by name (``"sgd"``, ``"momentum"``, ``"adam"``)."""
    key = name.strip().lower()
    if key == "sgd":
        return SGD(learning_rate)
    if key == "momentum":
        return Momentum(learning_rate)
    if key == "adam":
        return Adam(learning_rate)
    raise ValueError(f"unknown optimizer {name!r}; expected sgd, momentum, or adam")
