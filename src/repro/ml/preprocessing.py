"""Feature preprocessing: standardization and one-hot encoding.

The synthetic tabular datasets (AdultCensus stand-in) mix continuous and
categorical columns; the image-like datasets are already dense floats.  Both
benefit from standardization before gradient-based training.
"""

from __future__ import annotations

import numpy as np

from repro.utils.exceptions import ConfigurationError


class StandardScaler:
    """Standardize features to zero mean and unit variance, column-wise.

    Columns with zero variance are left centred but unscaled (divided by 1)
    so constant features do not produce NaNs.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and standard deviation from ``features``."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ConfigurationError(
                f"features must be 2-dimensional, got shape {features.shape}"
            )
        if features.shape[0] == 0:
            raise ConfigurationError("cannot fit a StandardScaler on zero rows")
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the learned standardization."""
        if self.mean_ is None or self.scale_ is None:
            raise ConfigurationError("StandardScaler must be fitted before transform")
        features = np.asarray(features, dtype=np.float64)
        return (features - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit on ``features`` and return the transformed array."""
        return self.fit(features).transform(features)

    def inverse_transform(self, features: np.ndarray) -> np.ndarray:
        """Undo the standardization."""
        if self.mean_ is None or self.scale_ is None:
            raise ConfigurationError("StandardScaler must be fitted before use")
        return np.asarray(features, dtype=np.float64) * self.scale_ + self.mean_


class OneHotEncoder:
    """One-hot encode integer categorical columns.

    Categories are learned per column during :meth:`fit`; unseen categories at
    transform time map to an all-zero block for that column, which keeps
    downstream models well-defined when acquisition introduces new values.
    """

    def __init__(self) -> None:
        self.categories_: list[np.ndarray] | None = None

    def fit(self, columns: np.ndarray) -> "OneHotEncoder":
        """Learn the category sets of each column of ``columns``."""
        columns = np.asarray(columns)
        if columns.ndim != 2:
            raise ConfigurationError(
                f"columns must be 2-dimensional, got shape {columns.shape}"
            )
        self.categories_ = [np.unique(columns[:, j]) for j in range(columns.shape[1])]
        return self

    @property
    def n_output_features(self) -> int:
        """Width of the encoded output."""
        if self.categories_ is None:
            raise ConfigurationError("OneHotEncoder must be fitted before use")
        return int(sum(len(cats) for cats in self.categories_))

    def transform(self, columns: np.ndarray) -> np.ndarray:
        """Encode ``columns`` into a dense 0/1 float matrix."""
        if self.categories_ is None:
            raise ConfigurationError("OneHotEncoder must be fitted before transform")
        columns = np.asarray(columns)
        if columns.ndim != 2 or columns.shape[1] != len(self.categories_):
            raise ConfigurationError(
                f"expected {len(self.categories_)} columns, got shape {columns.shape}"
            )
        blocks = []
        for j, categories in enumerate(self.categories_):
            block = np.zeros((columns.shape[0], len(categories)), dtype=np.float64)
            for k, category in enumerate(categories):
                block[:, k] = (columns[:, j] == category).astype(np.float64)
            blocks.append(block)
        return np.concatenate(blocks, axis=1)

    def fit_transform(self, columns: np.ndarray) -> np.ndarray:
        """Fit on ``columns`` and return the encoded matrix."""
        return self.fit(columns).transform(columns)
