"""Shared mini-batch training loop.

Every model training in the reproduction — the hundreds of trainings behind
learning-curve estimation, the final evaluation trainings, the influence
experiments — goes through :class:`Trainer` so they all use the same
hyperparameters, batching, and early-stopping behaviour, exactly like the
paper fixes hyperparameters once per dataset and never changes them again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.ml.data import Dataset
from repro.ml.optim import Optimizer, make_optimizer
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int


class TrainableModel(Protocol):
    """Structural interface the Trainer expects of a model."""

    n_classes: int

    def initialize(self, n_features: int) -> None: ...

    def parameters(self) -> list[np.ndarray]: ...

    def gradients(
        self, features: np.ndarray, labels: np.ndarray
    ) -> list[np.ndarray]: ...

    def loss(self, dataset: Dataset) -> float: ...

    def predict(self, features: np.ndarray) -> np.ndarray: ...


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters for a training run.

    Attributes
    ----------
    epochs:
        Maximum number of passes over the training data.
    batch_size:
        Mini-batch size; batches are drawn without replacement each epoch.
    optimizer:
        Name of the optimizer (``"sgd"``, ``"momentum"``, ``"adam"``).
    learning_rate:
        Step size passed to the optimizer.
    early_stopping_patience:
        Stop if the validation loss has not improved for this many epochs.
        ``0`` disables early stopping.
    validation_fraction:
        When early stopping is enabled and no explicit validation set is
        given to :meth:`Trainer.fit`, this fraction of the training data is
        held out internally.
    restore_best:
        When early stopping is in force, restore the parameters of the epoch
        with the best validation loss instead of keeping the post-patience
        weights.  Off by default, matching the historical behaviour.
    """

    epochs: int = 60
    batch_size: int = 32
    optimizer: str = "adam"
    learning_rate: float = 0.02
    early_stopping_patience: int = 0
    validation_fraction: float = 0.0
    restore_best: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.epochs, "epochs")
        check_positive_int(self.batch_size, "batch_size")
        if self.early_stopping_patience < 0:
            raise ConfigurationError(
                f"early_stopping_patience must be >= 0, got "
                f"{self.early_stopping_patience}"
            )
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ConfigurationError(
                f"validation_fraction must lie in [0, 1), got "
                f"{self.validation_fraction}"
            )


@dataclass
class TrainingResult:
    """Outcome of a training run.

    Attributes
    ----------
    epochs_run:
        Number of epochs actually executed (may be fewer than configured if
        early stopping triggered).
    train_losses:
        Per-epoch loss on the training data.
    validation_losses:
        Per-epoch loss on the validation data (empty when none was used).
    stopped_early:
        Whether the patience criterion ended training.
    best_epoch:
        1-based epoch with the best validation loss (``None`` when no
        validation ran).
    restored_best:
        Whether the best epoch's parameters were restored into the model
        (``restore_best`` configs only).
    """

    epochs_run: int = 0
    train_losses: list[float] = field(default_factory=list)
    validation_losses: list[float] = field(default_factory=list)
    stopped_early: bool = False
    best_epoch: int | None = None
    restored_best: bool = False

    @property
    def final_train_loss(self) -> float:
        """Loss on the training data after the last epoch."""
        return self.train_losses[-1] if self.train_losses else float("nan")


class Trainer:
    """Mini-batch gradient-descent training loop.

    Parameters
    ----------
    config:
        Training hyperparameters; a default config is used when omitted.
    random_state:
        Controls batch shuffling and the internal validation split.
    """

    def __init__(
        self,
        config: TrainingConfig | None = None,
        random_state: RandomState = None,
    ) -> None:
        self.config = config or TrainingConfig()
        self._rng = as_generator(random_state)

    def fit(
        self,
        model: TrainableModel,
        train: Dataset,
        validation: Dataset | None = None,
    ) -> TrainingResult:
        """Train ``model`` on ``train`` and return a :class:`TrainingResult`.

        The model is (re-)initialized, so a fresh model of the same
        architecture is fitted each time — matching the paper's protocol of
        retraining from scratch on every data subset.
        """
        if len(train) == 0:
            raise ConfigurationError("cannot train on an empty dataset")
        config = self.config

        if (
            validation is None
            and config.early_stopping_patience > 0
            and config.validation_fraction > 0.0
            and len(train) >= 10
        ):
            from repro.ml.data import train_validation_split

            train, validation = train_validation_split(
                train, config.validation_fraction, random_state=self._rng
            )

        model.initialize(train.n_features)
        optimizer: Optimizer = make_optimizer(config.optimizer, config.learning_rate)
        result = TrainingResult()

        best_validation = float("inf")
        best_parameters: list[np.ndarray] | None = None
        epochs_without_improvement = 0
        track_best = (
            config.restore_best and config.early_stopping_patience > 0
        )

        for epoch in range(config.epochs):
            self._run_epoch(model, optimizer, train)
            result.epochs_run = epoch + 1
            result.train_losses.append(model.loss(train))

            if validation is not None and len(validation) > 0:
                val_loss = model.loss(validation)
                result.validation_losses.append(val_loss)
                if val_loss < best_validation - 1e-6:
                    best_validation = val_loss
                    result.best_epoch = epoch + 1
                    epochs_without_improvement = 0
                    if track_best:
                        best_parameters = [p.copy() for p in model.parameters()]
                elif config.early_stopping_patience > 0:
                    epochs_without_improvement += 1
                    if epochs_without_improvement >= config.early_stopping_patience:
                        result.stopped_early = True
                        break

        if track_best and best_parameters is not None:
            for parameter, best in zip(model.parameters(), best_parameters):
                parameter[...] = best
            result.restored_best = True
        return result

    def _run_epoch(
        self, model: TrainableModel, optimizer: Optimizer, train: Dataset
    ) -> None:
        """One pass over the training data in shuffled mini-batches."""
        n = len(train)
        order = self._rng.permutation(n)
        batch_size = min(self.config.batch_size, n)
        for start in range(0, n, batch_size):
            batch_idx = order[start : start + batch_size]
            features = train.features[batch_idx]
            labels = train.labels[batch_idx]
            grads = model.gradients(features, labels)
            optimizer.update(model.parameters(), grads)


def train_model(
    model: TrainableModel,
    train: Dataset,
    validation: Dataset | None = None,
    config: TrainingConfig | None = None,
    random_state: RandomState = None,
) -> TrainingResult:
    """Functional convenience wrapper around :class:`Trainer`."""
    return Trainer(config=config, random_state=random_state).fit(
        model, train, validation
    )
