"""Machine-learning substrate built on NumPy.

The paper trains Keras CNNs; this reproduction substitutes NumPy
implementations of softmax regression and multi-layer perceptrons (see
``DESIGN.md``).  Slice Tuner only consumes per-slice validation losses as a
function of training-set size, so any classifier with the familiar power-law
loss decay exercises the framework's code paths faithfully.

Public entry points:

* :class:`~repro.ml.data.Dataset` — immutable (features, labels) container.
* :class:`~repro.ml.linear.SoftmaxRegression` and
  :class:`~repro.ml.mlp.MLPClassifier` — the classifiers.
* :class:`~repro.ml.train.Trainer` / :class:`~repro.ml.train.TrainingConfig`
  — the training loop with mini-batching and early stopping.
* :func:`~repro.ml.metrics.log_loss`, :func:`~repro.ml.metrics.accuracy`,
  :func:`~repro.ml.metrics.per_slice_losses` — evaluation helpers.
"""

from repro.ml.data import Dataset, train_validation_split
from repro.ml.linear import LogisticRegression, SoftmaxRegression
from repro.ml.losses import cross_entropy_loss, sigmoid, softmax
from repro.ml.metrics import accuracy, log_loss, per_slice_losses
from repro.ml.mlp import MLPClassifier
from repro.ml.optim import SGD, Adam, Momentum, Optimizer
from repro.ml.preprocessing import OneHotEncoder, StandardScaler
from repro.ml.train import Trainer, TrainingConfig, TrainingResult

__all__ = [
    "Dataset",
    "train_validation_split",
    "LogisticRegression",
    "SoftmaxRegression",
    "MLPClassifier",
    "softmax",
    "sigmoid",
    "cross_entropy_loss",
    "log_loss",
    "accuracy",
    "per_slice_losses",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "StandardScaler",
    "OneHotEncoder",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
]
