"""Command-line interface for the Slice Tuner reproduction.

Seven subcommands cover the common workflows without writing any Python:

* ``curves`` — estimate and print the per-slice learning curves of a dataset.
* ``plan`` — print the One-shot acquisition plan for a budget (no data is
  acquired), the "concrete action items" of the paper.
* ``run`` — execute one acquisition strategy end to end against a chosen
  acquisition setup (``--source generator|pool|mixed|flaky|crowdsourcing``)
  and print the per-fulfillment delivery log plus the engine cache
  statistics; ``run --resume <campaign-id>`` instead continues a stored
  campaign from its latest snapshot.
* ``compare`` — run several acquisition strategies over independently seeded
  trials and print the Table-2/6-style comparison.  ``--methods`` accepts
  any name in the strategy registry, including the ``bandit`` comparator
  and user registrations.
* ``campaign`` — durable, resumable runs persisted to a SQLite store:
  ``campaign start`` (one spec from flags, or ``--suite`` for the builtin
  concurrent multi-campaign workload), ``campaign resume <id>`` (or
  ``--all``) continuing after a pause or crash, ``campaign list``, and
  ``campaign show <id>`` replaying a campaign's event log.
* ``strategies`` — list every registered acquisition strategy.
* ``sources`` — list every registered data-source provider.

Every subcommand accepts ``--quiet`` (print only essential results) and the
process exits with code 0 on success, 2 on configuration/usage errors (the
same code argparse uses), and a raised traceback only for genuine bugs.

Examples::

    python -m repro.cli strategies
    python -m repro.cli curves --dataset fashion_like --initial-size 150
    python -m repro.cli run --dataset fashion_like --scenario mixed_sources \
        --source mixed --method moderate --budget 800
    python -m repro.cli campaign start --suite --store campaigns.sqlite
    python -m repro.cli campaign list --store campaigns.sqlite
    python -m repro.cli campaign resume --all --store campaigns.sqlite
    python -m repro.cli compare --dataset mixed_like --budget 2000 \
        --methods uniform water_filling moderate bandit --trials 2
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import Callable, Sequence

from repro.acquisition.providers import source_descriptions
from repro.campaigns import (
    RESUMABLE,
    Campaign,
    CampaignScheduler,
    CampaignSpec,
    SqliteStore,
    campaign_progress,
    replay_events,
)
from repro.core.registry import (
    available_strategies,
    get_strategy,
    is_registered,
    strategy_descriptions,
)
from repro.datasets.registry import available_tasks
from repro.engine.cache import InMemoryResultCache
from repro.engine.executor import SerialExecutor, available_executors, get_executor
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import (
    allocations_table,
    cache_stats_table,
    engine_cache_stats,
    methods_table,
)
from repro.experiments.runner import (
    SOURCE_KINDS,
    campaign_suite,
    compare_methods,
    prepare_instance,
    prepare_named_instance,
)
from repro.experiments.scenarios import list_scenarios
from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.utils.exceptions import ConfigurationError, ReproError
from repro.utils.tables import format_table

#: Default campaign store location for the ``campaign`` family of commands.
DEFAULT_STORE = "campaigns.sqlite"


def _registered_method(name: str) -> str:
    """argparse type for ``--methods``: any registered strategy name."""
    if not is_registered(name):
        raise argparse.ArgumentTypeError(
            f"unknown strategy {name!r}; run `python -m repro.cli strategies` "
            f"to list registered strategies ({', '.join(available_strategies())})"
        )
    return name.strip().lower()


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Slice Tuner: selective data acquisition (SIGMOD 2021 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_quiet(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--quiet",
            action="store_true",
            help="print only essential results (ids, status, final summary)",
        )

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dataset",
            default="fashion_like",
            choices=available_tasks(),
            help="synthetic dataset to use",
        )
        sub.add_argument(
            "--scenario",
            default="basic",
            choices=list_scenarios(),
            help="initial-size scenario",
        )
        sub.add_argument("--initial-size", type=int, default=150, help="base initial size per slice")
        sub.add_argument("--validation-size", type=int, default=150, help="validation examples per slice")
        sub.add_argument("--epochs", type=int, default=30, help="training epochs per model fit")
        sub.add_argument("--curve-points", type=int, default=5, help="subset sizes measured per learning curve")
        sub.add_argument("--seed", type=int, default=0, help="base random seed")
        add_quiet(sub)

    curves = subparsers.add_parser("curves", help="estimate per-slice learning curves")
    add_common(curves)

    plan = subparsers.add_parser("plan", help="print the One-shot acquisition plan for a budget")
    add_common(plan)
    plan.add_argument("--budget", type=float, default=1000.0, help="acquisition budget B")
    plan.add_argument("--lam", type=float, default=1.0, help="loss/unfairness trade-off weight")

    run = subparsers.add_parser(
        "run",
        help="run one strategy end to end and print the fulfillment log",
    )
    add_common(run)
    run.add_argument("--budget", type=float, default=1000.0, help="acquisition budget B")
    run.add_argument("--lam", type=float, default=1.0, help="loss/unfairness trade-off weight")
    run.add_argument(
        "--method",
        default="moderate",
        type=_registered_method,
        metavar="STRATEGY",
        help="registered strategy name to run (see the strategies subcommand)",
    )
    run.add_argument(
        "--source",
        default=None,
        choices=SOURCE_KINDS,
        help="acquisition setup to route requests across (defaults to the "
        "scenario's own source kind)",
    )
    run.add_argument(
        "--rounds",
        type=int,
        default=1,
        help="routing rounds per acquisition request (re-ask throttled or "
        "partially-delivering providers up to this many times per batch)",
    )
    run.add_argument(
        "--evaluate",
        action="store_true",
        help="also train and evaluate the model before and after acquisition",
    )
    run.add_argument(
        "--resume",
        metavar="CAMPAIGN_ID",
        default=None,
        help="instead of a fresh run, resume the stored campaign from its "
        "latest snapshot (shorthand for `campaign resume CAMPAIGN_ID`)",
    )
    run.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help=f"campaign store used by --resume (default: {DEFAULT_STORE})",
    )

    compare = subparsers.add_parser("compare", help="compare acquisition methods over trials")
    add_common(compare)
    compare.add_argument("--budget", type=float, default=1000.0, help="acquisition budget B")
    compare.add_argument("--lam", type=float, default=1.0, help="loss/unfairness trade-off weight")
    compare.add_argument(
        "--methods",
        nargs="+",
        default=["uniform", "water_filling", "moderate"],
        type=_registered_method,
        metavar="STRATEGY",
        help="registered strategy names to compare (see the strategies subcommand)",
    )
    compare.add_argument("--trials", type=int, default=2, help="independently seeded repetitions")
    compare.add_argument(
        "--show-allocations",
        action="store_true",
        help="also print the mean per-slice acquisitions (Table 3 style)",
    )
    compare.add_argument(
        "--executor",
        default="serial",
        choices=available_executors(),
        help="execution backend for the (method, trial) grid; results are "
        "identical for every backend",
    )
    compare.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --executor process (default: CPU count)",
    )

    campaign = subparsers.add_parser(
        "campaign",
        help="durable campaign runs: start, resume, list, show",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def add_store(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store",
            default=DEFAULT_STORE,
            help=f"SQLite campaign store path (default: {DEFAULT_STORE})",
        )
        add_quiet(sub)

    c_start = campaign_sub.add_parser(
        "start",
        help="start a new campaign (or the builtin --suite), persisting "
        "every iteration",
    )
    add_store(c_start)
    c_start.add_argument("--name", default=None, help="campaign name (required unless --suite)")
    c_start.add_argument("--dataset", default="adult_like", choices=available_tasks())
    c_start.add_argument("--scenario", default="basic", choices=list_scenarios())
    c_start.add_argument(
        "--source",
        default=None,
        choices=SOURCE_KINDS,
        help="acquisition setup (defaults to the scenario's own source kind)",
    )
    c_start.add_argument("--method", default="moderate", type=_registered_method, metavar="STRATEGY")
    c_start.add_argument("--budget", type=float, default=500.0)
    c_start.add_argument("--lam", type=float, default=1.0)
    c_start.add_argument("--seed", type=int, default=0)
    c_start.add_argument("--initial-size", type=int, default=60, help="base initial size per slice")
    c_start.add_argument("--validation-size", type=int, default=60)
    c_start.add_argument("--epochs", type=int, default=10)
    c_start.add_argument("--curve-points", type=int, default=3)
    c_start.add_argument("--priority", type=int, default=0, help="scheduler lane (higher runs first)")
    c_start.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="snapshot cadence in iterations",
    )
    c_start.add_argument(
        "--evaluate",
        action="store_true",
        help="attach before/after evaluation reports to the result",
    )
    c_start.add_argument(
        "--max-steps",
        type=int,
        default=None,
        help="pause (checkpointed) after this many iterations instead of "
        "running to completion",
    )
    c_start.add_argument(
        "--suite",
        action="store_true",
        help="run the builtin campaign_suite: 3 heterogeneous campaigns "
        "multiplexed over one shared engine executor",
    )

    c_resume = campaign_sub.add_parser(
        "resume", help="resume stored campaigns after a pause or crash"
    )
    add_store(c_resume)
    c_resume.add_argument(
        "campaign_id",
        nargs="?",
        default=None,
        help="campaign id to resume (omit with --all)",
    )
    c_resume.add_argument(
        "--all",
        action="store_true",
        dest="resume_all",
        help="resume every unfinished campaign in the store, multiplexed",
    )

    c_list = campaign_sub.add_parser("list", help="list every stored campaign")
    add_store(c_list)

    c_show = campaign_sub.add_parser(
        "show", help="replay one campaign's event log into a progress report"
    )
    add_store(c_show)
    c_show.add_argument("campaign_id", help="campaign id to show")

    strategies = subparsers.add_parser(
        "strategies", help="list every registered acquisition strategy"
    )
    add_quiet(strategies)
    sources = subparsers.add_parser(
        "sources", help="list every registered data-source provider"
    )
    add_quiet(sources)
    return parser


def _experiment_config(
    args: argparse.Namespace,
    methods: tuple[str, ...],
    budget: float,
    lam: float,
    trials: int,
    extra: dict | None = None,
) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=args.dataset,
        scenario=args.scenario,
        budget=budget,
        methods=methods,
        lam=lam,
        trials=trials,
        validation_size=args.validation_size,
        curve_points=args.curve_points,
        curve_repeats=1,
        epochs=args.epochs,
        seed=args.seed,
        extra={"base_size": args.initial_size, **(extra or {})},
    )


def _build_tuner(args: argparse.Namespace, lam: float = 1.0) -> SliceTuner:
    config = _experiment_config(args, methods=("moderate",), budget=1.0, lam=lam, trials=1)
    sliced, source = prepare_instance(config, seed=args.seed)
    return SliceTuner(
        sliced,
        source,
        trainer_config=config.training_config(),
        curve_config=config.curve_config(),
        config=SliceTunerConfig(lam=lam),
        random_state=args.seed + 1,
    )


def run_curves(args: argparse.Namespace) -> str:
    """The ``curves`` subcommand: fit and render per-slice learning curves."""
    tuner = _build_tuner(args)
    curves = tuner.estimate_curves()
    rows = [
        [name, f"{curve.b:.3f}", f"{curve.a:.3f}", f"{curve.reliability:.2f}", curve.describe()]
        for name, curve in curves.items()
    ]
    if args.quiet:
        return "\n".join(
            f"{name} b={curve.b:.3f} a={curve.a:.3f}" for name, curve in curves.items()
        )
    return format_table(
        headers=["slice", "b", "a", "reliability", "curve"],
        rows=rows,
        title=f"Learning curves for {args.dataset} ({args.scenario} scenario)",
    )


def run_plan(args: argparse.Namespace) -> str:
    """The ``plan`` subcommand: print the One-shot plan without acquiring."""
    tuner = _build_tuner(args, lam=args.lam)
    plan = tuner.plan(budget=args.budget, lam=args.lam)
    if args.quiet:
        return "\n".join(f"{name} {count}" for name, count in plan.counts.items())
    return plan.to_text()


def run_run(args: argparse.Namespace) -> str:
    """The ``run`` subcommand: one strategy end to end + the fulfillment log."""
    if args.resume is not None:
        return _resume_campaigns(args, [args.resume])
    extra = {} if args.source is None else {"source": args.source}
    config = _experiment_config(
        args,
        methods=(args.method,),
        budget=args.budget,
        lam=args.lam,
        trials=1,
        extra=extra,
    )
    sliced, sources = prepare_named_instance(config, seed=args.seed)
    tuner = SliceTuner(
        sliced,
        trainer_config=config.training_config(),
        curve_config=config.curve_config(),
        config=SliceTunerConfig(lam=args.lam, acquisition_rounds=args.rounds),
        random_state=args.seed + 1,
        sources=sources,
        result_cache=InMemoryResultCache(),
    )
    session = tuner.session()
    fulfillments = []
    session.add_hook("fulfillment", lambda f: fulfillments.append(f))
    if args.evaluate:
        result = session.run(args.budget, strategy=args.method, lam=args.lam)
    else:
        for _ in session.stream(args.budget, strategy=args.method, lam=args.lam):
            pass
        result = session.result()

    if args.quiet:
        return (
            f"method={args.method} iterations={result.n_iterations} "
            f"spent={result.spent:.2f} acquired={sum(result.total_acquired.values())}"
        )
    rows = [
        [
            f.slice_name,
            f.request.count,
            f.delivered_count,
            f.shortfall,
            f.rounds,
            f.status,
            "+".join(f.provenance) or "-",
            f.request.tag,
        ]
        for f in fulfillments
    ]
    output = format_table(
        headers=[
            "slice", "requested", "delivered", "shortfall", "rounds",
            "status", "provenance", "tag",
        ],
        rows=rows,
        title=(
            f"Fulfillment log — providers: {', '.join(tuner.provider_order)} "
            f"({len(fulfillments)} fulfillments)"
        ),
    )
    output += "\n\n" + result.acquisitions_table()
    output += "\n\n" + cache_stats_table(
        engine_cache_stats(tuner),
        trainings_performed=tuner.estimator.trainings_performed,
    )
    if args.evaluate and result.final_report is not None:
        output += "\n\n" + result.final_report.to_text()
    return output


def run_compare(args: argparse.Namespace) -> str:
    """The ``compare`` subcommand: Table-2/6-style method comparison."""
    config = _experiment_config(
        args,
        methods=tuple(args.methods),
        budget=args.budget,
        lam=args.lam,
        trials=args.trials,
    )
    if args.workers is not None and args.executor != "process":
        raise ConfigurationError("--workers only applies to --executor process")
    executor_kwargs = (
        {"max_workers": args.workers} if args.executor == "process" else {}
    )
    with get_executor(args.executor, **executor_kwargs) as executor:
        aggregates = compare_methods(config, include_original=True, executor=executor)
    if args.quiet:
        return "\n".join(
            f"{method} loss={aggregate.loss_mean:.3f} "
            f"avg_eer={aggregate.avg_eer_mean:.3f}"
            for method, aggregate in aggregates.items()
        )
    output = methods_table(
        aggregates,
        title=(
            f"{args.dataset} / {args.scenario} — budget {args.budget:.0f}, "
            f"lambda {args.lam}, {args.trials} trial(s)"
        ),
        method_order=["original", *args.methods],
    )
    if args.show_allocations:
        sliced, _ = prepare_instance(config, seed=args.seed)
        output += "\n\n" + allocations_table(
            {m: aggregates[m] for m in args.methods},
            slice_names=sliced.names,
            title="Mean examples acquired per slice",
        )
    return output


# -- the campaign family -----------------------------------------------------------


def _kill_after_hook() -> Callable[..., None] | None:
    """Testing aid: kill this process after N persisted iterations.

    Controlled by the ``REPRO_CAMPAIGN_KILL_AFTER`` environment variable
    (``REPRO_CAMPAIGN_KILL_SIGNAL`` picks the signal, default ``KILL``);
    the CI campaign-smoke job and the crash/resume acceptance test use it
    to kill a suite at a deterministic mid-run point and prove that
    resuming reproduces the uninterrupted results byte-for-byte.  The kill
    fires *after* the iteration's event and snapshot were committed, which
    is exactly what an external ``kill -9`` races against.
    """
    kill_after = int(os.environ.get("REPRO_CAMPAIGN_KILL_AFTER", "0") or 0)
    if kill_after <= 0:
        return None
    signame = os.environ.get("REPRO_CAMPAIGN_KILL_SIGNAL", "KILL").upper()
    signum = getattr(signal, f"SIG{signame}")
    seen = {"n": 0}

    def hook(*_args: object) -> None:
        seen["n"] += 1
        if seen["n"] >= kill_after:
            os.kill(os.getpid(), signum)

    return hook


def _progress_printer(quiet: bool):
    def on_progress(tick) -> None:
        if quiet:
            return
        state = "done" if tick.done else f"iteration {tick.iteration}"
        print(
            f"[{tick.name}] {state} — spent {tick.spent:.0f}/{tick.budget:.0f} "
            f"(lane {tick.priority})"
        )

    return on_progress


def _combined_progress(quiet: bool):
    """Progress printer plus the optional deterministic-kill testing hook."""
    printer = _progress_printer(quiet)
    kill_hook = _kill_after_hook()

    def on_progress(tick) -> None:
        printer(tick)
        if kill_hook is not None:
            kill_hook(tick)

    return on_progress


def _suite_summary(results, executor, quiet: bool) -> str:
    """Render ``[(display name, TuningResult), ...]`` plus the shared cache."""
    lines = [
        f"{name}: iterations={result.n_iterations} spent={result.spent:.2f} "
        f"acquired={sum(result.total_acquired.values())}"
        for name, result in results
    ]
    if not quiet and executor.cache is not None:
        lines.append("")
        lines.append(
            cache_stats_table(
                {"results": executor.cache.stats},
                title="Shared engine cache across campaigns",
            )
        )
    return "\n".join(lines)


def run_campaign_start(args: argparse.Namespace) -> str:
    """``campaign start``: one campaign from flags, or the builtin suite."""
    with SqliteStore(args.store) as store:
        if args.suite:
            executor = SerialExecutor(cache=InMemoryResultCache())
            results = campaign_suite(
                store=store,
                executor=executor,
                seed=args.seed,
                on_progress=_combined_progress(args.quiet),
            )
            return _suite_summary(list(results.items()), executor, args.quiet)
        if not args.name:
            raise ConfigurationError(
                "campaign start needs --name (or --suite for the builtin workload)"
            )
        spec = CampaignSpec(
            name=args.name,
            dataset=args.dataset,
            scenario=args.scenario,
            source=args.source,
            method=args.method,
            budget=args.budget,
            lam=args.lam,
            seed=args.seed,
            base_size=args.initial_size,
            validation_size=args.validation_size,
            epochs=args.epochs,
            curve_points=args.curve_points,
            priority=args.priority,
            checkpoint_every=args.checkpoint_every,
            evaluate=args.evaluate,
        )
        campaign = Campaign.start(store, spec, result_cache=InMemoryResultCache())
        if campaign.reused and campaign.is_done:
            result = campaign.result()
            return (
                f"{campaign.campaign_id}: already completed (idempotent re-run) — "
                f"iterations={result.n_iterations} spent={result.spent:.2f}"
            )
        if not args.quiet:
            campaign.add_iteration_hook(
                lambda c, record: print(
                    f"[{c.spec.name}] iteration {record.iteration} — "
                    f"spent {c.spent:.0f}/{c.spec.budget:.0f}"
                )
            )
        kill_hook = _kill_after_hook()
        if kill_hook is not None:
            campaign.add_iteration_hook(kill_hook)
        result = campaign.run(max_steps=args.max_steps)
        if result is None:
            return (
                f"{campaign.campaign_id}: paused after --max-steps "
                f"{args.max_steps} iteration(s); resume with "
                f"`campaign resume {campaign.campaign_id} --store {args.store}`"
            )
        return _campaign_result_text(campaign, result, args.quiet)


def _campaign_result_text(campaign: Campaign, result, quiet: bool) -> str:
    essential = (
        f"{campaign.campaign_id}: completed — iterations={result.n_iterations} "
        f"spent={result.spent:.2f} acquired={sum(result.total_acquired.values())}"
    )
    if quiet:
        return essential
    output = essential + "\n\n" + result.acquisitions_table()
    if campaign.tuner is not None:
        output += "\n\n" + cache_stats_table(
            engine_cache_stats(campaign.tuner),
            trainings_performed=campaign.tuner.estimator.trainings_performed,
        )
    if result.final_report is not None:
        output += "\n\n" + result.final_report.to_text()
    return output


def _resume_campaigns(args: argparse.Namespace, campaign_ids: list[str]) -> str:
    with SqliteStore(args.store) as store:
        scheduler = CampaignScheduler(
            store=store,
            result_cache=InMemoryResultCache(),
            on_progress=_combined_progress(args.quiet),
        )
        for campaign_id in campaign_ids:
            scheduler.add_existing(campaign_id)
        by_id = scheduler.run()
        # Display names can collide across campaigns; campaign ids cannot,
        # so every resumed campaign gets its own summary line.
        results = [
            (campaign.spec.name, by_id[campaign.campaign_id])
            for campaign in scheduler.campaigns
        ]
        return _suite_summary(results, scheduler.executor, args.quiet)


def run_campaign_resume(args: argparse.Namespace) -> str:
    """``campaign resume``: continue one campaign (or every unfinished one)."""
    if args.resume_all and args.campaign_id:
        raise ConfigurationError("pass either a campaign id or --all, not both")
    if args.resume_all:
        with SqliteStore(args.store) as store:
            pending = [
                record.campaign_id
                for record in store.list_campaigns()
                if record.status in RESUMABLE
            ]
        if not pending:
            return "nothing to resume: every stored campaign is completed"
        return _resume_campaigns(args, pending)
    if not args.campaign_id:
        raise ConfigurationError("campaign resume needs a campaign id (or --all)")
    return _resume_campaigns(args, [args.campaign_id])


def run_campaign_list(args: argparse.Namespace) -> str:
    """``campaign list``: one row per stored campaign."""
    with SqliteStore(args.store) as store:
        records = store.list_campaigns()
        if not records:
            return f"no campaigns in {args.store}"
        rows = []
        for record in records:
            progress = campaign_progress(store, record.campaign_id)
            rows.append(
                [
                    record.campaign_id,
                    record.name,
                    record.status,
                    record.priority,
                    progress.iterations,
                    f"{progress.spent:.0f}/{progress.budget:.0f}",
                    progress.generations,
                ]
            )
    if args.quiet:
        return "\n".join(f"{row[0]} {row[2]}" for row in rows)
    return format_table(
        headers=["id", "name", "status", "lane", "iters", "spent/budget", "gens"],
        rows=rows,
        title=f"Campaigns in {args.store}",
    )


def run_campaign_show(args: argparse.Namespace) -> str:
    """``campaign show``: replay one campaign's event log."""
    with SqliteStore(args.store) as store:
        record = store.get_campaign(args.campaign_id)
        progress = campaign_progress(store, args.campaign_id)
        events = replay_events(store.events(args.campaign_id))
    if args.quiet:
        return (
            f"{record.campaign_id} {record.status} iterations={progress.iterations} "
            f"spent={progress.spent:.2f}"
        )
    spec_lines = "\n".join(
        f"  {key} = {value}" for key, value in sorted(record.spec.items())
    )
    iteration_rows = [
        [
            event.iteration,
            event.generation,
            sum(event.payload.get("acquired", {}).values()),
            f"{event.payload.get('spent', 0.0):.1f}",
            f"{event.payload.get('imbalance_after', 0.0):.2f}",
        ]
        for event in events
        if event.kind == "iteration"
    ]
    output = (
        f"campaign {record.campaign_id} ({record.name})\n"
        f"status: {record.status} — lane {record.priority}, "
        f"{progress.generations} generation(s), "
        f"{progress.fulfillments} fulfillment(s)\n"
        f"spec:\n{spec_lines}\n\n"
    )
    output += format_table(
        headers=["iteration", "generation", "acquired", "spent", "imbalance"],
        rows=iteration_rows,
        title=(
            f"Replayed history — {progress.iterations} iteration(s), "
            f"spent {progress.spent:.2f}/{progress.budget:.0f}"
        ),
    )
    return output


def run_campaign(args: argparse.Namespace) -> str:
    """Dispatch for the ``campaign`` family of subcommands."""
    if args.campaign_command == "start":
        return run_campaign_start(args)
    if args.campaign_command == "resume":
        return run_campaign_resume(args)
    if args.campaign_command == "list":
        return run_campaign_list(args)
    if args.campaign_command == "show":
        return run_campaign_show(args)
    raise ConfigurationError(  # pragma: no cover - argparse enforces choices
        f"unknown campaign command {args.campaign_command!r}"
    )


def run_strategies(args: argparse.Namespace) -> str:
    """The ``strategies`` subcommand: list the acquisition-strategy registry."""
    if args.quiet:
        return "\n".join(available_strategies())
    rows = []
    for name, description in strategy_descriptions().items():
        strategy = get_strategy(name)
        kind = "iterative" if strategy.is_iterative else "one-shot"
        uses_lam = "yes" if strategy.uses_lam else "no"
        rows.append([name, kind, uses_lam, description])
    return format_table(
        headers=["strategy", "kind", "uses lambda", "description"],
        rows=rows,
        title="Registered acquisition strategies",
    )


def run_sources(args: argparse.Namespace) -> str:
    """The ``sources`` subcommand: list the data-source provider registry."""
    descriptions = source_descriptions()
    if args.quiet:
        return "\n".join(descriptions)
    rows = [[name, description] for name, description in descriptions.items()]
    return format_table(
        headers=["source", "description"],
        rows=rows,
        title="Registered data-source providers",
    )


_COMMANDS = {
    "curves": run_curves,
    "plan": run_plan,
    "run": run_run,
    "compare": run_compare,
    "campaign": run_campaign,
    "strategies": run_strategies,
    "sources": run_sources,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes are consistent across subcommands: 0 on success, 2 for
    configuration/usage errors (unknown strategy, unknown campaign id,
    invalid flag combinations — the same code argparse uses for parse
    errors).  Unexpected exceptions propagate as tracebacks.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS.get(args.command)
    if handler is None:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
    try:
        output = handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if output:
        print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
