"""Command-line interface for the Slice Tuner reproduction.

Six subcommands cover the common workflows without writing any Python:

* ``curves`` — estimate and print the per-slice learning curves of a dataset.
* ``plan`` — print the One-shot acquisition plan for a budget (no data is
  acquired), the "concrete action items" of the paper.
* ``run`` — execute one acquisition strategy end to end against a chosen
  acquisition setup (``--source generator|pool|mixed|flaky|crowdsourcing``)
  and print the per-fulfillment delivery log: provenance, shortfalls, and
  routing rounds, the things the multi-source service makes observable.
* ``compare`` — run several acquisition strategies over independently seeded
  trials and print the Table-2/6-style comparison.  ``--methods`` accepts
  any name in the strategy registry, including the ``bandit`` comparator
  and user registrations.
* ``strategies`` — list every registered acquisition strategy.
* ``sources`` — list every registered data-source provider.

Examples::

    python -m repro.cli strategies
    python -m repro.cli sources
    python -m repro.cli curves --dataset fashion_like --initial-size 150
    python -m repro.cli plan --dataset faces_like --budget 1000 --lam 1.0
    python -m repro.cli run --dataset fashion_like --scenario mixed_sources \
        --source mixed --method moderate --budget 800
    python -m repro.cli compare --dataset mixed_like --budget 2000 \
        --methods uniform water_filling moderate bandit --trials 2
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.acquisition.providers import source_descriptions
from repro.core.registry import (
    available_strategies,
    get_strategy,
    is_registered,
    strategy_descriptions,
)
from repro.datasets.registry import available_tasks
from repro.engine.executor import available_executors, get_executor
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import allocations_table, methods_table
from repro.experiments.runner import (
    SOURCE_KINDS,
    compare_methods,
    prepare_instance,
    prepare_named_instance,
)
from repro.experiments.scenarios import list_scenarios
from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.utils.tables import format_table


def _registered_method(name: str) -> str:
    """argparse type for ``--methods``: any registered strategy name."""
    if not is_registered(name):
        raise argparse.ArgumentTypeError(
            f"unknown strategy {name!r}; run `python -m repro.cli strategies` "
            f"to list registered strategies ({', '.join(available_strategies())})"
        )
    return name.strip().lower()


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Slice Tuner: selective data acquisition (SIGMOD 2021 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dataset",
            default="fashion_like",
            choices=available_tasks(),
            help="synthetic dataset to use",
        )
        sub.add_argument(
            "--scenario",
            default="basic",
            choices=list_scenarios(),
            help="initial-size scenario",
        )
        sub.add_argument("--initial-size", type=int, default=150, help="base initial size per slice")
        sub.add_argument("--validation-size", type=int, default=150, help="validation examples per slice")
        sub.add_argument("--epochs", type=int, default=30, help="training epochs per model fit")
        sub.add_argument("--curve-points", type=int, default=5, help="subset sizes measured per learning curve")
        sub.add_argument("--seed", type=int, default=0, help="base random seed")

    curves = subparsers.add_parser("curves", help="estimate per-slice learning curves")
    add_common(curves)

    plan = subparsers.add_parser("plan", help="print the One-shot acquisition plan for a budget")
    add_common(plan)
    plan.add_argument("--budget", type=float, default=1000.0, help="acquisition budget B")
    plan.add_argument("--lam", type=float, default=1.0, help="loss/unfairness trade-off weight")

    run = subparsers.add_parser(
        "run",
        help="run one strategy end to end and print the fulfillment log",
    )
    add_common(run)
    run.add_argument("--budget", type=float, default=1000.0, help="acquisition budget B")
    run.add_argument("--lam", type=float, default=1.0, help="loss/unfairness trade-off weight")
    run.add_argument(
        "--method",
        default="moderate",
        type=_registered_method,
        metavar="STRATEGY",
        help="registered strategy name to run (see the strategies subcommand)",
    )
    run.add_argument(
        "--source",
        default=None,
        choices=SOURCE_KINDS,
        help="acquisition setup to route requests across (defaults to the "
        "scenario's own source kind)",
    )
    run.add_argument(
        "--rounds",
        type=int,
        default=1,
        help="routing rounds per acquisition request (re-ask throttled or "
        "partially-delivering providers up to this many times per batch)",
    )
    run.add_argument(
        "--evaluate",
        action="store_true",
        help="also train and evaluate the model before and after acquisition",
    )

    compare = subparsers.add_parser("compare", help="compare acquisition methods over trials")
    add_common(compare)
    compare.add_argument("--budget", type=float, default=1000.0, help="acquisition budget B")
    compare.add_argument("--lam", type=float, default=1.0, help="loss/unfairness trade-off weight")
    compare.add_argument(
        "--methods",
        nargs="+",
        default=["uniform", "water_filling", "moderate"],
        type=_registered_method,
        metavar="STRATEGY",
        help="registered strategy names to compare (see the strategies subcommand)",
    )
    compare.add_argument("--trials", type=int, default=2, help="independently seeded repetitions")
    compare.add_argument(
        "--show-allocations",
        action="store_true",
        help="also print the mean per-slice acquisitions (Table 3 style)",
    )
    compare.add_argument(
        "--executor",
        default="serial",
        choices=available_executors(),
        help="execution backend for the (method, trial) grid; results are "
        "identical for every backend",
    )
    compare.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --executor process (default: CPU count)",
    )

    subparsers.add_parser(
        "strategies", help="list every registered acquisition strategy"
    )
    subparsers.add_parser(
        "sources", help="list every registered data-source provider"
    )
    return parser


def _experiment_config(
    args: argparse.Namespace,
    methods: tuple[str, ...],
    budget: float,
    lam: float,
    trials: int,
    extra: dict | None = None,
) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=args.dataset,
        scenario=args.scenario,
        budget=budget,
        methods=methods,
        lam=lam,
        trials=trials,
        validation_size=args.validation_size,
        curve_points=args.curve_points,
        curve_repeats=1,
        epochs=args.epochs,
        seed=args.seed,
        extra={"base_size": args.initial_size, **(extra or {})},
    )


def _build_tuner(args: argparse.Namespace, lam: float = 1.0) -> SliceTuner:
    config = _experiment_config(args, methods=("moderate",), budget=1.0, lam=lam, trials=1)
    sliced, source = prepare_instance(config, seed=args.seed)
    return SliceTuner(
        sliced,
        source,
        trainer_config=config.training_config(),
        curve_config=config.curve_config(),
        config=SliceTunerConfig(lam=lam),
        random_state=args.seed + 1,
    )


def run_curves(args: argparse.Namespace) -> str:
    """The ``curves`` subcommand: fit and render per-slice learning curves."""
    tuner = _build_tuner(args)
    curves = tuner.estimate_curves()
    rows = [
        [name, f"{curve.b:.3f}", f"{curve.a:.3f}", f"{curve.reliability:.2f}", curve.describe()]
        for name, curve in curves.items()
    ]
    return format_table(
        headers=["slice", "b", "a", "reliability", "curve"],
        rows=rows,
        title=f"Learning curves for {args.dataset} ({args.scenario} scenario)",
    )


def run_plan(args: argparse.Namespace) -> str:
    """The ``plan`` subcommand: print the One-shot plan without acquiring."""
    tuner = _build_tuner(args, lam=args.lam)
    plan = tuner.plan(budget=args.budget, lam=args.lam)
    return plan.to_text()


def run_run(args: argparse.Namespace) -> str:
    """The ``run`` subcommand: one strategy end to end + the fulfillment log."""
    extra = {} if args.source is None else {"source": args.source}
    config = _experiment_config(
        args,
        methods=(args.method,),
        budget=args.budget,
        lam=args.lam,
        trials=1,
        extra=extra,
    )
    sliced, sources = prepare_named_instance(config, seed=args.seed)
    tuner = SliceTuner(
        sliced,
        trainer_config=config.training_config(),
        curve_config=config.curve_config(),
        config=SliceTunerConfig(lam=args.lam, acquisition_rounds=args.rounds),
        random_state=args.seed + 1,
        sources=sources,
    )
    session = tuner.session()
    fulfillments = []
    session.add_hook("fulfillment", lambda f: fulfillments.append(f))
    if args.evaluate:
        result = session.run(args.budget, strategy=args.method, lam=args.lam)
    else:
        for _ in session.stream(args.budget, strategy=args.method, lam=args.lam):
            pass
        result = session.result()

    rows = [
        [
            f.slice_name,
            f.request.count,
            f.delivered_count,
            f.shortfall,
            f.rounds,
            f.status,
            "+".join(f.provenance) or "-",
            f.request.tag,
        ]
        for f in fulfillments
    ]
    output = format_table(
        headers=[
            "slice", "requested", "delivered", "shortfall", "rounds",
            "status", "provenance", "tag",
        ],
        rows=rows,
        title=(
            f"Fulfillment log — providers: {', '.join(tuner.provider_order)} "
            f"({len(fulfillments)} fulfillments)"
        ),
    )
    output += "\n\n" + result.acquisitions_table()
    if args.evaluate and result.final_report is not None:
        output += "\n\n" + result.final_report.to_text()
    return output


def run_compare(args: argparse.Namespace) -> str:
    """The ``compare`` subcommand: Table-2/6-style method comparison."""
    config = _experiment_config(
        args,
        methods=tuple(args.methods),
        budget=args.budget,
        lam=args.lam,
        trials=args.trials,
    )
    if args.workers is not None and args.executor != "process":
        raise SystemExit(
            "error: --workers only applies to --executor process"
        )
    executor_kwargs = (
        {"max_workers": args.workers} if args.executor == "process" else {}
    )
    with get_executor(args.executor, **executor_kwargs) as executor:
        aggregates = compare_methods(config, include_original=True, executor=executor)
    output = methods_table(
        aggregates,
        title=(
            f"{args.dataset} / {args.scenario} — budget {args.budget:.0f}, "
            f"lambda {args.lam}, {args.trials} trial(s)"
        ),
        method_order=["original", *args.methods],
    )
    if args.show_allocations:
        sliced, _ = prepare_instance(config, seed=args.seed)
        output += "\n\n" + allocations_table(
            {m: aggregates[m] for m in args.methods},
            slice_names=sliced.names,
            title="Mean examples acquired per slice",
        )
    return output


def run_strategies(args: argparse.Namespace) -> str:
    """The ``strategies`` subcommand: list the acquisition-strategy registry."""
    rows = []
    for name, description in strategy_descriptions().items():
        strategy = get_strategy(name)
        kind = "iterative" if strategy.is_iterative else "one-shot"
        uses_lam = "yes" if strategy.uses_lam else "no"
        rows.append([name, kind, uses_lam, description])
    return format_table(
        headers=["strategy", "kind", "uses lambda", "description"],
        rows=rows,
        title="Registered acquisition strategies",
    )


def run_sources(args: argparse.Namespace) -> str:
    """The ``sources`` subcommand: list the data-source provider registry."""
    rows = [
        [name, description]
        for name, description in source_descriptions().items()
    ]
    return format_table(
        headers=["source", "description"],
        rows=rows,
        title="Registered data-source providers",
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "curves":
        print(run_curves(args))
    elif args.command == "plan":
        print(run_plan(args))
    elif args.command == "run":
        print(run_run(args))
    elif args.command == "compare":
        print(run_compare(args))
    elif args.command == "strategies":
        print(run_strategies(args))
    elif args.command == "sources":
        print(run_sources(args))
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
