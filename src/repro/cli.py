"""Command-line interface for the Slice Tuner reproduction.

Thirteen subcommands cover the common workflows without writing any Python:

* ``curves`` — estimate and print the per-slice learning curves of a dataset.
* ``plan`` — print the One-shot acquisition plan for a budget (no data is
  acquired), the "concrete action items" of the paper.
* ``discover`` — run a registered slice-discovery method once over a fresh
  instance (train a probe model, fit the method, print the discovered
  partition and its content fingerprint); ``discover --list`` enumerates
  the registered methods.
* ``run`` — execute one acquisition strategy end to end against a chosen
  acquisition setup (``--source generator|pool|mixed|flaky|crowdsourcing``)
  and print the per-fulfillment delivery log plus the engine cache
  statistics; ``--discover <method> --reslice-every N`` re-runs slice
  discovery every N iterations mid-run; ``run --resume <campaign-id>``
  instead continues a stored campaign from its latest snapshot.
* ``compare`` — run several acquisition strategies over independently seeded
  trials and print the Table-2/6-style comparison.  ``--methods`` accepts
  any name in the strategy registry, including the ``bandit`` comparator
  and user registrations.
* ``campaign`` — durable, resumable runs persisted to a SQLite store:
  ``campaign start`` (one spec from flags, or ``--suite`` for the builtin
  concurrent multi-campaign workload), ``campaign resume <id>`` (or
  ``--all``) continuing after a pause or crash, ``campaign list``, and
  ``campaign show <id>`` replaying a campaign's event log.
* ``serve`` — the tuner service daemon: a ``ThreadingHTTPServer`` JSON API
  over one shared campaign scheduler + SQLite store, streaming live events
  over SSE; SIGTERM/SIGINT drain gracefully (checkpoint + pause every
  running campaign so a restarted daemon resumes byte-identically).
* ``remote`` — thin clients for a running daemon: ``submit``, ``list``,
  ``show``, ``tail`` (live event stream), ``result``, ``wait``, ``pause``,
  ``resume``, ``stats``.
* ``cache`` — inspect and maintain the persistent shared result/curve cache
  (``stats``, ``clear``, ``gc --max-mb``).  ``run``, ``campaign``, and
  ``serve`` all accept ``--cache-dir`` (or the ``REPRO_CACHE_DIR``
  environment variable) to share one content-addressed SQLite cache across
  processes and restarts: a training repeated anywhere with identical data,
  configuration, and seed is served from disk instead of re-run.
* ``telemetry`` — inspect a recorded trace directory: ``spans`` (the raw
  span log), ``metrics`` (the merged counter/gauge/histogram snapshot),
  and ``summary`` (per-span-name timing rollup).  ``run``, ``campaign``,
  and ``serve`` all accept ``--trace-out DIR`` (or the ``REPRO_TRACE_DIR``
  environment variable) to switch tracing on: spans stream to
  ``DIR/spans.jsonl`` and the final metrics snapshot lands in
  ``DIR/metrics.json`` on exit.  Tracing never changes results — traced
  and untraced runs are byte-identical.
* ``report`` — analytics reports over a campaign store's event log
  (``summary``, ``slices``, ``fulfillment``, ``fairness``, ``cache``,
  ``telemetry``):
  SQL views with window functions, materialized into a separate
  ``<store>.analytics`` database refreshed incrementally by event-sequence
  cursor.  ``--verify`` cross-checks every view row-for-row against a pure
  Python reference; ``--json`` emits the same ``repro.report/1`` payload
  the daemon serves at ``/reports/summary`` and ``/campaigns/<id>/report``.
* ``strategies`` — list every registered acquisition strategy.
* ``sources`` — list every registered data-source provider.

Every subcommand accepts ``--quiet`` (print only essential results) and the
process exits with code 0 on success, 2 on configuration/usage errors (the
same code argparse uses), and a raised traceback only for genuine bugs.
``run``, ``campaign``, ``report``, ``cache``, ``telemetry``,
``strategies``, ``sources``,
and the ``remote`` commands also accept ``--json`` for machine-readable
output: one JSON object on stdout carrying a ``schema`` tag (e.g.
``repro.run/1``) that stays stable across releases — the README documents
the full tag inventory.

Examples::

    python -m repro.cli strategies
    python -m repro.cli discover --method kmeans --dataset adult_like
    python -m repro.cli run --dataset adult_like --scenario exponential \
        --method conservative --discover kmeans --reslice-every 2
    python -m repro.cli curves --dataset fashion_like --initial-size 150
    python -m repro.cli run --dataset fashion_like --scenario mixed_sources \
        --source mixed --method moderate --budget 800
    python -m repro.cli campaign start --suite --store campaigns.sqlite
    python -m repro.cli campaign list --store campaigns.sqlite --json
    python -m repro.cli campaign resume --all --store campaigns.sqlite
    python -m repro.cli serve --store campaigns.sqlite --port 8731
    python -m repro.cli remote submit --name nightly --budget 500 \
        --url http://127.0.0.1:8731 --wait
    python -m repro.cli remote tail nightly-0123456789 --url http://127.0.0.1:8731
    python -m repro.cli compare --dataset mixed_like --budget 2000 \
        --methods uniform water_filling moderate bandit --trials 2
    python -m repro.cli run --dataset adult_like --budget 500 --trace-out traces/
    python -m repro.cli telemetry summary --trace-dir traces/ --json
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from typing import Callable, Sequence

from repro.acquisition.providers import source_descriptions
from repro.analytics import Analytics, assert_consistent
from repro.campaigns import (
    RESUMABLE,
    Campaign,
    CampaignScheduler,
    CampaignSpec,
    SqliteStore,
    campaign_progress,
    campaign_summary,
    replay_events,
)
from repro.core.registry import (
    available_strategies,
    get_strategy,
    is_registered,
    strategy_descriptions,
)
from repro.datasets.registry import available_tasks
from repro.engine.cache import InMemoryResultCache, ResultCache
from repro.engine.diskcache import SqliteResultCache, default_cache_path
from repro.engine.executor import SerialExecutor, available_executors, get_executor
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import (
    allocations_table,
    cache_stats_table,
    engine_cache_stats,
    methods_table,
    report_tables,
    server_stats_table,
    server_status_line,
)
from repro.experiments.runner import (
    SOURCE_KINDS,
    campaign_suite,
    compare_methods,
    discovery_for,
    prepare_instance,
    prepare_named_instance,
)
from repro.experiments.scenarios import list_scenarios
from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.slices.discovery import (
    available_discovery_methods,
    discovery_method_descriptions,
    get_discovery_method,
    is_discovery_method,
)
from repro.serve import TunerClient, TunerServer, TunerService
from repro import telemetry
from repro.monitor import (
    HealthEvaluator,
    alert_history,
    available_rules,
    get_rule,
    watchdog,
)
from repro.utils.exceptions import ConfigurationError, ReproError
from repro.utils.tables import format_table

#: Default campaign store location for the ``campaign`` family of commands.
DEFAULT_STORE = "campaigns.sqlite"

#: Default bind/connect endpoint for ``serve`` and the ``remote`` commands.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8731
DEFAULT_URL = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"


def _json_output(schema: str, payload: dict) -> str:
    """Render one machine-readable result object (the ``--json`` mode).

    Every payload carries a ``schema`` tag (``repro.<command>/<version>``)
    so downstream tooling can detect breaking changes; keys are sorted for
    diff-stable output.
    """
    return json.dumps({"schema": schema, **payload}, indent=2, sort_keys=True)


def _resolve_cache_dir(args: argparse.Namespace) -> str | None:
    """The persistent cache directory: ``--cache-dir`` flag, then env var.

    ``REPRO_CACHE_DIR`` lets supervisors and CI point every invocation at
    one shared cache without touching each command line; ``None`` means
    per-process in-memory caching (the previous behavior).
    """
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    return cache_dir


def _build_result_cache(args: argparse.Namespace) -> ResultCache:
    """The result cache a subcommand should use.

    With a cache directory configured this is a process-shared, restart-
    surviving :class:`~repro.engine.diskcache.SqliteResultCache`; without
    one, the classic per-process :class:`InMemoryResultCache`.
    """
    cache_dir = _resolve_cache_dir(args)
    if cache_dir is None:
        return InMemoryResultCache()
    os.makedirs(cache_dir, exist_ok=True)
    return SqliteResultCache(default_cache_path(cache_dir))


def _require_disk_cache(args: argparse.Namespace) -> SqliteResultCache:
    """The persistent cache the ``cache`` subcommands operate on."""
    cache_dir = _resolve_cache_dir(args)
    if cache_dir is None:
        raise ConfigurationError(
            "the cache subcommand needs a persistent cache: pass --cache-dir "
            "or set REPRO_CACHE_DIR"
        )
    os.makedirs(cache_dir, exist_ok=True)
    return SqliteResultCache(default_cache_path(cache_dir))


def _resolve_trace_dir(args: argparse.Namespace) -> str | None:
    """The trace output directory: ``--trace-out`` flag, then env var.

    Only subcommands that declare ``--trace-out`` (run, campaign, serve)
    resolve the ``REPRO_TRACE_DIR`` fallback — inspection commands must
    never install a live tracer over the directory they are reading.
    ``None`` (the default) keeps the zero-cost no-op tracer installed.
    """
    if not hasattr(args, "trace_out"):
        return None
    trace_dir = args.trace_out
    if trace_dir is None:
        trace_dir = os.environ.get("REPRO_TRACE_DIR") or None
    return trace_dir


def _require_trace_dir(args: argparse.Namespace) -> str:
    """The trace directory a ``telemetry`` inspection subcommand reads."""
    trace_dir = getattr(args, "trace_dir", None)
    if trace_dir is None:
        trace_dir = os.environ.get("REPRO_TRACE_DIR") or None
    if trace_dir is None:
        raise ConfigurationError(
            "the telemetry subcommand needs a trace directory: pass "
            "--trace-dir or set REPRO_TRACE_DIR (record one with "
            "`run --trace-out DIR`)"
        )
    return trace_dir


def _registered_method(name: str) -> str:
    """argparse type for ``--methods``: any registered strategy name."""
    if not is_registered(name):
        raise argparse.ArgumentTypeError(
            f"unknown strategy {name!r}; run `python -m repro.cli strategies` "
            f"to list registered strategies ({', '.join(available_strategies())})"
        )
    return name.strip().lower()


def _registered_discovery(name: str) -> str:
    """argparse type for ``--discover``: any registered discovery method."""
    if not is_discovery_method(name):
        raise argparse.ArgumentTypeError(
            f"unknown discovery method {name!r}; run `python -m repro.cli "
            f"discover --list` to enumerate them "
            f"({', '.join(available_discovery_methods())})"
        )
    return name.strip().lower()


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Slice Tuner: selective data acquisition (SIGMOD 2021 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_quiet(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--quiet",
            action="store_true",
            help="print only essential results (ids, status, final summary)",
        )

    def add_json(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--json",
            action="store_true",
            dest="json_output",
            help="print one machine-readable JSON object instead of tables "
            "(stable schema, see the module docs)",
        )

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dataset",
            default="fashion_like",
            choices=available_tasks(),
            help="synthetic dataset to use",
        )
        sub.add_argument(
            "--scenario",
            default="basic",
            choices=list_scenarios(),
            help="initial-size scenario",
        )
        sub.add_argument("--initial-size", type=int, default=150, help="base initial size per slice")
        sub.add_argument("--validation-size", type=int, default=150, help="validation examples per slice")
        sub.add_argument("--epochs", type=int, default=30, help="training epochs per model fit")
        sub.add_argument("--curve-points", type=int, default=5, help="subset sizes measured per learning curve")
        sub.add_argument("--seed", type=int, default=0, help="base random seed")
        add_quiet(sub)

    def add_cache_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--cache-dir",
            default=None,
            dest="cache_dir",
            help="directory holding the persistent shared result/curve cache "
            "(sqlite, shared across processes and restarts); defaults to "
            "the REPRO_CACHE_DIR environment variable, else in-memory",
        )

    def add_trace_out(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--trace-out",
            default=None,
            dest="trace_out",
            metavar="DIR",
            help="record telemetry: stream spans to DIR/spans.jsonl and "
            "write the metrics snapshot to DIR/metrics.json on exit "
            "(defaults to the REPRO_TRACE_DIR environment variable, else "
            "tracing stays off; results are identical either way)",
        )

    def add_discovery(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--discover",
            default=None,
            type=_registered_discovery,
            metavar="METHOD",
            help="re-run this registered slice-discovery method mid-run and "
            "swap onto the discovered slices (see the discover subcommand)",
        )
        sub.add_argument(
            "--reslice-every",
            type=int,
            default=2,
            help="iteration cadence for re-running discovery "
            "(only with --discover; default: 2)",
        )

    curves = subparsers.add_parser("curves", help="estimate per-slice learning curves")
    add_common(curves)

    discover = subparsers.add_parser(
        "discover",
        help="run a slice-discovery method once and print the partition",
    )
    add_common(discover)
    discover.add_argument(
        "--method",
        default="kmeans",
        type=_registered_discovery,
        metavar="METHOD",
        help="registered discovery method to fit (default: kmeans)",
    )
    discover.add_argument(
        "--list",
        action="store_true",
        dest="list_methods",
        help="list the registered discovery methods and exit",
    )
    add_json(discover)

    plan = subparsers.add_parser("plan", help="print the One-shot acquisition plan for a budget")
    add_common(plan)
    plan.add_argument("--budget", type=float, default=1000.0, help="acquisition budget B")
    plan.add_argument("--lam", type=float, default=1.0, help="loss/unfairness trade-off weight")

    run = subparsers.add_parser(
        "run",
        help="run one strategy end to end and print the fulfillment log",
    )
    add_common(run)
    run.add_argument("--budget", type=float, default=1000.0, help="acquisition budget B")
    run.add_argument("--lam", type=float, default=1.0, help="loss/unfairness trade-off weight")
    run.add_argument(
        "--method",
        default="moderate",
        type=_registered_method,
        metavar="STRATEGY",
        help="registered strategy name to run (see the strategies subcommand)",
    )
    run.add_argument(
        "--source",
        default=None,
        choices=SOURCE_KINDS,
        help="acquisition setup to route requests across (defaults to the "
        "scenario's own source kind)",
    )
    run.add_argument(
        "--rounds",
        type=int,
        default=1,
        help="routing rounds per acquisition request (re-ask throttled or "
        "partially-delivering providers up to this many times per batch)",
    )
    add_discovery(run)
    run.add_argument(
        "--evaluate",
        action="store_true",
        help="also train and evaluate the model before and after acquisition",
    )
    run.add_argument(
        "--resume",
        metavar="CAMPAIGN_ID",
        default=None,
        help="instead of a fresh run, resume the stored campaign from its "
        "latest snapshot (shorthand for `campaign resume CAMPAIGN_ID`)",
    )
    run.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help=f"campaign store used by --resume (default: {DEFAULT_STORE})",
    )
    run.add_argument(
        "--executor",
        default="serial",
        choices=available_executors(),
        help="execution backend for the trainings (results are identical "
        "for every backend)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --executor process (default: CPU count)",
    )
    add_cache_dir(run)
    add_trace_out(run)
    add_json(run)

    compare = subparsers.add_parser("compare", help="compare acquisition methods over trials")
    add_common(compare)
    compare.add_argument("--budget", type=float, default=1000.0, help="acquisition budget B")
    compare.add_argument("--lam", type=float, default=1.0, help="loss/unfairness trade-off weight")
    compare.add_argument(
        "--methods",
        nargs="+",
        default=["uniform", "water_filling", "moderate"],
        type=_registered_method,
        metavar="STRATEGY",
        help="registered strategy names to compare (see the strategies subcommand)",
    )
    compare.add_argument("--trials", type=int, default=2, help="independently seeded repetitions")
    compare.add_argument(
        "--show-allocations",
        action="store_true",
        help="also print the mean per-slice acquisitions (Table 3 style)",
    )
    compare.add_argument(
        "--executor",
        default="serial",
        choices=available_executors(),
        help="execution backend for the (method, trial) grid; results are "
        "identical for every backend",
    )
    compare.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --executor process (default: CPU count)",
    )

    campaign = subparsers.add_parser(
        "campaign",
        help="durable campaign runs: start, resume, list, show",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def add_store(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store",
            default=DEFAULT_STORE,
            help=f"SQLite campaign store path (default: {DEFAULT_STORE})",
        )
        add_cache_dir(sub)
        add_quiet(sub)

    c_start = campaign_sub.add_parser(
        "start",
        help="start a new campaign (or the builtin --suite), persisting "
        "every iteration",
    )
    add_store(c_start)
    add_trace_out(c_start)
    c_start.add_argument("--name", default=None, help="campaign name (required unless --suite)")
    c_start.add_argument("--dataset", default="adult_like", choices=available_tasks())
    c_start.add_argument("--scenario", default="basic", choices=list_scenarios())
    c_start.add_argument(
        "--source",
        default=None,
        choices=SOURCE_KINDS,
        help="acquisition setup (defaults to the scenario's own source kind)",
    )
    c_start.add_argument("--method", default="moderate", type=_registered_method, metavar="STRATEGY")
    add_discovery(c_start)
    c_start.add_argument("--budget", type=float, default=500.0)
    c_start.add_argument("--lam", type=float, default=1.0)
    c_start.add_argument("--seed", type=int, default=0)
    c_start.add_argument("--initial-size", type=int, default=60, help="base initial size per slice")
    c_start.add_argument("--validation-size", type=int, default=60)
    c_start.add_argument("--epochs", type=int, default=10)
    c_start.add_argument("--curve-points", type=int, default=3)
    c_start.add_argument("--priority", type=int, default=0, help="scheduler lane (higher runs first)")
    c_start.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="snapshot cadence in iterations",
    )
    c_start.add_argument(
        "--evaluate",
        action="store_true",
        help="attach before/after evaluation reports to the result",
    )
    c_start.add_argument(
        "--max-steps",
        type=int,
        default=None,
        help="pause (checkpointed) after this many iterations instead of "
        "running to completion",
    )
    c_start.add_argument(
        "--suite",
        action="store_true",
        help="run the builtin campaign_suite: 3 heterogeneous campaigns "
        "multiplexed over one shared engine executor",
    )

    c_resume = campaign_sub.add_parser(
        "resume", help="resume stored campaigns after a pause or crash"
    )
    add_store(c_resume)
    add_trace_out(c_resume)
    c_resume.add_argument(
        "campaign_id",
        nargs="?",
        default=None,
        help="campaign id to resume (omit with --all)",
    )
    c_resume.add_argument(
        "--all",
        action="store_true",
        dest="resume_all",
        help="resume every unfinished campaign in the store, multiplexed",
    )
    add_json(c_resume)

    c_list = campaign_sub.add_parser("list", help="list every stored campaign")
    add_store(c_list)
    add_json(c_list)

    c_show = campaign_sub.add_parser(
        "show", help="replay one campaign's event log into a progress report"
    )
    add_store(c_show)
    add_json(c_show)
    c_show.add_argument("campaign_id", help="campaign id to show")

    serve = subparsers.add_parser(
        "serve",
        help="run the tuner service daemon (HTTP campaign API + SSE streams)",
    )
    serve.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help=f"SQLite campaign store path (default: {DEFAULT_STORE})",
    )
    serve.add_argument("--host", default=DEFAULT_HOST, help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"bind port; 0 picks a free one (default: {DEFAULT_PORT})",
    )
    serve.add_argument(
        "--resume-all",
        action="store_true",
        dest="resume_all",
        help="re-activate every unfinished stored campaign on startup",
    )
    add_cache_dir(serve)
    add_trace_out(serve)
    add_quiet(serve)

    cache = subparsers.add_parser(
        "cache",
        help="inspect and maintain the persistent shared result/curve cache",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="tiered hit/miss/size statistics of the shared cache"
    )
    add_cache_dir(cache_stats)
    add_quiet(cache_stats)
    add_json(cache_stats)
    cache_clear = cache_sub.add_parser(
        "clear", help="drop every cached result and curve (keeps statistics)"
    )
    add_cache_dir(cache_clear)
    add_quiet(cache_clear)
    add_json(cache_clear)
    cache_gc = cache_sub.add_parser(
        "gc",
        help="evict least-recently-accessed entries until the cache fits",
    )
    add_cache_dir(cache_gc)
    add_quiet(cache_gc)
    add_json(cache_gc)
    cache_gc.add_argument(
        "--max-mb",
        type=float,
        required=True,
        dest="max_mb",
        help="target payload size in megabytes (LRU eviction by last access)",
    )

    telem = subparsers.add_parser(
        "telemetry",
        help="inspect a recorded trace directory: spans, metrics, summary",
    )
    telemetry_sub = telem.add_subparsers(dest="telemetry_command", required=True)

    def add_trace_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--trace-dir",
            default=None,
            dest="trace_dir",
            metavar="DIR",
            help="trace directory to read (defaults to the REPRO_TRACE_DIR "
            "environment variable)",
        )
        add_quiet(sub)
        add_json(sub)

    t_spans = telemetry_sub.add_parser(
        "spans", help="the recorded span log (newest last)"
    )
    add_trace_dir(t_spans)
    t_spans.add_argument(
        "--name",
        default=None,
        dest="span_name",
        help="only spans with this name (e.g. session.iteration)",
    )
    t_spans.add_argument(
        "--limit",
        type=int,
        default=0,
        help="print only the newest N spans (0 = all)",
    )
    t_metrics = telemetry_sub.add_parser(
        "metrics", help="the merged counter/gauge/histogram snapshot"
    )
    add_trace_dir(t_metrics)
    t_summary = telemetry_sub.add_parser(
        "summary", help="per-span-name timing rollup (count/mean/max/errors)"
    )
    add_trace_dir(t_summary)

    report = subparsers.add_parser(
        "report",
        help="analytics reports: SQL views over the campaign event log",
    )
    report.add_argument(
        "report_kind",
        choices=(
            "summary", "slices", "fulfillment", "fairness", "cache",
            "telemetry", "alerts",
        ),
        help="which report to render (each is one or two analytics views)",
    )
    add_store(report)
    report.add_argument(
        "--campaign",
        default=None,
        dest="campaign_id",
        help="restrict the report to one campaign id (not valid for fairness)",
    )
    report.add_argument(
        "--analytics",
        default=None,
        dest="analytics_path",
        help="analytics database path (default: <store>.analytics)",
    )
    report.add_argument(
        "--rebuild",
        action="store_true",
        help="rebuild the analytics mirror from scratch instead of the "
        "incremental cursor refresh (the two are byte-identical; this "
        "exists to prove it and to recover a corrupted mirror)",
    )
    report.add_argument(
        "--verify",
        action="store_true",
        help="cross-check every SQL view row-for-row against the pure-Python "
        "reference before reporting (exit 2 on any mismatch)",
    )
    add_json(report)

    remote = subparsers.add_parser(
        "remote",
        help="drive a running tuner service daemon over HTTP",
    )
    remote_sub = remote.add_subparsers(dest="remote_command", required=True)

    def add_url(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--url",
            default=DEFAULT_URL,
            help=f"daemon base URL (default: {DEFAULT_URL})",
        )
        sub.add_argument(
            "--timeout",
            type=float,
            default=300.0,
            help="overall wait/request timeout in seconds",
        )
        add_quiet(sub)
        add_json(sub)

    r_submit = remote_sub.add_parser(
        "submit", help="submit a campaign spec to the daemon"
    )
    add_url(r_submit)
    r_submit.add_argument("--name", required=True, help="campaign name")
    r_submit.add_argument("--dataset", default="adult_like", choices=available_tasks())
    r_submit.add_argument("--scenario", default="basic", choices=list_scenarios())
    r_submit.add_argument("--source", default=None, choices=SOURCE_KINDS)
    r_submit.add_argument(
        "--method", default="moderate", type=_registered_method, metavar="STRATEGY"
    )
    add_discovery(r_submit)
    r_submit.add_argument("--budget", type=float, default=500.0)
    r_submit.add_argument("--lam", type=float, default=1.0)
    r_submit.add_argument("--seed", type=int, default=0)
    r_submit.add_argument("--initial-size", type=int, default=60)
    r_submit.add_argument("--validation-size", type=int, default=60)
    r_submit.add_argument("--epochs", type=int, default=10)
    r_submit.add_argument("--curve-points", type=int, default=3)
    r_submit.add_argument("--priority", type=int, default=0)
    r_submit.add_argument("--checkpoint-every", type=int, default=1)
    r_submit.add_argument("--evaluate", action="store_true")
    r_submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the campaign completes and print its summary",
    )

    r_list = remote_sub.add_parser("list", help="list the daemon's campaigns")
    add_url(r_list)

    r_show = remote_sub.add_parser(
        "show", help="one campaign's progress plus the daemon's health table"
    )
    add_url(r_show)
    r_show.add_argument("campaign_id")

    r_tail = remote_sub.add_parser(
        "tail", help="stream a campaign's events live (SSE)"
    )
    add_url(r_tail)
    r_tail.add_argument("campaign_id")
    r_tail.add_argument(
        "--after",
        type=int,
        default=0,
        help="resume cursor: only stream events with seq > AFTER",
    )
    r_tail.add_argument(
        "--reconnect",
        type=int,
        default=0,
        help="retry dropped connections this many times (resuming from "
        "the cursor)",
    )

    r_result = remote_sub.add_parser(
        "result", help="fetch a completed campaign's TuningResult"
    )
    add_url(r_result)
    r_result.add_argument("campaign_id")

    r_wait = remote_sub.add_parser(
        "wait", help="block until a campaign completes"
    )
    add_url(r_wait)
    r_wait.add_argument("campaign_id")

    r_pause = remote_sub.add_parser(
        "pause", help="checkpoint + pause a running campaign"
    )
    add_url(r_pause)
    r_pause.add_argument("campaign_id")

    r_resume = remote_sub.add_parser(
        "resume", help="re-activate paused/stored campaigns"
    )
    add_url(r_resume)
    r_resume.add_argument("campaign_id", nargs="?", default=None)
    r_resume.add_argument(
        "--all", action="store_true", dest="resume_all",
        help="re-activate every unfinished stored campaign",
    )

    r_stats = remote_sub.add_parser("stats", help="the daemon's health table")
    add_url(r_stats)

    monitor = subparsers.add_parser(
        "monitor",
        help="health & alerting: SLO rules, alert history, live dashboard",
    )
    monitor_sub = monitor.add_subparsers(dest="monitor_command", required=True)

    m_rules = monitor_sub.add_parser(
        "rules", help="list every registered alert rule and its thresholds"
    )
    add_quiet(m_rules)
    add_json(m_rules)

    m_alerts = monitor_sub.add_parser(
        "alerts", help="the durable alert history replayed from a store"
    )
    add_store(m_alerts)
    add_json(m_alerts)
    m_alerts.add_argument(
        "--campaign",
        default=None,
        dest="campaign_id",
        help="restrict to one campaign id",
    )

    m_status = monitor_sub.add_parser(
        "status",
        help="per-component health verdict folded from a store's alerts",
    )
    add_store(m_status)
    add_json(m_status)

    m_watch = monitor_sub.add_parser(
        "watch",
        help="live dashboard: poll a daemon's /health/deep and /alerts",
    )
    add_url(m_watch)
    m_watch.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default: 2.0)",
    )
    m_watch.add_argument(
        "--max-seconds",
        type=float,
        default=0.0,
        help="stop after this many seconds (0 = run until interrupted)",
    )
    m_watch.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit",
    )

    m_bench = monitor_sub.add_parser(
        "bench",
        help="benchmark-regression watchdog: fresh results vs committed "
        "BENCH_*.json references",
    )
    m_bench.add_argument(
        "--fresh",
        required=True,
        help="JSON file of freshly measured benchmark results "
        "({benchmark: {metric: value}})",
    )
    m_bench.add_argument(
        "--benchmark",
        default=None,
        help="restrict the comparison to one benchmark name",
    )
    m_bench.add_argument(
        "--reference-dir",
        default="benchmarks",
        help="directory holding the committed BENCH_*.json references "
        "(default: benchmarks)",
    )
    add_quiet(m_bench)
    add_json(m_bench)

    strategies = subparsers.add_parser(
        "strategies", help="list every registered acquisition strategy"
    )
    add_quiet(strategies)
    add_json(strategies)
    sources = subparsers.add_parser(
        "sources", help="list every registered data-source provider"
    )
    add_quiet(sources)
    add_json(sources)
    return parser


def _experiment_config(
    args: argparse.Namespace,
    methods: tuple[str, ...],
    budget: float,
    lam: float,
    trials: int,
    extra: dict | None = None,
) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=args.dataset,
        scenario=args.scenario,
        budget=budget,
        methods=methods,
        lam=lam,
        trials=trials,
        validation_size=args.validation_size,
        curve_points=args.curve_points,
        curve_repeats=1,
        epochs=args.epochs,
        seed=args.seed,
        extra={"base_size": args.initial_size, **(extra or {})},
    )


def _build_tuner(args: argparse.Namespace, lam: float = 1.0) -> SliceTuner:
    config = _experiment_config(args, methods=("moderate",), budget=1.0, lam=lam, trials=1)
    sliced, source = prepare_instance(config, seed=args.seed)
    return SliceTuner(
        sliced,
        source,
        trainer_config=config.training_config(),
        curve_config=config.curve_config(),
        config=SliceTunerConfig(lam=lam),
        random_state=args.seed + 1,
    )


def run_curves(args: argparse.Namespace) -> str:
    """The ``curves`` subcommand: fit and render per-slice learning curves."""
    tuner = _build_tuner(args)
    curves = tuner.estimate_curves()
    rows = [
        [name, f"{curve.b:.3f}", f"{curve.a:.3f}", f"{curve.reliability:.2f}", curve.describe()]
        for name, curve in curves.items()
    ]
    if args.quiet:
        return "\n".join(
            f"{name} b={curve.b:.3f} a={curve.a:.3f}" for name, curve in curves.items()
        )
    return format_table(
        headers=["slice", "b", "a", "reliability", "curve"],
        rows=rows,
        title=f"Learning curves for {args.dataset} ({args.scenario} scenario)",
    )


def run_plan(args: argparse.Namespace) -> str:
    """The ``plan`` subcommand: print the One-shot plan without acquiring."""
    tuner = _build_tuner(args, lam=args.lam)
    plan = tuner.plan(budget=args.budget, lam=args.lam)
    if args.quiet:
        return "\n".join(f"{name} {count}" for name, count in plan.counts.items())
    return plan.to_text()


def run_discover(args: argparse.Namespace) -> str:
    """The ``discover`` subcommand: fit one discovery method, print the partition."""
    if args.list_methods:
        descriptions = discovery_method_descriptions()
        if args.quiet:
            return "\n".join(available_discovery_methods())
        return format_table(
            headers=["method", "description"],
            rows=[[name, descriptions[name]] for name in available_discovery_methods()],
            title="Registered slice-discovery methods",
        )

    from repro.curves.estimator import default_model_factory
    from repro.engine.factories import describe_factory
    from repro.engine.job import TrainingJob, stable_seed

    config = _experiment_config(args, methods=("moderate",), budget=1.0, lam=1.0, trials=1)
    sliced, _ = prepare_named_instance(config, seed=args.seed)
    pool = sliced.combined_train()
    job = TrainingJob(
        train=pool,
        n_classes=sliced.n_classes,
        seed=stable_seed("slice-discovery-model", 1),
        trainer_config=config.training_config(),
        model_factory=default_model_factory,
        factory_name=describe_factory(default_model_factory),
        tag=("discover", 1),
    )
    model = SerialExecutor(cache=InMemoryResultCache()).submit([job])[0].model
    method = get_discovery_method(
        args.method, seed=stable_seed("slice-discovery", args.method, 1)
    )
    method.fit(model, pool)
    discovered = method.transform(sliced)

    if args.json_output:
        return _json_output(
            "repro.discover/1",
            {
                "config": {
                    "dataset": args.dataset,
                    "scenario": args.scenario,
                    "method": args.method,
                    "seed": args.seed,
                },
                "fingerprint": method.fingerprint(),
                "slices": [
                    {
                        "name": name,
                        "train": len(discovered[name].train),
                        "validation": len(discovered[name].validation),
                        "cost": discovered[name].cost,
                    }
                    for name in discovered.names
                ],
            },
        )
    if args.quiet:
        return "\n".join(
            f"{name} {len(discovered[name].train)}" for name in discovered.names
        ) + f"\nfingerprint {method.fingerprint()}"
    rows = [
        [
            name,
            len(discovered[name].train),
            len(discovered[name].validation),
            f"{discovered[name].cost:.2f}",
        ]
        for name in discovered.names
    ]
    output = format_table(
        headers=["slice", "train", "validation", "cost"],
        rows=rows,
        title=(
            f"Discovered partition — {args.method} on {args.dataset} "
            f"({args.scenario} scenario, {len(discovered.names)} slices)"
        ),
    )
    output += f"\n\nfingerprint: {method.fingerprint()}"
    return output


def run_run(args: argparse.Namespace) -> str:
    """The ``run`` subcommand: one strategy end to end + the fulfillment log."""
    if args.resume is not None:
        return _resume_campaigns(args, [args.resume])
    extra = {} if args.source is None else {"source": args.source}
    if args.discover is not None:
        extra["discover"] = args.discover
        extra["reslice_every"] = args.reslice_every
    config = _experiment_config(
        args,
        methods=(args.method,),
        budget=args.budget,
        lam=args.lam,
        trials=1,
        extra=extra,
    )
    # Scenario defaults (e.g. dynamic_slices) apply unless --discover is given.
    discover, reslice_every = discovery_for(config)
    sliced, sources = prepare_named_instance(config, seed=args.seed)
    if args.workers is not None and args.executor != "process":
        raise ConfigurationError("--workers only applies to --executor process")
    executor_kwargs = (
        {"max_workers": args.workers} if args.executor == "process" else {}
    )
    result_cache = _build_result_cache(args)
    try:
        with get_executor(
            args.executor, cache=result_cache, **executor_kwargs
        ) as executor:
            tuner = SliceTuner(
                sliced,
                trainer_config=config.training_config(),
                curve_config=config.curve_config(),
                config=SliceTunerConfig(
                    lam=args.lam,
                    acquisition_rounds=args.rounds,
                    discover=discover,
                    reslice_every=reslice_every if discover is not None else 0,
                ),
                random_state=args.seed + 1,
                sources=sources,
                executor=executor,
            )
            session = tuner.session()
            fulfillments = []
            session.add_hook("fulfillment", lambda f: fulfillments.append(f))
            reslices = []
            session.add_hook("reslice", lambda e: reslices.append(e))
            if args.evaluate:
                result = session.run(args.budget, strategy=args.method, lam=args.lam)
            else:
                for _ in session.stream(
                    args.budget, strategy=args.method, lam=args.lam
                ):
                    pass
                result = session.result()
        # Snapshot before closing: a disk-backed cache cannot answer stats
        # queries once its connection is released.
        cache_stats = engine_cache_stats(tuner)
        trainings_performed = tuner.estimator.trainings_performed
    finally:
        result_cache.close()

    if args.json_output:
        return _json_output(
            "repro.run/1",
            {
                "config": {
                    "dataset": args.dataset,
                    "scenario": args.scenario,
                    "source": args.source,
                    "method": args.method,
                    "budget": args.budget,
                    "lam": args.lam,
                    "seed": args.seed,
                    "rounds": args.rounds,
                    "discover": discover,
                    "reslice_every": reslice_every if discover is not None else 0,
                },
                "result": result.to_dict(),
                "fulfillments": [f.summary() for f in fulfillments],
                "reslices": [
                    {
                        "iteration": e.iteration,
                        "slice_generation": e.slice_generation,
                        "method": e.method,
                        "fingerprint": e.fingerprint,
                        "slice_names": list(e.slice_names),
                    }
                    for e in reslices
                ],
                "trainings_performed": trainings_performed,
                "cache": {
                    name: {
                        "requests": stats.requests,
                        "hits": stats.hits,
                        "misses": stats.misses,
                        "evictions": stats.evictions,
                    }
                    for name, stats in cache_stats.items()
                },
            },
        )
    if args.quiet:
        return (
            f"method={args.method} iterations={result.n_iterations} "
            f"spent={result.spent:.2f} acquired={sum(result.total_acquired.values())}"
        )
    rows = [
        [
            f.slice_name,
            f.request.count,
            f.delivered_count,
            f.shortfall,
            f.rounds,
            f.status,
            "+".join(f.provenance) or "-",
            f.request.tag,
        ]
        for f in fulfillments
    ]
    output = format_table(
        headers=[
            "slice", "requested", "delivered", "shortfall", "rounds",
            "status", "provenance", "tag",
        ],
        rows=rows,
        title=(
            f"Fulfillment log — providers: {', '.join(tuner.provider_order)} "
            f"({len(fulfillments)} fulfillments)"
        ),
    )
    if reslices:
        output += "\n\n" + "\n".join(
            f"reslice @ iteration {e.iteration}: generation "
            f"{e.slice_generation} ({e.method}) -> "
            f"{', '.join(e.slice_names)} [{e.fingerprint[:12]}]"
            for e in reslices
        )
    output += "\n\n" + result.acquisitions_table()
    output += "\n\n" + cache_stats_table(
        cache_stats,
        trainings_performed=trainings_performed,
    )
    if args.evaluate and result.final_report is not None:
        output += "\n\n" + result.final_report.to_text()
    return output


def run_compare(args: argparse.Namespace) -> str:
    """The ``compare`` subcommand: Table-2/6-style method comparison."""
    config = _experiment_config(
        args,
        methods=tuple(args.methods),
        budget=args.budget,
        lam=args.lam,
        trials=args.trials,
    )
    if args.workers is not None and args.executor != "process":
        raise ConfigurationError("--workers only applies to --executor process")
    executor_kwargs = (
        {"max_workers": args.workers} if args.executor == "process" else {}
    )
    with get_executor(args.executor, **executor_kwargs) as executor:
        aggregates = compare_methods(config, include_original=True, executor=executor)
    if args.quiet:
        return "\n".join(
            f"{method} loss={aggregate.loss_mean:.3f} "
            f"avg_eer={aggregate.avg_eer_mean:.3f}"
            for method, aggregate in aggregates.items()
        )
    output = methods_table(
        aggregates,
        title=(
            f"{args.dataset} / {args.scenario} — budget {args.budget:.0f}, "
            f"lambda {args.lam}, {args.trials} trial(s)"
        ),
        method_order=["original", *args.methods],
    )
    if args.show_allocations:
        sliced, _ = prepare_instance(config, seed=args.seed)
        output += "\n\n" + allocations_table(
            {m: aggregates[m] for m in args.methods},
            slice_names=sliced.names,
            title="Mean examples acquired per slice",
        )
    return output


# -- the campaign family -----------------------------------------------------------


def _kill_after_hook() -> Callable[..., None] | None:
    """Testing aid: kill this process after N persisted iterations.

    Controlled by the ``REPRO_CAMPAIGN_KILL_AFTER`` environment variable
    (``REPRO_CAMPAIGN_KILL_SIGNAL`` picks the signal, default ``KILL``);
    the CI campaign-smoke job and the crash/resume acceptance test use it
    to kill a suite at a deterministic mid-run point and prove that
    resuming reproduces the uninterrupted results byte-for-byte.  The kill
    fires *after* the iteration's event and snapshot were committed, which
    is exactly what an external ``kill -9`` races against.
    """
    kill_after = int(os.environ.get("REPRO_CAMPAIGN_KILL_AFTER", "0") or 0)
    if kill_after <= 0:
        return None
    signame = os.environ.get("REPRO_CAMPAIGN_KILL_SIGNAL", "KILL").upper()
    signum = getattr(signal, f"SIG{signame}")
    seen = {"n": 0}

    def hook(*_args: object) -> None:
        seen["n"] += 1
        if seen["n"] >= kill_after:
            os.kill(os.getpid(), signum)

    return hook


def _progress_printer(quiet: bool):
    def on_progress(tick) -> None:
        if quiet:
            return
        state = "done" if tick.done else f"iteration {tick.iteration}"
        print(
            f"[{tick.name}] {state} — spent {tick.spent:.0f}/{tick.budget:.0f} "
            f"(lane {tick.priority})"
        )

    return on_progress


def _combined_progress(quiet: bool):
    """Progress printer plus the optional deterministic-kill testing hook."""
    printer = _progress_printer(quiet)
    kill_hook = _kill_after_hook()

    def on_progress(tick) -> None:
        printer(tick)
        if kill_hook is not None:
            kill_hook(tick)

    return on_progress


def _suite_summary(results, executor, quiet: bool) -> str:
    """Render ``[(display name, TuningResult), ...]`` plus the shared cache."""
    lines = [
        f"{name}: iterations={result.n_iterations} spent={result.spent:.2f} "
        f"acquired={sum(result.total_acquired.values())}"
        for name, result in results
    ]
    if not quiet and executor.cache is not None:
        lines.append("")
        lines.append(
            cache_stats_table(
                {"results": executor.cache.stats},
                title="Shared engine cache across campaigns",
            )
        )
    return "\n".join(lines)


def run_campaign_start(args: argparse.Namespace) -> str:
    """``campaign start``: one campaign from flags, or the builtin suite."""
    with SqliteStore(args.store) as store:
        if args.suite:
            result_cache = _build_result_cache(args)
            try:
                executor = SerialExecutor(cache=result_cache)
                results = campaign_suite(
                    store=store,
                    executor=executor,
                    seed=args.seed,
                    on_progress=_combined_progress(args.quiet),
                )
                return _suite_summary(list(results.items()), executor, args.quiet)
            finally:
                result_cache.close()
        if not args.name:
            raise ConfigurationError(
                "campaign start needs --name (or --suite for the builtin workload)"
            )
        spec = CampaignSpec(
            name=args.name,
            dataset=args.dataset,
            scenario=args.scenario,
            source=args.source,
            method=args.method,
            budget=args.budget,
            lam=args.lam,
            seed=args.seed,
            base_size=args.initial_size,
            validation_size=args.validation_size,
            epochs=args.epochs,
            curve_points=args.curve_points,
            priority=args.priority,
            checkpoint_every=args.checkpoint_every,
            evaluate=args.evaluate,
            discover=args.discover,
            reslice_every=args.reslice_every if args.discover is not None else 0,
        )
        result_cache = _build_result_cache(args)
        try:
            campaign = Campaign.start(store, spec, result_cache=result_cache)
            if campaign.reused and campaign.is_done:
                result = campaign.result()
                return (
                    f"{campaign.campaign_id}: already completed (idempotent "
                    f"re-run) — iterations={result.n_iterations} "
                    f"spent={result.spent:.2f}"
                )
            if not args.quiet:
                campaign.add_iteration_hook(
                    lambda c, record: print(
                        f"[{c.spec.name}] iteration {record.iteration} — "
                        f"spent {c.spent:.0f}/{c.spec.budget:.0f}"
                    )
                )
            kill_hook = _kill_after_hook()
            if kill_hook is not None:
                campaign.add_iteration_hook(kill_hook)
            result = campaign.run(max_steps=args.max_steps)
            if result is None:
                return (
                    f"{campaign.campaign_id}: paused after --max-steps "
                    f"{args.max_steps} iteration(s); resume with "
                    f"`campaign resume {campaign.campaign_id} --store {args.store}`"
                )
            return _campaign_result_text(campaign, result, args.quiet)
        finally:
            result_cache.close()


def _campaign_result_text(campaign: Campaign, result, quiet: bool) -> str:
    essential = (
        f"{campaign.campaign_id}: completed — iterations={result.n_iterations} "
        f"spent={result.spent:.2f} acquired={sum(result.total_acquired.values())}"
    )
    if quiet:
        return essential
    output = essential + "\n\n" + result.acquisitions_table()
    if campaign.tuner is not None:
        output += "\n\n" + cache_stats_table(
            engine_cache_stats(campaign.tuner),
            trainings_performed=campaign.tuner.estimator.trainings_performed,
        )
    if result.final_report is not None:
        output += "\n\n" + result.final_report.to_text()
    return output


def _resume_campaigns(args: argparse.Namespace, campaign_ids: list[str]) -> str:
    with SqliteStore(args.store) as store:
        result_cache = _build_result_cache(args)
        try:
            scheduler = CampaignScheduler(
                store=store,
                result_cache=result_cache,
                on_progress=_combined_progress(args.quiet),
            )
            for campaign_id in campaign_ids:
                scheduler.add_existing(campaign_id)
            by_id = scheduler.run()
            if getattr(args, "json_output", False):
                return _json_output(
                    "repro.campaign.resume/1",
                    {
                        "store": args.store,
                        "results": {
                            campaign_id: result.to_dict()
                            for campaign_id, result in by_id.items()
                        },
                    },
                )
            # Display names can collide across campaigns; campaign ids
            # cannot, so every resumed campaign gets its own summary line.
            results = [
                (campaign.spec.name, by_id[campaign.campaign_id])
                for campaign in scheduler.campaigns
            ]
            return _suite_summary(results, scheduler.executor, args.quiet)
        finally:
            result_cache.close()


def run_campaign_resume(args: argparse.Namespace) -> str:
    """``campaign resume``: continue one campaign (or every unfinished one)."""
    if args.resume_all and args.campaign_id:
        raise ConfigurationError("pass either a campaign id or --all, not both")
    if args.resume_all:
        with SqliteStore(args.store) as store:
            pending = [
                record.campaign_id
                for record in store.list_campaigns()
                if record.status in RESUMABLE
            ]
        if not pending:
            return "nothing to resume: every stored campaign is completed"
        return _resume_campaigns(args, pending)
    if not args.campaign_id:
        raise ConfigurationError("campaign resume needs a campaign id (or --all)")
    return _resume_campaigns(args, [args.campaign_id])


def run_campaign_list(args: argparse.Namespace) -> str:
    """``campaign list``: one row per stored campaign."""
    with SqliteStore(args.store) as store:
        if args.json_output:
            # campaign_summary is the same serializer the daemon's
            # ``GET /campaigns`` uses, so local and remote tooling share
            # one parser.
            return _json_output(
                "repro.campaign.list/1",
                {
                    "store": args.store,
                    "campaigns": [
                        campaign_summary(store, record.campaign_id)
                        for record in store.list_campaigns()
                    ],
                },
            )
        records = store.list_campaigns()
        if not records:
            return f"no campaigns in {args.store}"
        rows = []
        for record in records:
            progress = campaign_progress(store, record.campaign_id)
            rows.append(
                [
                    record.campaign_id,
                    record.name,
                    record.status,
                    record.priority,
                    progress.iterations,
                    f"{progress.spent:.0f}/{progress.budget:.0f}",
                    progress.generations,
                ]
            )
    if args.quiet:
        return "\n".join(f"{row[0]} {row[2]}" for row in rows)
    return format_table(
        headers=["id", "name", "status", "lane", "iters", "spent/budget", "gens"],
        rows=rows,
        title=f"Campaigns in {args.store}",
    )


def run_campaign_show(args: argparse.Namespace) -> str:
    """``campaign show``: replay one campaign's event log."""
    with SqliteStore(args.store) as store:
        record = store.get_campaign(args.campaign_id)
        progress = campaign_progress(store, args.campaign_id)
        events = replay_events(store.events(args.campaign_id))
        # Same serializer as the daemon's ``GET /campaigns/<id>`` payload.
        summary = campaign_summary(store, args.campaign_id)
    if args.json_output:
        summary["spec"] = dict(record.spec)
        return _json_output(
            "repro.campaign.show/1",
            {
                "store": args.store,
                "campaign": summary,
                "events": [event.to_dict() for event in events],
            },
        )
    if args.quiet:
        return (
            f"{record.campaign_id} {record.status} iterations={progress.iterations} "
            f"spent={progress.spent:.2f}"
        )
    spec_lines = "\n".join(
        f"  {key} = {value}" for key, value in sorted(record.spec.items())
    )
    iteration_rows = [
        [
            event.iteration,
            event.generation,
            sum(event.payload.get("acquired", {}).values()),
            f"{event.payload.get('spent', 0.0):.1f}",
            f"{event.payload.get('imbalance_after', 0.0):.2f}",
        ]
        for event in events
        if event.kind == "iteration"
    ]
    output = (
        f"campaign {record.campaign_id} ({record.name})\n"
        f"status: {record.status} — lane {record.priority}, "
        f"{progress.generations} generation(s), "
        f"{progress.fulfillments} fulfillment(s)\n"
        f"spec:\n{spec_lines}\n\n"
    )
    output += format_table(
        headers=["iteration", "generation", "acquired", "spent", "imbalance"],
        rows=iteration_rows,
        title=(
            f"Replayed history — {progress.iterations} iteration(s), "
            f"spent {progress.spent:.2f}/{progress.budget:.0f}"
        ),
    )
    return output


def run_campaign(args: argparse.Namespace) -> str:
    """Dispatch for the ``campaign`` family of subcommands."""
    if args.campaign_command == "start":
        return run_campaign_start(args)
    if args.campaign_command == "resume":
        return run_campaign_resume(args)
    if args.campaign_command == "list":
        return run_campaign_list(args)
    if args.campaign_command == "show":
        return run_campaign_show(args)
    raise ConfigurationError(  # pragma: no cover - argparse enforces choices
        f"unknown campaign command {args.campaign_command!r}"
    )


# -- the persistent cache family ---------------------------------------------------


def _cache_stats_payload(cache: SqliteResultCache) -> dict:
    """The tier/size/counter snapshot both ``cache stats`` renderings share."""
    tiers = cache.tier_stats()
    entries = cache.entry_stats()
    totals = cache.stats
    payload_tiers = {}
    for name, stats in tiers.items():
        tier = {
            "requests": stats.requests,
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "hit_rate": round(stats.hit_rate, 4),
        }
        if name in entries:
            tier["entries"] = entries[name]["entries"]
            tier["size_bytes"] = entries[name]["size_bytes"]
        payload_tiers[name] = tier
    return {
        "path": cache.path,
        "tiers": payload_tiers,
        "totals": {
            "requests": totals.requests,
            "hits": totals.hits,
            "misses": totals.misses,
            # ``cache.stats`` aggregates the result path only (memory +
            # results tiers); ``gc()`` also evicts curves, so the totals row
            # sums evictions across every tier — otherwise curve evictions
            # would be invisible outside the per-tier breakdown.
            "evictions": sum(stats.evictions for stats in tiers.values()),
            "hit_rate": round(totals.hit_rate, 4),
        },
    }


def run_cache(args: argparse.Namespace) -> str:
    """Dispatch for the ``cache`` family: stats, clear, gc."""
    cache = _require_disk_cache(args)
    try:
        if args.cache_command == "stats":
            payload = _cache_stats_payload(cache)
            if args.json_output:
                return _json_output("repro.cache/1", payload)
            totals = payload["totals"]
            if args.quiet:
                return (
                    f"requests={totals['requests']} hits={totals['hits']} "
                    f"misses={totals['misses']}"
                )
            rows = []
            for name, tier in payload["tiers"].items():
                rows.append(
                    [
                        name,
                        tier.get("entries", "-"),
                        tier.get("size_bytes", "-"),
                        tier["requests"],
                        tier["hits"],
                        tier["misses"],
                        f"{tier['hit_rate']:.0%}",
                        tier["evictions"],
                    ]
                )
            rows.append(
                [
                    "total",
                    sum(t.get("entries", 0) for t in payload["tiers"].values()),
                    sum(t.get("size_bytes", 0) for t in payload["tiers"].values()),
                    totals["requests"],
                    totals["hits"],
                    totals["misses"],
                    f"{totals['hit_rate']:.0%}",
                    totals["evictions"],
                ]
            )
            return format_table(
                headers=[
                    "tier", "entries", "bytes", "lookups", "hits", "misses",
                    "hit rate", "evictions",
                ],
                rows=rows,
                title=f"Persistent cache — {cache.path}",
            )
        if args.cache_command == "clear":
            removed = cache.clear_all()
            if args.json_output:
                return _json_output(
                    "repro.cache.clear/1", {"path": cache.path, **removed}
                )
            return (
                f"cleared {cache.path}: {removed['removed_results']} result(s), "
                f"{removed['removed_curves']} curve(s), "
                f"{removed['freed_bytes']} byte(s) freed"
            )
        if args.cache_command == "gc":
            report = cache.gc(args.max_mb)
            if args.json_output:
                return _json_output(
                    "repro.cache.gc/1",
                    {"path": cache.path, "max_mb": args.max_mb, **report},
                )
            return (
                f"gc {cache.path} to {args.max_mb:g} MB: evicted "
                f"{report['removed_results']} result(s), "
                f"{report['removed_curves']} curve(s), freed "
                f"{report['freed_bytes']} byte(s) "
                f"({report['remaining_bytes']} remaining)"
            )
        raise ConfigurationError(  # pragma: no cover - argparse enforces choices
            f"unknown cache command {args.cache_command!r}"
        )
    finally:
        cache.close()


# -- the telemetry family ----------------------------------------------------------


def run_telemetry(args: argparse.Namespace) -> str:
    """Dispatch for the ``telemetry`` family: spans, metrics, summary.

    All three read a trace directory previously recorded with
    ``--trace-out`` (or ``REPRO_TRACE_DIR``); none of them installs a
    tracer, so inspection never mutates the trace being inspected.  JSON
    payloads share the ``repro.telemetry/1`` schema tag.
    """
    trace_dir = _require_trace_dir(args)
    if args.telemetry_command == "spans":
        spans = telemetry.read_spans(trace_dir)
        if args.span_name is not None:
            spans = [s for s in spans if s.get("name") == args.span_name]
        if args.limit > 0:
            spans = spans[-args.limit :]
        if args.json_output:
            return _json_output(
                "repro.telemetry/1",
                {
                    "trace_dir": trace_dir,
                    "kind": "spans",
                    "span_count": len(spans),
                    "spans": spans,
                },
            )
        if args.quiet:
            return f"{len(spans)} span(s) in {trace_dir}"
        rows = [
            [
                s.get("name", "?"),
                s.get("span_id", ""),
                s.get("parent_id") or "-",
                s.get("sequence", 0),
                s.get("status", "?"),
                f"{float(s.get('duration') or 0.0):.6f}",
            ]
            for s in spans
        ]
        return format_table(
            headers=["name", "span id", "parent", "seq", "status", "seconds"],
            rows=rows,
            title=f"Trace spans — {trace_dir} ({len(spans)} span(s))",
        )
    if args.telemetry_command == "metrics":
        snapshot = telemetry.read_metrics(trace_dir)
        histograms = snapshot.get("histograms", {})
        quantiles = {
            name: telemetry.histogram_quantiles(data)
            for name, data in sorted(histograms.items())
        }
        if args.json_output:
            return _json_output(
                "repro.telemetry/1",
                {
                    "trace_dir": trace_dir,
                    "kind": "metrics",
                    "metrics": snapshot,
                    "quantiles": quantiles,
                },
            )
        counters = snapshot.get("counters", {})
        gauges = snapshot.get("gauges", {})
        if args.quiet:
            return (
                f"{len(counters)} counter(s), {len(gauges)} gauge(s), "
                f"{len(histograms)} histogram(s) in {trace_dir}"
            )
        rows = [["counter", name, value] for name, value in sorted(counters.items())]
        rows += [["gauge", name, value] for name, value in sorted(gauges.items())]
        rows += [
            [
                "histogram",
                name,
                f"n={data.get('count', 0)} sum={data.get('sum', 0.0):.6f} "
                + " ".join(
                    f"{label}={value:.6f}"
                    for label, value in quantiles[name].items()
                    if value is not None
                ),
            ]
            for name, data in sorted(histograms.items())
        ]
        if not rows:
            return f"no metrics recorded under {trace_dir}"
        return format_table(
            headers=["instrument", "name", "value"],
            rows=rows,
            title=f"Metrics snapshot — {trace_dir}",
        )
    if args.telemetry_command == "summary":
        total, summary = telemetry.summarize_spans(telemetry.read_spans(trace_dir))
        metrics = telemetry.read_metrics(trace_dir)
        counters = metrics.get("counters", {})
        quantiles = {
            name: telemetry.histogram_quantiles(data)
            for name, data in sorted(metrics.get("histograms", {}).items())
        }
        if args.json_output:
            return _json_output(
                "repro.telemetry/1",
                {
                    "trace_dir": trace_dir,
                    "kind": "summary",
                    "span_count": total,
                    "spans": summary,
                    "counters": counters,
                    "quantiles": quantiles,
                },
            )
        if args.quiet:
            return (
                f"{total} span(s) across {len(summary)} name(s) in {trace_dir}"
            )
        rows = [
            [
                name,
                entry["count"],
                entry["errors"],
                f"{entry['total_seconds']:.6f}",
                f"{entry['mean_seconds']:.6f}",
                f"{entry['max_seconds']:.6f}",
            ]
            for name, entry in summary.items()
        ]
        if not rows:
            return f"no spans recorded under {trace_dir}"
        out = format_table(
            headers=["span", "count", "errors", "total s", "mean s", "max s"],
            rows=rows,
            title=f"Span summary — {trace_dir} ({total} span(s))",
        )
        quantile_rows = [
            [
                name,
                estimates.get("p50"),
                estimates.get("p95"),
                estimates.get("p99"),
            ]
            for name, estimates in quantiles.items()
            if estimates.get("p50") is not None
        ]
        if quantile_rows:
            out += "\n\n" + format_table(
                headers=["histogram", "p50 s", "p95 s", "p99 s"],
                rows=[
                    [name, f"{p50:.6f}", f"{p95:.6f}", f"{p99:.6f}"]
                    for name, p50, p95, p99 in quantile_rows
                ],
                title="Latency quantiles (bucket-interpolated)",
            )
        return out
    raise ConfigurationError(  # pragma: no cover - argparse enforces choices
        f"unknown telemetry command {args.telemetry_command!r}"
    )


# -- the analytics report family ---------------------------------------------------


def run_report(args: argparse.Namespace) -> str:
    """``report``: render one analytics report over a campaign store.

    The payload comes from the same builder the daemon's report endpoints
    use (:meth:`Analytics.report <repro.analytics.refresh.Analytics>`), so
    ``report <kind> --json`` and ``GET /reports/summary?kind=<kind>`` emit
    equal JSON for the same store.  ``--verify`` first compares every SQL
    view row-for-row against the pure-Python reference implementation and
    exits 2 on the first mismatch.
    """
    if not os.path.exists(args.store):
        raise ConfigurationError(
            f"no campaign store at {args.store!r}; start one with "
            f"`campaign start` (or pass --store)"
        )
    with SqliteStore(args.store) as store:
        with Analytics(store, path=args.analytics_path) as analytics:
            refreshed = analytics.rebuild() if args.rebuild else analytics.refresh()
            verified = assert_consistent(store, analytics) if args.verify else None
            payload = analytics.report(args.report_kind, args.campaign_id)
            if verified is not None:
                payload["verified"] = verified
            if args.json_output:
                return _json_output(payload["schema"], payload)
            if args.quiet:
                rows = sum(
                    len(section["rows"]) for section in payload["sections"].values()
                )
                line = (
                    f"{args.report_kind} {rows} row(s) through seq "
                    f"{payload['cursor']}"
                )
                if verified is not None:
                    line += f" — verified {sum(verified.values())} view row(s)"
                return line
            output = report_tables(payload)
            if verified is not None:
                output += (
                    "\n\nverified: every SQL view matches its Python reference "
                    f"({sum(verified.values())} row(s) across "
                    f"{len(verified)} view(s))"
                )
            if refreshed["events_seen"]:
                output += (
                    f"\nrefreshed: {refreshed['events_seen']} new event(s) "
                    f"mirrored incrementally"
                )
            return output


# -- the health & alerting family --------------------------------------------------


def _monitor_store(args: argparse.Namespace) -> SqliteStore:
    if not os.path.exists(args.store):
        raise ConfigurationError(
            f"no campaign store at {args.store!r}; start one with "
            f"`campaign start` (or pass --store)"
        )
    return SqliteStore(args.store)


def _alert_rows(alerts: list[dict]) -> list[list]:
    return [
        [
            row["campaign_id"],
            row["seq"],
            row["iteration"],
            row["rule"],
            row["severity"],
            row["state"],
            f"{row['value']:.6g}",
            f"{row['threshold']:g}",
        ]
        for row in alerts
    ]


def _health_table(verdict: dict, title: str) -> str:
    rows = []
    for name, component in verdict["components"].items():
        notes = "; ".join(
            f"{alert['rule']} {alert['state']} ({alert['severity']})"
            for alert in component["alerts"]
        )
        rows.append([name, component["status"], notes or "-"])
    out = format_table(
        headers=["component", "status", "alerts"],
        rows=rows,
        title=title,
    )
    return out + f"\noverall: {verdict['status']}"


def _watch_frame(
    url: str, frame: int, verdict: dict, alerts_payload: dict
) -> str:
    out = _health_table(
        verdict,
        title=f"Tuner health — {url} (frame {frame})",
    )
    recent = alerts_payload["alerts"][-8:]
    if recent:
        out += "\n\n" + format_table(
            headers=[
                "campaign", "seq", "iter", "rule", "severity", "state",
                "value", "threshold",
            ],
            rows=_alert_rows(recent),
            title=(
                f"Alert history — newest {len(recent)} of "
                f"{alerts_payload['count']} row(s)"
            ),
        )
    else:
        out += "\n\nno alerts recorded"
    return out


def run_monitor(args: argparse.Namespace) -> str:
    """Dispatch for the ``monitor`` family: SLO rules, alert history,
    per-component health verdicts, the live dashboard, and the
    benchmark-regression watchdog.

    Everything here reads the same durable surfaces the daemon serves —
    ``monitor alerts`` replays the store's ``alert`` events exactly as
    ``GET /alerts`` and the ``alert_history`` analytics view do.
    """
    command = args.monitor_command

    if command == "rules":
        rules = [get_rule(name).to_dict() for name in available_rules()]
        if args.json_output:
            return _json_output(
                "repro.monitor/1",
                {"kind": "rules", "count": len(rules), "rules": rules},
            )
        if args.quiet:
            return f"{len(rules)} alert rule(s) registered"
        return format_table(
            headers=[
                "rule", "scope", "component", "signal", "breach",
                "window", "min", "severity", "debounce",
            ],
            rows=[
                [
                    rule["name"],
                    rule["scope"],
                    rule["component"],
                    rule["signal"],
                    f"{rule['predicate']} {rule['threshold']:g}",
                    rule["window"],
                    rule["min_samples"],
                    rule["severity"],
                    rule["debounce"],
                ]
                for rule in rules
            ],
            title="Registered alert rules",
        )

    if command == "alerts":
        with _monitor_store(args) as store:
            if args.campaign_id is not None:
                store.get_campaign(args.campaign_id)
            alerts = alert_history(store, args.campaign_id)
        if args.json_output:
            return _json_output(
                "repro.monitor/1",
                {"kind": "alerts", "count": len(alerts), "alerts": alerts},
            )
        if args.quiet:
            fired = sum(1 for row in alerts if row["state"] == "fired")
            return (
                f"{len(alerts)} alert row(s) ({fired} fired) in {args.store}"
            )
        if not alerts:
            return f"no alerts recorded in {args.store}"
        return format_table(
            headers=[
                "campaign", "seq", "iter", "rule", "severity", "state",
                "value", "threshold",
            ],
            rows=_alert_rows(alerts),
            title=f"Alert history — {args.store} ({len(alerts)} row(s))",
        )

    if command == "status":
        with _monitor_store(args) as store:
            verdict = HealthEvaluator().health(store=store)
        if args.json_output:
            return _json_output(
                "repro.monitor/1", {"kind": "status", "health": verdict}
            )
        if args.quiet:
            return f"{verdict['status']} — {args.store}"
        return _health_table(verdict, title=f"Campaign health — {args.store}")

    if command == "watch":
        client = TunerClient(args.url, timeout=args.timeout)
        interval = max(float(args.interval), 0.1)
        deadline = (
            time.monotonic() + args.max_seconds
            if args.max_seconds > 0
            else None
        )
        frame = 0
        output = ""
        try:
            while True:
                verdict = client.health_deep()
                alerts_payload = client.alerts()
                frame += 1
                if args.json_output:
                    output = _json_output(
                        "repro.monitor/1",
                        {
                            "kind": "watch",
                            "frame": frame,
                            "health": verdict,
                            "alerts": alerts_payload,
                        },
                    )
                elif args.quiet:
                    output = (
                        f"frame {frame}: {verdict['status']} — "
                        f"{alerts_payload['count']} alert row(s)"
                    )
                else:
                    output = _watch_frame(
                        args.url, frame, verdict, alerts_payload
                    )
                done = args.once or (
                    deadline is not None and time.monotonic() >= deadline
                )
                if done:
                    return output
                print(output, flush=True)
                time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return output

    if command == "bench":
        try:
            with open(args.fresh, "r", encoding="utf-8") as handle:
                fresh = json.load(handle)
        except (OSError, ValueError) as error:
            raise ConfigurationError(
                f"cannot read fresh benchmark results {args.fresh!r}: {error}"
            ) from None
        if not isinstance(fresh, dict):
            raise ConfigurationError(
                f"{args.fresh!r} must hold a JSON object mapping benchmark "
                f"names to their metric dicts"
            )
        if args.benchmark is not None:
            if args.benchmark not in fresh:
                raise ConfigurationError(
                    f"no benchmark {args.benchmark!r} in {args.fresh!r}; "
                    f"present: {', '.join(sorted(fresh)) or 'none'}"
                )
            fresh = {args.benchmark: fresh[args.benchmark]}
        verdict = watchdog(args.reference_dir, fresh)
        if args.json_output:
            output = _json_output(
                "repro.monitor/1", {"kind": "bench", **verdict}
            )
        elif args.quiet:
            output = (
                f"{verdict['status']} — {len(verdict['checked'])} "
                f"benchmark(s) checked, {len(verdict['regressions'])} "
                f"regression(s)"
            )
        else:
            lines = [
                f"checked: {', '.join(verdict['checked']) or 'none'}",
            ]
            if verdict["unmatched"]:
                lines.append(
                    "unmatched (no committed reference): "
                    + ", ".join(verdict["unmatched"])
                )
            if verdict["regressions"]:
                lines.append("")
                lines.append(format_table(
                    headers=[
                        "benchmark", "metric", "reference", "fresh",
                        "limit", "severity",
                    ],
                    rows=[
                        [
                            reg["benchmark"],
                            reg["metric"],
                            reg["reference"],
                            reg["fresh"],
                            reg["limit"] if reg["limit"] is not None else "-",
                            reg["severity"],
                        ]
                        for reg in verdict["regressions"]
                    ],
                    title="Benchmark regressions",
                ))
            else:
                lines.append("no regressions")
            lines.append(f"overall: {verdict['status']}")
            output = "\n".join(lines)
        if verdict["regressions"]:
            # Exit 2 for CI after the report is visible on stdout.
            print(output, flush=True)
            raise ConfigurationError(
                f"{len(verdict['regressions'])} benchmark regression(s) "
                f"against {args.reference_dir}"
            )
        return output

    raise ConfigurationError(  # pragma: no cover - argparse enforces choices
        f"unknown monitor command {command!r}"
    )


# -- the serve daemon and its remote clients ---------------------------------------


def run_serve(args: argparse.Namespace) -> str:
    """``serve``: the tuner service daemon, until SIGTERM/SIGINT drains it.

    The status line printed on startup (and the drain summary on exit) are
    ``--quiet``-compatible: one line each, so supervisors can log them.  A
    graceful drain checkpoints and pauses every unfinished campaign — a
    restarted daemon with ``--resume-all`` continues each one
    byte-identically.
    """
    store = SqliteStore(args.store)
    result_cache = _build_result_cache(args)
    app = TunerService(store=store, result_cache=result_cache)
    resumed = app.resume_all() if args.resume_all else []
    app.start()
    server = TunerServer(
        app,
        host=args.host,
        port=args.port,
        log=None if args.quiet else lambda line: print(line, file=sys.stderr),
    )
    server.start_background()
    stop = threading.Event()

    def request_stop(signum: int, frame: object) -> None:
        stop.set()

    previous = {
        signum: signal.signal(signum, request_stop)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    print(
        f"serving on {server.url} — store {args.store}, "
        f"{len(resumed)} campaign(s) resumed",
        flush=True,
    )
    try:
        while not stop.wait(0.2):
            pass
    finally:
        # Flush the metrics snapshot to --trace-out *before* the drain and
        # keep the benign signal handlers installed through it: a second
        # SIGTERM mid-drain must not kill the process with the telemetry
        # still buffered in memory.
        telemetry.flush_metrics()
        stats = app.server_stats()
        summary = app.drain()
        server.shutdown()
        result_cache.close()
        store.close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    line = (
        f"drained — {len(summary['suspended'])} campaign(s) suspended; "
        f"{server_status_line(stats)}"
    )
    if args.quiet:
        return line
    return line + "\n\n" + server_stats_table(stats)


def _remote_submit_spec(args: argparse.Namespace) -> dict:
    """The CampaignSpec JSON body a ``remote submit`` invocation describes."""
    return {
        "name": args.name,
        "dataset": args.dataset,
        "scenario": args.scenario,
        "source": args.source,
        "method": args.method,
        "budget": args.budget,
        "lam": args.lam,
        "seed": args.seed,
        "base_size": args.initial_size,
        "validation_size": args.validation_size,
        "epochs": args.epochs,
        "curve_points": args.curve_points,
        "priority": args.priority,
        "checkpoint_every": args.checkpoint_every,
        "evaluate": args.evaluate,
        "discover": args.discover,
        "reslice_every": args.reslice_every if args.discover is not None else 0,
    }


def _remote_show_quiet(summary: dict) -> str:
    """One campaign as the same quiet line ``campaign show --quiet`` prints."""
    return (
        f"{summary['campaign_id']} {summary['status']} "
        f"iterations={summary['iterations']} spent={summary['spent']:.2f}"
    )


def run_remote(args: argparse.Namespace) -> str:
    """Dispatch for the ``remote`` family: thin clients over TunerClient."""
    client = TunerClient(args.url, timeout=args.timeout)
    command = args.remote_command

    if command == "submit":
        submitted = client.submit(_remote_submit_spec(args))
        campaign_id = submitted["campaign_id"]
        if args.wait:
            client.wait(campaign_id, timeout=args.timeout)
            summary = client.show(campaign_id)
            if args.json_output:
                return _json_output(
                    "repro.remote.submit/1",
                    {"submitted": submitted, "campaign": summary,
                     "result": client.result(campaign_id)},
                )
            return _remote_show_quiet(summary)
        if args.json_output:
            return _json_output("repro.remote.submit/1", {"submitted": submitted})
        return (
            f"{campaign_id}: submitted ({submitted['status']}"
            f"{', reused' if submitted['reused'] else ''})"
        )

    if command == "list":
        campaigns = client.list_campaigns()
        if args.json_output:
            return _json_output(
                "repro.remote.list/1", {"url": args.url, "campaigns": campaigns}
            )
        if not campaigns:
            return f"no campaigns at {args.url}"
        if args.quiet:
            return "\n".join(
                f"{c['campaign_id']} {c['status']}" for c in campaigns
            )
        rows = [
            [
                c["campaign_id"],
                c["name"],
                c["status"],
                c["priority"],
                c["iterations"],
                f"{c['spent']:.0f}/{c['budget']:.0f}",
                c["generations"],
            ]
            for c in campaigns
        ]
        return format_table(
            headers=["id", "name", "status", "lane", "iters", "spent/budget", "gens"],
            rows=rows,
            title=f"Campaigns at {args.url}",
        )

    if command == "show":
        summary = client.show(args.campaign_id)
        stats = client.stats()
        if args.json_output:
            return _json_output(
                "repro.remote.show/1", {"campaign": summary, "stats": stats}
            )
        if args.quiet:
            return _remote_show_quiet(summary)
        spec_lines = "\n".join(
            f"  {key} = {value}" for key, value in sorted(summary["spec"].items())
        )
        output = (
            f"campaign {summary['campaign_id']} ({summary['name']})\n"
            f"status: {summary['status']} — lane {summary['priority']}, "
            f"{summary['generations']} generation(s), "
            f"{summary['fulfillments']} fulfillment(s)\n"
            f"progress: {summary['iterations']} iteration(s), spent "
            f"{summary['spent']:.2f}/{summary['budget']:.0f}\n"
            f"spec:\n{spec_lines}\n\n"
        )
        return output + server_stats_table(stats)

    if command == "tail":
        frames = []
        for frame in client.tail(
            args.campaign_id, after=args.after, reconnect=args.reconnect
        ):
            frames.append(frame)
            if args.json_output:
                continue  # collected and printed as one object at the end
            if frame["event"] == "tick":
                if not args.quiet:
                    data = frame["data"]
                    print(
                        f"[tick] {data['name']} iteration {data['iteration']} — "
                        f"spent {data['spent']:.0f}/{data['budget']:.0f}",
                        flush=True,
                    )
                continue
            if frame["event"] == "end":
                continue  # summarized by the return value below
            print(
                f"{frame['id']} {frame['event']} "
                f"{json.dumps(frame['data']['payload'], sort_keys=True)}",
                flush=True,
            )
        end = frames[-1]["data"] if frames and frames[-1]["event"] == "end" else {}
        if args.json_output:
            return _json_output(
                "repro.remote.tail/1",
                {"campaign_id": args.campaign_id, "frames": frames},
            )
        return (
            f"{args.campaign_id} {end.get('status', '?')} "
            f"(last event seq {end.get('last_seq', client.last_event_id)})"
        )

    if command == "result":
        result = client.result(args.campaign_id)
        if args.json_output:
            return _json_output(
                "repro.remote.result/1",
                {"campaign_id": args.campaign_id, "result": result},
            )
        acquired = sum(result.get("total_acquired", {}).values())
        return (
            f"{args.campaign_id}: method={result['method']} "
            f"iterations={len(result.get('iterations', []))} "
            f"spent={result['spent']:.2f} acquired={acquired}"
        )

    if command == "wait":
        summary = client.wait(args.campaign_id, timeout=args.timeout)
        if args.json_output:
            return _json_output("repro.remote.wait/1", {"campaign": summary})
        return _remote_show_quiet(summary)

    if command == "pause":
        outcome = client.pause(args.campaign_id)
        if args.json_output:
            return _json_output("repro.remote.pause/1", outcome)
        state = "paused" if outcome["paused"] else "not pausable (done or idle)"
        return f"{args.campaign_id}: {state}"

    if command == "resume":
        if args.resume_all and args.campaign_id:
            raise ConfigurationError("pass either a campaign id or --all, not both")
        if args.resume_all:
            resumed = client.resume_all()
            if args.json_output:
                return _json_output("repro.remote.resume/1", {"resumed": resumed})
            if not resumed:
                return "nothing to resume: every stored campaign is completed"
            return "\n".join(f"{campaign_id} resumed" for campaign_id in resumed)
        if not args.campaign_id:
            raise ConfigurationError("remote resume needs a campaign id (or --all)")
        outcome = client.resume(args.campaign_id)
        if args.json_output:
            return _json_output("repro.remote.resume/1", {"resumed": [outcome]})
        return f"{args.campaign_id}: {outcome['status']}"

    if command == "stats":
        stats = client.stats()
        if args.json_output:
            return _json_output(
                "repro.remote.stats/1", {"url": args.url, "stats": stats}
            )
        if args.quiet:
            return server_status_line(stats)
        return server_stats_table(stats, title=f"Tuner service health — {args.url}")

    raise ConfigurationError(  # pragma: no cover - argparse enforces choices
        f"unknown remote command {command!r}"
    )


def run_strategies(args: argparse.Namespace) -> str:
    """The ``strategies`` subcommand: list the acquisition-strategy registry."""
    if args.json_output:
        return _json_output(
            "repro.strategies/1",
            {
                "strategies": [
                    {
                        "name": name,
                        "kind": (
                            "iterative"
                            if get_strategy(name).is_iterative
                            else "one-shot"
                        ),
                        "uses_lambda": get_strategy(name).uses_lam,
                        "description": description,
                    }
                    for name, description in strategy_descriptions().items()
                ]
            },
        )
    if args.quiet:
        return "\n".join(available_strategies())
    rows = []
    for name, description in strategy_descriptions().items():
        strategy = get_strategy(name)
        kind = "iterative" if strategy.is_iterative else "one-shot"
        uses_lam = "yes" if strategy.uses_lam else "no"
        rows.append([name, kind, uses_lam, description])
    return format_table(
        headers=["strategy", "kind", "uses lambda", "description"],
        rows=rows,
        title="Registered acquisition strategies",
    )


def run_sources(args: argparse.Namespace) -> str:
    """The ``sources`` subcommand: list the data-source provider registry."""
    descriptions = source_descriptions()
    if args.json_output:
        return _json_output(
            "repro.sources/1",
            {
                "sources": [
                    {"name": name, "description": description}
                    for name, description in descriptions.items()
                ]
            },
        )
    if args.quiet:
        return "\n".join(descriptions)
    rows = [[name, description] for name, description in descriptions.items()]
    return format_table(
        headers=["source", "description"],
        rows=rows,
        title="Registered data-source providers",
    )


_COMMANDS = {
    "curves": run_curves,
    "plan": run_plan,
    "discover": run_discover,
    "run": run_run,
    "compare": run_compare,
    "campaign": run_campaign,
    "cache": run_cache,
    "telemetry": run_telemetry,
    "report": run_report,
    "monitor": run_monitor,
    "serve": run_serve,
    "remote": run_remote,
    "strategies": run_strategies,
    "sources": run_sources,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes are consistent across subcommands: 0 on success, 2 for
    configuration/usage errors (unknown strategy, unknown campaign id,
    invalid flag combinations — the same code argparse uses for parse
    errors).  Unexpected exceptions propagate as tracebacks.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS.get(args.command)
    if handler is None:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
    # Tracing lifecycle: commands that declare --trace-out get a live
    # tracer plus a fresh metrics registry for their whole run (so the
    # written snapshot covers exactly this command); shutdown flushes the
    # metrics next to the span log even when the command errors out.
    trace_dir = _resolve_trace_dir(args)
    previous_registry = None
    if trace_dir is not None:
        telemetry.configure(trace_dir=trace_dir)
        previous_registry = telemetry.set_registry(telemetry.MetricsRegistry())
    try:
        output = handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if trace_dir is not None:
            telemetry.shutdown()
            telemetry.set_registry(previous_registry)
    if output:
        print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
