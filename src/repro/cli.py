"""Command-line interface for the Slice Tuner reproduction.

Four subcommands cover the common workflows without writing any Python:

* ``curves`` — estimate and print the per-slice learning curves of a dataset.
* ``plan`` — print the One-shot acquisition plan for a budget (no data is
  acquired), the "concrete action items" of the paper.
* ``compare`` — run several acquisition strategies over independently seeded
  trials and print the Table-2/6-style comparison.  ``--methods`` accepts
  any name in the strategy registry, including the ``bandit`` comparator
  and user registrations.
* ``strategies`` — list every registered acquisition strategy.

Examples::

    python -m repro.cli strategies
    python -m repro.cli curves --dataset fashion_like --initial-size 150
    python -m repro.cli plan --dataset faces_like --budget 1000 --lam 1.0
    python -m repro.cli compare --dataset mixed_like --budget 2000 \
        --methods uniform water_filling moderate bandit --trials 2
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.core.registry import (
    available_strategies,
    get_strategy,
    is_registered,
    strategy_descriptions,
)
from repro.datasets.registry import available_tasks
from repro.engine.executor import available_executors, get_executor
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import allocations_table, methods_table
from repro.experiments.runner import compare_methods, prepare_instance
from repro.experiments.scenarios import list_scenarios
from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.utils.tables import format_table


def _registered_method(name: str) -> str:
    """argparse type for ``--methods``: any registered strategy name."""
    if not is_registered(name):
        raise argparse.ArgumentTypeError(
            f"unknown strategy {name!r}; run `python -m repro.cli strategies` "
            f"to list registered strategies ({', '.join(available_strategies())})"
        )
    return name.strip().lower()


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Slice Tuner: selective data acquisition (SIGMOD 2021 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dataset",
            default="fashion_like",
            choices=available_tasks(),
            help="synthetic dataset to use",
        )
        sub.add_argument(
            "--scenario",
            default="basic",
            choices=list_scenarios(),
            help="initial-size scenario",
        )
        sub.add_argument("--initial-size", type=int, default=150, help="base initial size per slice")
        sub.add_argument("--validation-size", type=int, default=150, help="validation examples per slice")
        sub.add_argument("--epochs", type=int, default=30, help="training epochs per model fit")
        sub.add_argument("--curve-points", type=int, default=5, help="subset sizes measured per learning curve")
        sub.add_argument("--seed", type=int, default=0, help="base random seed")

    curves = subparsers.add_parser("curves", help="estimate per-slice learning curves")
    add_common(curves)

    plan = subparsers.add_parser("plan", help="print the One-shot acquisition plan for a budget")
    add_common(plan)
    plan.add_argument("--budget", type=float, default=1000.0, help="acquisition budget B")
    plan.add_argument("--lam", type=float, default=1.0, help="loss/unfairness trade-off weight")

    compare = subparsers.add_parser("compare", help="compare acquisition methods over trials")
    add_common(compare)
    compare.add_argument("--budget", type=float, default=1000.0, help="acquisition budget B")
    compare.add_argument("--lam", type=float, default=1.0, help="loss/unfairness trade-off weight")
    compare.add_argument(
        "--methods",
        nargs="+",
        default=["uniform", "water_filling", "moderate"],
        type=_registered_method,
        metavar="STRATEGY",
        help="registered strategy names to compare (see the strategies subcommand)",
    )
    compare.add_argument("--trials", type=int, default=2, help="independently seeded repetitions")
    compare.add_argument(
        "--show-allocations",
        action="store_true",
        help="also print the mean per-slice acquisitions (Table 3 style)",
    )
    compare.add_argument(
        "--executor",
        default="serial",
        choices=available_executors(),
        help="execution backend for the (method, trial) grid; results are "
        "identical for every backend",
    )
    compare.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --executor process (default: CPU count)",
    )

    subparsers.add_parser(
        "strategies", help="list every registered acquisition strategy"
    )
    return parser


def _experiment_config(args: argparse.Namespace, methods: tuple[str, ...], budget: float, lam: float, trials: int) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=args.dataset,
        scenario=args.scenario,
        budget=budget,
        methods=methods,
        lam=lam,
        trials=trials,
        validation_size=args.validation_size,
        curve_points=args.curve_points,
        curve_repeats=1,
        epochs=args.epochs,
        seed=args.seed,
        extra={"base_size": args.initial_size},
    )


def _build_tuner(args: argparse.Namespace, lam: float = 1.0) -> SliceTuner:
    config = _experiment_config(args, methods=("moderate",), budget=1.0, lam=lam, trials=1)
    sliced, source = prepare_instance(config, seed=args.seed)
    return SliceTuner(
        sliced,
        source,
        trainer_config=config.training_config(),
        curve_config=config.curve_config(),
        config=SliceTunerConfig(lam=lam),
        random_state=args.seed + 1,
    )


def run_curves(args: argparse.Namespace) -> str:
    """The ``curves`` subcommand: fit and render per-slice learning curves."""
    tuner = _build_tuner(args)
    curves = tuner.estimate_curves()
    rows = [
        [name, f"{curve.b:.3f}", f"{curve.a:.3f}", f"{curve.reliability:.2f}", curve.describe()]
        for name, curve in curves.items()
    ]
    return format_table(
        headers=["slice", "b", "a", "reliability", "curve"],
        rows=rows,
        title=f"Learning curves for {args.dataset} ({args.scenario} scenario)",
    )


def run_plan(args: argparse.Namespace) -> str:
    """The ``plan`` subcommand: print the One-shot plan without acquiring."""
    tuner = _build_tuner(args, lam=args.lam)
    plan = tuner.plan(budget=args.budget, lam=args.lam)
    return plan.to_text()


def run_compare(args: argparse.Namespace) -> str:
    """The ``compare`` subcommand: Table-2/6-style method comparison."""
    config = _experiment_config(
        args,
        methods=tuple(args.methods),
        budget=args.budget,
        lam=args.lam,
        trials=args.trials,
    )
    if args.workers is not None and args.executor != "process":
        raise SystemExit(
            "error: --workers only applies to --executor process"
        )
    executor_kwargs = (
        {"max_workers": args.workers} if args.executor == "process" else {}
    )
    with get_executor(args.executor, **executor_kwargs) as executor:
        aggregates = compare_methods(config, include_original=True, executor=executor)
    output = methods_table(
        aggregates,
        title=(
            f"{args.dataset} / {args.scenario} — budget {args.budget:.0f}, "
            f"lambda {args.lam}, {args.trials} trial(s)"
        ),
        method_order=["original", *args.methods],
    )
    if args.show_allocations:
        sliced, _ = prepare_instance(config, seed=args.seed)
        output += "\n\n" + allocations_table(
            {m: aggregates[m] for m in args.methods},
            slice_names=sliced.names,
            title="Mean examples acquired per slice",
        )
    return output


def run_strategies(args: argparse.Namespace) -> str:
    """The ``strategies`` subcommand: list the acquisition-strategy registry."""
    rows = []
    for name, description in strategy_descriptions().items():
        strategy = get_strategy(name)
        kind = "iterative" if strategy.is_iterative else "one-shot"
        uses_lam = "yes" if strategy.uses_lam else "no"
        rows.append([name, kind, uses_lam, description])
    return format_table(
        headers=["strategy", "kind", "uses lambda", "description"],
        rows=rows,
        title="Registered acquisition strategies",
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "curves":
        print(run_curves(args))
    elif args.command == "plan":
        print(run_plan(args))
    elif args.command == "compare":
        print(run_compare(args))
    elif args.command == "strategies":
        print(run_strategies(args))
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
