"""Pure-Python reference implementations of every analytics view.

Each function recomputes one view of :mod:`repro.analytics.views` directly
from :func:`repro.campaigns.store.replay_events` over the live store —
no SQL involved — and :func:`assert_consistent` compares the two
row-for-row.  This is the correctness tool of the analytics subsystem
(exposed as ``cli report --verify`` and run in tests): the SQL is the
fast production path, the Python is the executable specification.

Exactness: comparisons use ``==`` on every cell, including floats.  That
works because both sides parse the same JSON payload text (SQLite's JSON1
float conversion matches Python's — verified empirically over random
doubles) and both sides add floats in the same explicit order (the SQL
uses running window sums with ``ORDER BY``; the reference accumulates in
that same order).  Curve-parameter *reuse* is compared by canonical JSON
rendering on both sides, so ``0.0`` vs ``-0.0`` count as a change in both.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Callable

from repro.analytics.views import VIEW_DEFINITIONS
from repro.campaigns.store import CampaignEvent, CampaignStore, replay_events
from repro.utils.exceptions import AnalyticsError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analytics.refresh import Analytics

__all__ = ["reference_rows", "assert_consistent"]


def _replayed(store: CampaignStore, campaign_id: str) -> list[CampaignEvent]:
    return replay_events(store.events(campaign_id))


def _iteration_events(events: list[CampaignEvent]) -> list[CampaignEvent]:
    return sorted(
        (e for e in events if e.kind == "iteration"), key=lambda e: e.iteration
    )


def _final_spent(events: list[CampaignEvent]) -> float:
    spent = None
    for event in _iteration_events(events):
        value = event.payload["spent"]
        spent = value if spent is None else spent + value
    return 0.0 if spent is None else spent


def _ref_slice_trajectories(store: CampaignStore) -> list[tuple]:
    rows: list[tuple] = []
    for record in store.list_campaigns():
        events = _replayed(store, record.campaign_id)
        cum: dict[str, Any] = {}
        for event in _iteration_events(events):
            curves = event.payload.get("curve_parameters", {})
            for name, acquired in event.payload["acquired"].items():
                cum[name] = acquired if name not in cum else cum[name] + acquired
                curve = curves.get(name)
                rows.append(
                    (
                        record.campaign_id,
                        event.iteration,
                        name,
                        acquired,
                        cum[name],
                        None if curve is None else curve[0],
                        None if curve is None else curve[1],
                    )
                )
    rows.sort(key=lambda row: (row[0], row[1], row[2]))
    return rows


def _ref_campaign_costs(store: CampaignStore) -> list[tuple]:
    rows: list[tuple] = []
    for record in store.list_campaigns():
        events = _replayed(store, record.campaign_id)
        cum = None
        for event in _iteration_events(events):
            payload = event.payload
            spent = payload["spent"]
            cum = spent if cum is None else cum + spent
            rows.append(
                (
                    record.campaign_id,
                    event.iteration,
                    spent,
                    cum,
                    payload["limit"],
                    payload["imbalance_before"],
                    payload["imbalance_after"],
                )
            )
    rows.sort(key=lambda row: (row[0], row[1]))
    return rows


def _ref_fulfillment_rates(store: CampaignStore) -> list[tuple]:
    rows: list[tuple] = []
    for record in store.list_campaigns():
        events = _replayed(store, record.campaign_id)
        fulfillments = [e for e in events if e.kind == "fulfillment"]
        fulfillments.sort(key=lambda e: e.seq)
        n = len(fulfillments)
        requested = effective = delivered = shortfall = failovers = degraded = 0
        cost = None
        for event in fulfillments:
            payload = event.payload
            requested += payload["requested"]
            effective += payload["effective"]
            delivered += payload["delivered"]
            shortfall += payload["shortfall"]
            cost = payload["cost"] if cost is None else cost + payload["cost"]
            failovers += 1 if len(payload["provenance"]) > 1 else 0
            degraded += 1 if payload["status"] != "fulfilled" else 0
        rows.append(
            (
                record.campaign_id,
                n,
                requested,
                effective,
                delivered,
                shortfall,
                0.0 if cost is None else cost,
                failovers,
                degraded,
                shortfall * 1.0 / effective if effective > 0 else 0.0,
                failovers * 1.0 / n if n > 0 else 0.0,
            )
        )
    rows.sort(key=lambda row: row[0])
    return rows


def _ref_lane_fairness(store: CampaignStore) -> list[tuple]:
    totals = []
    for record in sorted(store.list_campaigns(), key=lambda r: r.campaign_id):
        events = _replayed(store, record.campaign_id)
        totals.append(
            {
                "priority": int(record.priority),
                "budget": float(record.spec.get("budget", 0.0)),
                "completed": 1 if record.status == "completed" else 0,
                "iterations": len(_iteration_events(events)),
                "spent": _final_spent(events),
            }
        )
    lanes: dict[int, dict] = {}
    for t in totals:  # already in campaign_id order, matching the SQL window
        lane = lanes.setdefault(
            t["priority"],
            {"campaigns": 0, "completed": 0, "iterations": 0,
             "spent": None, "budget": None},
        )
        lane["campaigns"] += 1
        lane["completed"] += t["completed"]
        lane["iterations"] += t["iterations"]
        lane["spent"] = (
            t["spent"] if lane["spent"] is None else lane["spent"] + t["spent"]
        )
        lane["budget"] = (
            t["budget"] if lane["budget"] is None else lane["budget"] + t["budget"]
        )
    total_spent = None
    total_budget = None
    for priority in sorted(lanes):  # grand totals accumulate in priority order
        lane = lanes[priority]
        total_spent = (
            lane["spent"] if total_spent is None else total_spent + lane["spent"]
        )
        total_budget = (
            lane["budget"] if total_budget is None else total_budget + lane["budget"]
        )
    rows = []
    for priority in sorted(lanes):
        lane = lanes[priority]
        rows.append(
            (
                priority,
                lane["campaigns"],
                lane["completed"],
                lane["iterations"],
                lane["spent"],
                lane["budget"],
                lane["spent"] / total_spent if total_spent > 0 else 0.0,
                lane["budget"] / total_budget if total_budget > 0 else 0.0,
            )
        )
    return rows


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=False)


def _ref_cache_trends(store: CampaignStore) -> list[tuple]:
    rows: list[tuple] = []
    for record in store.list_campaigns():
        events = _replayed(store, record.campaign_id)
        previous: dict[str, str] = {}
        for event in _iteration_events(events):
            curves = event.payload.get("curve_parameters", {})
            if not curves:
                continue
            slices = len(curves)
            reusable = reuses = 0
            for name, curve in curves.items():
                rendered = _canonical(curve)
                if name in previous:
                    reusable += 1
                    if previous[name] == rendered:
                        reuses += 1
                previous[name] = rendered
            rows.append(
                (
                    record.campaign_id,
                    event.iteration,
                    slices,
                    reuses,
                    reusable,
                    reuses * 1.0 / reusable if reusable > 0 else 0.0,
                )
            )
    rows.sort(key=lambda row: (row[0], row[1]))
    return rows


def _ref_reslice_trends(store: CampaignStore) -> list[tuple]:
    rows: list[tuple] = []
    for record in store.list_campaigns():
        events = [e for e in _replayed(store, record.campaign_id)
                  if e.kind == "reslice"]
        events.sort(key=lambda e: e.seq)
        high_water = None
        for event in events:
            payload = event.payload
            generation = payload["slice_generation"]
            high_water = (
                generation if high_water is None else max(high_water, generation)
            )
            rows.append(
                (
                    record.campaign_id,
                    event.seq,
                    event.iteration,
                    generation,
                    high_water,
                    payload["method"],
                    len(payload["slice_names"]),
                    payload["fingerprint"],
                )
            )
    rows.sort(key=lambda row: (row[0], row[1]))
    return rows


def _ref_alert_history(store: CampaignStore) -> list[tuple]:
    rows: list[tuple] = []
    for record in store.list_campaigns():
        events = [
            e
            for e in _replayed(store, record.campaign_id)
            if e.kind == "alert"
        ]
        events.sort(key=lambda e: e.seq)
        fired: dict[str, int] = {}  # running per-rule fired count
        for event in events:
            payload = event.payload
            rule = payload.get("rule")
            if payload.get("state") == "fired":
                fired[rule] = fired.get(rule, 0) + 1
            rows.append(
                (
                    record.campaign_id,
                    event.seq,
                    event.iteration,
                    rule,
                    payload.get("component"),
                    payload.get("severity"),
                    payload.get("state"),
                    payload.get("value"),
                    payload.get("threshold"),
                    fired.get(rule, 0),
                )
            )
    rows.sort(key=lambda row: (row[0], row[1]))
    return rows


def _ref_telemetry_spans(store: CampaignStore) -> list[tuple]:
    rows: list[tuple] = []
    for record in store.list_campaigns():
        events = [
            e
            for e in _replayed(store, record.campaign_id)
            if e.kind == "telemetry"
        ]
        events.sort(key=lambda e: e.seq)
        for event in events:
            payload = event.payload
            rows.append(
                (
                    record.campaign_id,
                    event.seq,
                    event.iteration,
                    payload.get("name"),
                    payload.get("span_id"),
                    payload.get("parent_id"),
                    payload.get("status"),
                    payload.get("duration"),
                    (payload.get("attributes") or {}).get("provider"),
                )
            )
    rows.sort(key=lambda row: (row[0], row[1]))
    return rows


def _ref_provider_latency(store: CampaignStore) -> list[tuple]:
    rows: list[tuple] = []
    for record in store.list_campaigns():
        events = [
            e
            for e in _replayed(store, record.campaign_id)
            if e.kind == "telemetry"
            and e.payload.get("name") == "acquisition.provider"
        ]
        events.sort(key=lambda e: e.seq)  # SQL sums in seq order too
        groups: dict[str, dict] = {}
        for event in events:
            payload = event.payload
            provider = (payload.get("attributes") or {}).get("provider")
            group = groups.setdefault(
                provider, {"calls": 0, "total": None, "max": None}
            )
            duration = payload.get("duration")
            group["calls"] += 1
            group["total"] = (
                duration
                if group["total"] is None
                else group["total"] + duration
            )
            group["max"] = (
                duration
                if group["max"] is None
                else max(group["max"], duration)
            )
        ranked = sorted(
            groups.items(), key=lambda item: (-item[1]["total"], item[0])
        )
        for rank, (provider, group) in enumerate(ranked, start=1):
            rows.append(
                (
                    record.campaign_id,
                    provider,
                    group["calls"],
                    group["total"],
                    group["total"] / group["calls"],
                    group["max"],
                    rank,
                )
            )
    rows.sort(key=lambda row: (row[0], row[6]))
    return rows


def _ref_campaign_rollup(store: CampaignStore) -> list[tuple]:
    shortfalls = {row[0]: row[5] for row in _ref_fulfillment_rates(store)}
    rows: list[tuple] = []
    for record in store.list_campaigns():
        events = _replayed(store, record.campaign_id)
        generations = [
            e.payload["slice_generation"] for e in events if e.kind == "reslice"
        ]
        rows.append(
            (
                record.campaign_id,
                record.name,
                record.status,
                int(record.priority),
                float(record.spec.get("budget", 0.0)),
                len(_iteration_events(events)),
                _final_spent(events),
                sum(1 for e in events if e.kind == "fulfillment"),
                shortfalls.get(record.campaign_id, 0),
                max(generations) if generations else 0,
                len(events),
            )
        )
    rows.sort(key=lambda row: row[0])
    return rows


_REFERENCES: dict[str, Callable[[CampaignStore], list[tuple]]] = {
    "campaign_rollup": _ref_campaign_rollup,
    "slice_trajectories": _ref_slice_trajectories,
    "campaign_costs": _ref_campaign_costs,
    "fulfillment_rates": _ref_fulfillment_rates,
    "lane_fairness": _ref_lane_fairness,
    "cache_trends": _ref_cache_trends,
    "reslice_trends": _ref_reslice_trends,
    "alert_history": _ref_alert_history,
    "telemetry_spans": _ref_telemetry_spans,
    "provider_latency": _ref_provider_latency,
}


def reference_rows(
    store: CampaignStore, view: str, campaign_id: str | None = None
) -> list[tuple]:
    """Reference rows for ``view``, ordered exactly like the SQL query."""
    if view not in _REFERENCES:
        raise AnalyticsError(
            f"unknown analytics view {view!r}; expected one of "
            f"{', '.join(sorted(_REFERENCES))}"
        )
    definition = VIEW_DEFINITIONS[view]
    rows = _REFERENCES[view](store)
    if campaign_id is not None:
        if not definition.campaign_filterable:
            raise AnalyticsError(f"view {view!r} is global, not per-campaign")
        rows = [row for row in rows if row[0] == campaign_id]
    return rows


def assert_consistent(
    store: CampaignStore, analytics: "Analytics | None" = None
) -> dict[str, int]:
    """Compare every SQL view against its Python reference, row-for-row.

    Returns ``{view: row_count}`` on success; raises
    :class:`~repro.utils.exceptions.AnalyticsError` naming the first
    mismatching view, row, and column otherwise.  When ``analytics`` is
    omitted a throw-away in-memory mirror is built from the store.
    """
    from repro.analytics.refresh import Analytics

    owned = analytics is None
    if owned:
        analytics = Analytics(store, path=":memory:")
    try:
        analytics.refresh()
        counts: dict[str, int] = {}
        for view, definition in VIEW_DEFINITIONS.items():
            got = analytics.rows(view)
            want = reference_rows(store, view)
            if len(got) != len(want):
                raise AnalyticsError(
                    f"view {view!r}: SQL returned {len(got)} rows, "
                    f"reference computed {len(want)}"
                )
            for index, (g_row, w_row) in enumerate(zip(got, want)):
                for column, g, w in zip(definition.columns, g_row, w_row):
                    if not (g == w):
                        raise AnalyticsError(
                            f"view {view!r} row {index} column {column!r}: "
                            f"SQL {g!r} != reference {w!r}"
                        )
            counts[view] = len(got)
        return counts
    finally:
        if owned:
            analytics.close()
