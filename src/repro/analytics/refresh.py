"""Incrementally refreshed analytics database over a campaign store.

:class:`Analytics` maintains a *separate* SQLite database (default:
``<store>.analytics`` next to a :class:`~repro.campaigns.store.SqliteStore`
file, ``:memory:`` otherwise) holding a replayed-event mirror plus the
views of :mod:`repro.analytics.views`.  The live store is only ever read —
for a file-backed store through its own ``mode=ro`` URI connection — so
report traffic can never contend the WAL write path or take the store's
process-level write lock.

Refresh is incremental: a ``cursor`` row in the ``meta`` table remembers
the highest event ``seq`` mirrored so far, and :meth:`Analytics.refresh`
pulls only events with ``seq > cursor`` (the same ``after=`` idiom the
serve layer uses for live tails).  Re-running a report after *N* new events
therefore costs O(N), not O(log).  Applying an event replays the
generation-collapse rule of :func:`repro.campaigns.store.replay_events`
one event at a time — for each ``(campaign, kind, iteration)`` key only the
newest generation survives — so after any refresh the mirror equals what a
from-scratch rebuild would produce, row for row and byte for byte.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Any

from repro.analytics.views import REPORT_SECTIONS, VIEW_DEFINITIONS, views_schema
from repro.campaigns.store import CampaignStore, SqliteStore
from repro.utils.exceptions import AnalyticsError

__all__ = ["Analytics", "REPORT_SCHEMA", "default_analytics_path"]

#: Schema tag stamped on every report payload (CLI ``--json`` and HTTP).
REPORT_SCHEMA = "repro.report/1"

_MIRROR_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id TEXT PRIMARY KEY,
    name        TEXT NOT NULL,
    status      TEXT NOT NULL,
    priority    INTEGER NOT NULL,
    budget      REAL NOT NULL,
    created_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS events (
    seq         INTEGER PRIMARY KEY,
    campaign_id TEXT NOT NULL,
    generation  INTEGER NOT NULL,
    iteration   INTEGER NOT NULL,
    kind        TEXT NOT NULL,
    payload     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_mirror_events_key
    ON events(campaign_id, kind, iteration);
"""


def default_analytics_path(store: CampaignStore) -> str:
    """Where the analytics database for ``store`` lives by default."""
    path = getattr(store, "path", None)
    if path and path != ":memory:":
        return f"{path}.analytics"
    return ":memory:"


class Analytics:
    """Read-only analytics layer over a :class:`CampaignStore`.

    Parameters
    ----------
    store:
        The campaign store to mirror.  A file-backed
        :class:`~repro.campaigns.store.SqliteStore` is read through a
        dedicated read-only URI connection; any other store (e.g.
        :class:`~repro.campaigns.store.InMemoryStore`) is read through the
        :class:`CampaignStore` protocol.
    path:
        Analytics database file; defaults to
        :func:`default_analytics_path`.
    """

    SCHEMA_VERSION = 1

    def __init__(self, store: CampaignStore, path: str | None = None) -> None:
        self.store = store
        self.path = path or default_analytics_path(store)
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.execute("PRAGMA busy_timeout=10000")
        if self.path != ":memory:":
            self._conn.execute("PRAGMA journal_mode=WAL")
        self._init_schema()

    # -- schema ------------------------------------------------------------------
    def _init_schema(self) -> None:
        with self._conn:
            self._conn.executescript(_MIRROR_SCHEMA)
            version = self._meta("schema_version")
            if version is not None and version != str(self.SCHEMA_VERSION):
                self._reset_locked()
            self._set_meta("schema_version", str(self.SCHEMA_VERSION))
            self._conn.executescript(views_schema())

    def _reset_locked(self) -> None:
        for name in VIEW_DEFINITIONS:
            self._conn.execute(f"DROP VIEW IF EXISTS {name}")
        self._conn.execute("DELETE FROM events")
        self._conn.execute("DELETE FROM campaigns")
        self._conn.execute("DELETE FROM meta")

    def _meta(self, key: str) -> str | None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else str(row[0])

    def _set_meta(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    # -- refresh -----------------------------------------------------------------
    @property
    def cursor(self) -> int:
        """Highest store event ``seq`` mirrored so far."""
        value = self._meta("cursor")
        return 0 if value is None else int(value)

    def refresh(self) -> dict[str, int]:
        """Mirror events appended since the last refresh; O(new events)."""
        after = self.cursor
        batch = self._pull_events(after)
        cursor = after
        kept = 0
        with self._conn:
            for seq, campaign_id, generation, iteration, kind, payload in batch:
                kept += self._apply_event(
                    seq, campaign_id, generation, iteration, kind, payload
                )
                cursor = max(cursor, seq)
            self._sync_campaigns()
            self._set_meta("cursor", str(cursor))
        return {
            "cursor": cursor,
            "events_seen": len(batch),
            "events_kept": kept,
            "campaigns": self._conn.execute(
                "SELECT COUNT(*) FROM campaigns"
            ).fetchone()[0],
        }

    def rebuild(self) -> dict[str, int]:
        """Drop the mirror and refresh from scratch (seq 0)."""
        with self._conn:
            self._conn.execute("DELETE FROM events")
            self._conn.execute("DELETE FROM campaigns")
            self._set_meta("cursor", "0")
        return self.refresh()

    def _apply_event(
        self,
        seq: int,
        campaign_id: str,
        generation: int,
        iteration: int,
        kind: str,
        payload: str,
    ) -> int:
        """Insert one event under the generation-collapse rule.

        Mirrors :func:`repro.campaigns.store.replay_events` incrementally:
        an event older than the newest generation already mirrored for its
        ``(campaign, kind, iteration)`` key is dropped; a newer one evicts
        the key's older rows first.
        """
        key = (campaign_id, kind, iteration)
        row = self._conn.execute(
            "SELECT MAX(generation) FROM events "
            "WHERE campaign_id = ? AND kind = ? AND iteration = ?",
            key,
        ).fetchone()
        newest = row[0]
        if newest is not None:
            if generation < newest:
                return 0
            if generation > newest:
                self._conn.execute(
                    "DELETE FROM events "
                    "WHERE campaign_id = ? AND kind = ? AND iteration = ? "
                    "AND generation < ?",
                    key + (generation,),
                )
        self._conn.execute(
            "INSERT INTO events (seq, campaign_id, generation, iteration, kind, "
            "payload) VALUES (?, ?, ?, ?, ?, ?)",
            (seq, campaign_id, generation, iteration, kind, payload),
        )
        return 1

    def _sync_campaigns(self) -> None:
        for record in self.store.list_campaigns():
            self._conn.execute(
                "INSERT INTO campaigns "
                "(campaign_id, name, status, priority, budget, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(campaign_id) DO UPDATE SET "
                "name = excluded.name, status = excluded.status, "
                "priority = excluded.priority, budget = excluded.budget, "
                "created_at = excluded.created_at",
                (
                    record.campaign_id,
                    record.name,
                    record.status,
                    int(record.priority),
                    float(record.spec.get("budget", 0.0)),
                    float(record.created_at),
                ),
            )

    def _pull_events(self, after: int) -> list[tuple[int, str, int, int, str, str]]:
        """New store events with ``seq > after``, in seq order.

        File-backed stores are read through a read-only URI connection so
        this never touches the store's write lock; other stores go through
        the :class:`CampaignStore` protocol and re-serialize payloads with
        the same ``json.dumps`` call :meth:`SqliteStore.append_event` uses,
        so both paths mirror identical payload text.
        """
        if isinstance(self.store, SqliteStore) and self.store.path != ":memory:":
            source = sqlite3.connect(
                f"file:{self.store.path}?mode=ro", uri=True, check_same_thread=False
            )
            try:
                source.execute("PRAGMA busy_timeout=10000")
                rows = source.execute(
                    "SELECT seq, campaign_id, generation, iteration, kind, payload "
                    "FROM events WHERE seq > ? ORDER BY seq",
                    (after,),
                ).fetchall()
            finally:
                source.close()
            return [
                (int(r[0]), str(r[1]), int(r[2]), int(r[3]), str(r[4]), str(r[5]))
                for r in rows
            ]
        batch: list[tuple[int, str, int, int, str, str]] = []
        for record in self.store.list_campaigns():
            for event in self.store.events(record.campaign_id, after=after):
                batch.append(
                    (
                        event.seq,
                        event.campaign_id,
                        event.generation,
                        event.iteration,
                        event.kind,
                        json.dumps(dict(event.payload)),
                    )
                )
        batch.sort(key=lambda row: row[0])
        return batch

    # -- queries -----------------------------------------------------------------
    def columns(self, view: str) -> tuple[str, ...]:
        return self._view(view).columns

    def rows(self, view: str, campaign_id: str | None = None) -> list[tuple]:
        """Deterministically ordered rows of one view."""
        definition = self._view(view)
        if campaign_id is not None and not definition.campaign_filterable:
            raise AnalyticsError(f"view {view!r} is global, not per-campaign")
        sql, params = definition.query(campaign_id)
        return [tuple(row) for row in self._conn.execute(sql, params).fetchall()]

    def report(self, kind: str, campaign_id: str | None = None) -> dict[str, Any]:
        """Schema-tagged ``repro.report/1`` payload for one report kind.

        The same payload backs ``cli report --json`` and the HTTP report
        endpoints, so the two surfaces are equal by construction.  Call
        :meth:`refresh` first to fold in newly appended events.
        """
        if kind not in REPORT_SECTIONS:
            raise AnalyticsError(
                f"unknown report {kind!r}; expected one of "
                f"{', '.join(sorted(REPORT_SECTIONS))}"
            )
        sections: dict[str, Any] = {}
        for view in REPORT_SECTIONS[kind]:
            definition = self._view(view)
            filter_id = campaign_id if definition.campaign_filterable else None
            if campaign_id is not None and not definition.campaign_filterable:
                raise AnalyticsError(
                    f"report {kind!r} is global, not per-campaign"
                )
            sections[view] = {
                "doc": definition.doc,
                "columns": list(definition.columns),
                "rows": [list(row) for row in self.rows(view, filter_id)],
            }
        return {
            "schema": REPORT_SCHEMA,
            "report": kind,
            "campaign_id": campaign_id,
            "cursor": self.cursor,
            "sections": sections,
        }

    @staticmethod
    def _view(name: str):
        try:
            return VIEW_DEFINITIONS[name]
        except KeyError:
            raise AnalyticsError(
                f"unknown analytics view {name!r}; expected one of "
                f"{', '.join(sorted(VIEW_DEFINITIONS))}"
            ) from None

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def remove(self) -> None:
        """Delete the analytics database file (tests and ``--rebuild``)."""
        self.close()
        if self.path != ":memory:":
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.unlink(self.path + suffix)
                except FileNotFoundError:
                    pass

    def __enter__(self) -> "Analytics":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
