"""Named SQL views over the mirrored campaign event log.

Every view reads the *analytics* database — a replayed-event mirror kept by
:class:`~repro.analytics.refresh.Analytics` — never the live store, so the
WAL write path of :class:`~repro.campaigns.store.SqliteStore` is never
contended by reporting traffic.  The views lean on SQLite's window
functions and JSON1 table-valued functions; every one of them has a pure
Python twin in :mod:`repro.analytics.reference` that is compared
row-for-row in tests and by ``cli report --verify``.

Determinism note: several views sum floating-point columns.  Plain
``SUM(...) GROUP BY`` leaves the addition order to the query planner, which
would make bit-exact comparison against the Python reference impossible,
so every float total is computed as a *running* window sum with an explicit
``ORDER BY`` (taking the final row of each partition).  Integer aggregates
are exact in any order and use ordinary ``GROUP BY``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ViewDef", "VIEW_DEFINITIONS", "REPORT_SECTIONS", "views_schema"]


@dataclass(frozen=True)
class ViewDef:
    """One named analytics view.

    Attributes
    ----------
    name:
        View name inside the analytics database.
    doc:
        One-line description (shown by ``cli report`` headers).
    columns:
        Output columns, in SELECT order.
    order_by:
        Deterministic ordering appended to every query of the view so SQL
        rows and reference rows can be compared positionally.
    campaign_filterable:
        Whether the view has a ``campaign_id`` column that per-campaign
        reports may filter on.
    sql:
        The ``CREATE VIEW`` body (a SELECT statement).
    """

    name: str
    doc: str
    columns: tuple[str, ...]
    order_by: str
    campaign_filterable: bool
    sql: str

    def create_sql(self) -> str:
        return f"CREATE VIEW IF NOT EXISTS {self.name} AS\n{self.sql}"

    def query(self, campaign_id: str | None = None) -> tuple[str, tuple]:
        """Deterministically ordered SELECT over the view."""
        sql = f"SELECT {', '.join(self.columns)} FROM {self.name}"
        params: tuple = ()
        if campaign_id is not None:
            if not self.campaign_filterable:
                raise ValueError(f"view {self.name!r} is not per-campaign")
            sql += " WHERE campaign_id = ?"
            params = (campaign_id,)
        return sql + f" ORDER BY {self.order_by}", params


_SLICE_TRAJECTORIES = """\
WITH iteration_slices AS (
    SELECT e.campaign_id,
           e.iteration,
           a.key AS slice,
           a.value AS acquired,
           json_extract(c.value, '$[0]') AS curve_b,
           json_extract(c.value, '$[1]') AS curve_a
    FROM events AS e
    JOIN json_each(e.payload, '$.acquired') AS a
    LEFT JOIN json_each(e.payload, '$.curve_parameters') AS c
        ON c.key = a.key
    WHERE e.kind = 'iteration'
)
SELECT campaign_id,
       iteration,
       slice,
       acquired,
       SUM(acquired) OVER (
           PARTITION BY campaign_id, slice
           ORDER BY iteration
           ROWS UNBOUNDED PRECEDING
       ) AS cum_acquired,
       curve_b,
       curve_a
FROM iteration_slices"""

_CAMPAIGN_COSTS = """\
SELECT e.campaign_id,
       e.iteration,
       json_extract(e.payload, '$.spent') AS spent,
       SUM(json_extract(e.payload, '$.spent')) OVER (
           PARTITION BY e.campaign_id
           ORDER BY e.iteration
           ROWS UNBOUNDED PRECEDING
       ) AS cum_spent,
       json_extract(e.payload, '$.limit') AS budget_limit,
       json_extract(e.payload, '$.imbalance_before') AS imbalance_before,
       json_extract(e.payload, '$.imbalance_after') AS imbalance_after
FROM events AS e
WHERE e.kind = 'iteration'"""

_FULFILLMENT_RATES = """\
WITH f AS (
    SELECT e.campaign_id,
           e.seq,
           json_extract(e.payload, '$.requested') AS requested,
           json_extract(e.payload, '$.effective') AS effective,
           json_extract(e.payload, '$.delivered') AS delivered,
           json_extract(e.payload, '$.shortfall') AS shortfall,
           json_extract(e.payload, '$.cost') AS cost,
           CASE WHEN json_array_length(e.payload, '$.provenance') > 1
                THEN 1 ELSE 0 END AS failover,
           CASE WHEN json_extract(e.payload, '$.status') != 'fulfilled'
                THEN 1 ELSE 0 END AS degraded
    FROM events AS e
    WHERE e.kind = 'fulfillment'
),
running AS (
    SELECT campaign_id,
           COUNT(*) OVER w AS fulfillments,
           SUM(requested) OVER w AS requested,
           SUM(effective) OVER w AS effective,
           SUM(delivered) OVER w AS delivered,
           SUM(shortfall) OVER w AS shortfall,
           SUM(cost) OVER w AS cost,
           SUM(failover) OVER w AS failovers,
           SUM(degraded) OVER w AS degraded,
           ROW_NUMBER() OVER w AS rn,
           COUNT(*) OVER (PARTITION BY campaign_id) AS total
    FROM f
    WINDOW w AS (PARTITION BY campaign_id ORDER BY seq ROWS UNBOUNDED PRECEDING)
),
per_campaign AS (
    SELECT * FROM running WHERE rn = total
)
SELECT c.campaign_id,
       COALESCE(p.fulfillments, 0) AS fulfillments,
       COALESCE(p.requested, 0) AS requested,
       COALESCE(p.effective, 0) AS effective,
       COALESCE(p.delivered, 0) AS delivered,
       COALESCE(p.shortfall, 0) AS shortfall,
       COALESCE(p.cost, 0.0) AS cost,
       COALESCE(p.failovers, 0) AS failovers,
       COALESCE(p.degraded, 0) AS degraded,
       CASE WHEN COALESCE(p.effective, 0) > 0
            THEN COALESCE(p.shortfall, 0) * 1.0 / p.effective
            ELSE 0.0 END AS shortfall_rate,
       CASE WHEN COALESCE(p.fulfillments, 0) > 0
            THEN COALESCE(p.failovers, 0) * 1.0 / p.fulfillments
            ELSE 0.0 END AS failover_rate
FROM campaigns AS c
LEFT JOIN per_campaign AS p ON p.campaign_id = c.campaign_id"""

_LANE_FAIRNESS = """\
WITH totals AS (
    SELECT c.campaign_id,
           c.priority,
           c.budget,
           CASE WHEN c.status = 'completed' THEN 1 ELSE 0 END AS completed,
           COALESCE((SELECT COUNT(*) FROM events AS e
                     WHERE e.campaign_id = c.campaign_id
                       AND e.kind = 'iteration'), 0) AS iterations,
           COALESCE((SELECT cc.cum_spent FROM campaign_costs AS cc
                     WHERE cc.campaign_id = c.campaign_id
                     ORDER BY cc.iteration DESC LIMIT 1), 0.0) AS spent
    FROM campaigns AS c
),
running AS (
    SELECT priority,
           COUNT(*) OVER lane AS campaigns,
           SUM(completed) OVER lane AS completed,
           SUM(iterations) OVER lane AS iterations,
           SUM(spent) OVER lane AS spent,
           SUM(budget) OVER lane AS budget,
           ROW_NUMBER() OVER lane AS rn,
           COUNT(*) OVER (PARTITION BY priority) AS total
    FROM totals
    WINDOW lane AS (PARTITION BY priority ORDER BY campaign_id
                    ROWS UNBOUNDED PRECEDING)
),
lanes AS (
    SELECT priority, campaigns, completed, iterations, spent, budget
    FROM running WHERE rn = total
),
grand_running AS (
    SELECT SUM(spent) OVER g AS total_spent,
           SUM(budget) OVER g AS total_budget,
           ROW_NUMBER() OVER g AS rn,
           COUNT(*) OVER () AS total
    FROM lanes
    WINDOW g AS (ORDER BY priority ROWS UNBOUNDED PRECEDING)
),
grand AS (
    SELECT total_spent, total_budget FROM grand_running WHERE rn = total
)
SELECT l.priority,
       l.campaigns,
       l.completed,
       l.iterations,
       l.spent,
       l.budget,
       CASE WHEN g.total_spent > 0
            THEN l.spent / g.total_spent ELSE 0.0 END AS spent_share,
       CASE WHEN g.total_budget > 0
            THEN l.budget / g.total_budget ELSE 0.0 END AS budget_share
FROM lanes AS l, grand AS g"""

_CACHE_TRENDS = """\
WITH params AS (
    SELECT e.campaign_id,
           e.iteration,
           j.key AS slice,
           j.value AS curve
    FROM events AS e,
         json_each(e.payload, '$.curve_parameters') AS j
    WHERE e.kind = 'iteration'
),
lagged AS (
    SELECT campaign_id,
           iteration,
           curve,
           LAG(curve) OVER (
               PARTITION BY campaign_id, slice ORDER BY iteration
           ) AS prev
    FROM params
)
SELECT campaign_id,
       iteration,
       COUNT(*) AS slices,
       SUM(CASE WHEN prev IS NOT NULL AND prev = curve
                THEN 1 ELSE 0 END) AS curve_reuses,
       SUM(CASE WHEN prev IS NOT NULL THEN 1 ELSE 0 END) AS reusable,
       CASE WHEN SUM(CASE WHEN prev IS NOT NULL THEN 1 ELSE 0 END) > 0
            THEN SUM(CASE WHEN prev IS NOT NULL AND prev = curve
                          THEN 1 ELSE 0 END) * 1.0
                 / SUM(CASE WHEN prev IS NOT NULL THEN 1 ELSE 0 END)
            ELSE 0.0 END AS reuse_rate
FROM lagged
GROUP BY campaign_id, iteration"""

_RESLICE_TRENDS = """\
SELECT e.campaign_id,
       e.seq,
       e.iteration,
       json_extract(e.payload, '$.slice_generation') AS slice_generation,
       MAX(json_extract(e.payload, '$.slice_generation')) OVER (
           PARTITION BY e.campaign_id
           ORDER BY e.seq
           ROWS UNBOUNDED PRECEDING
       ) AS max_generation,
       json_extract(e.payload, '$.method') AS method,
       json_array_length(e.payload, '$.slice_names') AS n_slices,
       json_extract(e.payload, '$.fingerprint') AS fingerprint
FROM events AS e
WHERE e.kind = 'reslice'"""

_ALERT_HISTORY = """\
SELECT e.campaign_id,
       e.seq,
       e.iteration,
       json_extract(e.payload, '$.rule') AS rule,
       json_extract(e.payload, '$.component') AS component,
       json_extract(e.payload, '$.severity') AS severity,
       json_extract(e.payload, '$.state') AS state,
       json_extract(e.payload, '$.value') AS value,
       json_extract(e.payload, '$.threshold') AS threshold,
       SUM(CASE WHEN json_extract(e.payload, '$.state') = 'fired'
                THEN 1 ELSE 0 END) OVER (
           PARTITION BY e.campaign_id, json_extract(e.payload, '$.rule')
           ORDER BY e.seq
           ROWS UNBOUNDED PRECEDING
       ) AS fired_count
FROM events AS e
WHERE e.kind = 'alert'"""

_TELEMETRY_SPANS = """\
SELECT e.campaign_id,
       e.seq,
       e.iteration,
       json_extract(e.payload, '$.name') AS name,
       json_extract(e.payload, '$.span_id') AS span_id,
       json_extract(e.payload, '$.parent_id') AS parent_id,
       json_extract(e.payload, '$.status') AS status,
       json_extract(e.payload, '$.duration') AS duration_seconds,
       json_extract(e.payload, '$.attributes.provider') AS provider
FROM events AS e
WHERE e.kind = 'telemetry'"""

_PROVIDER_LATENCY = """\
WITH p AS (
    SELECT e.campaign_id,
           e.seq,
           json_extract(e.payload, '$.attributes.provider') AS provider,
           json_extract(e.payload, '$.duration') AS duration
    FROM events AS e
    WHERE e.kind = 'telemetry'
      AND json_extract(e.payload, '$.name') = 'acquisition.provider'
),
running AS (
    SELECT campaign_id,
           provider,
           COUNT(*) OVER w AS calls,
           SUM(duration) OVER w AS total_seconds,
           MAX(duration) OVER w AS max_seconds,
           ROW_NUMBER() OVER w AS rn,
           COUNT(*) OVER (PARTITION BY campaign_id, provider) AS total
    FROM p
    WINDOW w AS (PARTITION BY campaign_id, provider ORDER BY seq
                 ROWS UNBOUNDED PRECEDING)
),
per_provider AS (
    SELECT campaign_id, provider, calls, total_seconds, max_seconds
    FROM running WHERE rn = total
)
SELECT campaign_id,
       provider,
       calls,
       total_seconds,
       total_seconds / calls AS mean_seconds,
       max_seconds,
       ROW_NUMBER() OVER (
           PARTITION BY campaign_id
           ORDER BY total_seconds DESC, provider
       ) AS rank
FROM per_provider"""

_CAMPAIGN_ROLLUP = """\
SELECT c.campaign_id,
       c.name,
       c.status,
       c.priority,
       c.budget,
       COALESCE((SELECT COUNT(*) FROM events AS e
                 WHERE e.campaign_id = c.campaign_id
                   AND e.kind = 'iteration'), 0) AS iterations,
       COALESCE((SELECT cc.cum_spent FROM campaign_costs AS cc
                 WHERE cc.campaign_id = c.campaign_id
                 ORDER BY cc.iteration DESC LIMIT 1), 0.0) AS spent,
       COALESCE((SELECT COUNT(*) FROM events AS e
                 WHERE e.campaign_id = c.campaign_id
                   AND e.kind = 'fulfillment'), 0) AS fulfillments,
       COALESCE((SELECT fr.shortfall FROM fulfillment_rates AS fr
                 WHERE fr.campaign_id = c.campaign_id), 0) AS shortfall,
       COALESCE((SELECT MAX(json_extract(e.payload, '$.slice_generation'))
                 FROM events AS e
                 WHERE e.campaign_id = c.campaign_id
                   AND e.kind = 'reslice'), 0) AS slice_generation,
       (SELECT COUNT(*) FROM events AS e
        WHERE e.campaign_id = c.campaign_id) AS events
FROM campaigns AS c"""


#: Every analytics view, keyed by name.
VIEW_DEFINITIONS: dict[str, ViewDef] = {
    view.name: view
    for view in (
        ViewDef(
            name="campaign_rollup",
            doc="one-line health summary per campaign",
            columns=(
                "campaign_id",
                "name",
                "status",
                "priority",
                "budget",
                "iterations",
                "spent",
                "fulfillments",
                "shortfall",
                "slice_generation",
                "events",
            ),
            order_by="campaign_id",
            campaign_filterable=True,
            sql=_CAMPAIGN_ROLLUP,
        ),
        ViewDef(
            name="slice_trajectories",
            doc="per-slice acquisition and learning-curve trajectory",
            columns=(
                "campaign_id",
                "iteration",
                "slice",
                "acquired",
                "cum_acquired",
                "curve_b",
                "curve_a",
            ),
            order_by="campaign_id, iteration, slice",
            campaign_filterable=True,
            sql=_SLICE_TRAJECTORIES,
        ),
        ViewDef(
            name="campaign_costs",
            doc="per-iteration spend and imbalance trajectory",
            columns=(
                "campaign_id",
                "iteration",
                "spent",
                "cum_spent",
                "budget_limit",
                "imbalance_before",
                "imbalance_after",
            ),
            order_by="campaign_id, iteration",
            campaign_filterable=True,
            sql=_CAMPAIGN_COSTS,
        ),
        ViewDef(
            name="fulfillment_rates",
            doc="per-campaign shortfall and provider-failover rates",
            columns=(
                "campaign_id",
                "fulfillments",
                "requested",
                "effective",
                "delivered",
                "shortfall",
                "cost",
                "failovers",
                "degraded",
                "shortfall_rate",
                "failover_rate",
            ),
            order_by="campaign_id",
            campaign_filterable=True,
            sql=_FULFILLMENT_RATES,
        ),
        ViewDef(
            name="lane_fairness",
            doc="scheduler fairness: spend share vs budget share per priority lane",
            columns=(
                "priority",
                "campaigns",
                "completed",
                "iterations",
                "spent",
                "budget",
                "spent_share",
                "budget_share",
            ),
            order_by="priority",
            campaign_filterable=False,
            sql=_LANE_FAIRNESS,
        ),
        ViewDef(
            name="cache_trends",
            doc="per-iteration curve-parameter reuse (warm-cache proxy)",
            columns=(
                "campaign_id",
                "iteration",
                "slices",
                "curve_reuses",
                "reusable",
                "reuse_rate",
            ),
            order_by="campaign_id, iteration",
            campaign_filterable=True,
            sql=_CACHE_TRENDS,
        ),
        ViewDef(
            name="reslice_trends",
            doc="dynamic re-slicing events and slice-generation high-water mark",
            columns=(
                "campaign_id",
                "seq",
                "iteration",
                "slice_generation",
                "max_generation",
                "method",
                "n_slices",
                "fingerprint",
            ),
            order_by="campaign_id, seq",
            campaign_filterable=True,
            sql=_RESLICE_TRENDS,
        ),
        ViewDef(
            name="alert_history",
            doc="durable monitor alerts with a running per-rule fired count",
            columns=(
                "campaign_id",
                "seq",
                "iteration",
                "rule",
                "component",
                "severity",
                "state",
                "value",
                "threshold",
                "fired_count",
            ),
            order_by="campaign_id, seq",
            campaign_filterable=True,
            sql=_ALERT_HISTORY,
        ),
        ViewDef(
            name="telemetry_spans",
            doc="persisted telemetry spans (the per-iteration time skeleton)",
            columns=(
                "campaign_id",
                "seq",
                "iteration",
                "name",
                "span_id",
                "parent_id",
                "status",
                "duration_seconds",
                "provider",
            ),
            order_by="campaign_id, seq",
            campaign_filterable=True,
            sql=_TELEMETRY_SPANS,
        ),
        ViewDef(
            name="provider_latency",
            doc="per-provider acquisition latency with slowest-first ranking",
            columns=(
                "campaign_id",
                "provider",
                "calls",
                "total_seconds",
                "mean_seconds",
                "max_seconds",
                "rank",
            ),
            order_by="campaign_id, rank",
            campaign_filterable=True,
            sql=_PROVIDER_LATENCY,
        ),
    )
}

#: Report kinds exposed by ``cli report`` and the serve layer, mapped to the
#: analytics views each one renders (in section order).
REPORT_SECTIONS: dict[str, tuple[str, ...]] = {
    "summary": ("campaign_rollup",),
    "slices": ("slice_trajectories", "campaign_costs"),
    "fulfillment": ("fulfillment_rates", "provider_latency"),
    "fairness": ("lane_fairness",),
    "cache": ("cache_trends", "reslice_trends"),
    "telemetry": ("telemetry_spans", "provider_latency"),
    "alerts": ("alert_history",),
}


def views_schema() -> str:
    """``CREATE VIEW IF NOT EXISTS`` statements for every view.

    ``campaign_rollup`` and ``lane_fairness`` reference other views, so the
    definition order matters; Python dicts preserve insertion order but the
    dependency-safe order is made explicit here.
    """
    ordered = (
        "slice_trajectories",
        "campaign_costs",
        "fulfillment_rates",
        "lane_fairness",
        "cache_trends",
        "reslice_trends",
        "alert_history",
        "telemetry_spans",
        "provider_latency",
        "campaign_rollup",
    )
    return ";\n".join(VIEW_DEFINITIONS[name].create_sql() for name in ordered) + ";"
