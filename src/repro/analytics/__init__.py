"""Analytics subsystem: SQL views over the campaign event log.

A read-everything / write-nothing layer on top of the campaign store:

* :mod:`~repro.analytics.views` — named SQL views (window functions over
  the replayed event mirror): trajectories, shortfall/failover rates,
  scheduler fairness, cache and reslice trends.
* :mod:`~repro.analytics.refresh` — :class:`Analytics`, the incrementally
  refreshed analytics database (``after=seq`` cursor, O(new events)).
* :mod:`~repro.analytics.reference` — pure-Python reference
  implementations and :func:`assert_consistent`, the row-for-row
  SQL-vs-Python checker behind ``cli report --verify``.
"""

from repro.analytics.refresh import REPORT_SCHEMA, Analytics, default_analytics_path
from repro.analytics.reference import assert_consistent, reference_rows
from repro.analytics.views import REPORT_SECTIONS, VIEW_DEFINITIONS, ViewDef

__all__ = [
    "Analytics",
    "REPORT_SCHEMA",
    "REPORT_SECTIONS",
    "VIEW_DEFINITIONS",
    "ViewDef",
    "assert_consistent",
    "default_analytics_path",
    "reference_rows",
]
