"""Benchmark-regression watchdog over the committed ``BENCH_*.json`` points.

Every benchmark in ``benchmarks/`` records its numbers to a committed
reference file (``BENCH_telemetry.json``, ``BENCH_monitor.json``, ...).
This module is the first consumer of that trajectory: it loads the
reference points, compares a fresh run's numbers against them with
per-metric tolerances, and reports :class:`Regression` records — the
``cli monitor bench`` subcommand and the CI smoke jobs surface them.

Tolerance policy is keyed by metric-name convention, matching how the
benchmarks name their numbers:

* ``*_s`` (seconds) — timing; regression when the fresh value exceeds the
  reference by more than ``rel_pct`` percent (timing is noisy, so the
  default headroom is generous).  Lower is always fine.
* ``*_pct`` (percentage points) — overhead gates; regression when the
  fresh value exceeds the reference by more than ``abs_pct`` points.
* booleans — invariants (``byte_identical`` and friends); a reference
  ``true`` that comes back ``false`` is a **critical** regression, exact
  on both sides otherwise informational.
* everything else (counts, lists, strings) — informational only; shapes
  legitimately drift as the workload grows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.utils.exceptions import ConfigurationError

__all__ = [
    "Regression",
    "compare_numbers",
    "load_benchmarks",
    "watchdog",
]

#: Default headroom for ``*_s`` timing metrics, relative percent.
DEFAULT_REL_PCT = 25.0

#: Default headroom for ``*_pct`` gate metrics, absolute points.
DEFAULT_ABS_PCT = 10.0

_PREFIX = "BENCH_"


@dataclass(frozen=True)
class Regression:
    """One metric that moved outside its tolerance."""

    benchmark: str
    metric: str
    reference: Any
    fresh: Any
    limit: float | None
    severity: str  # "degraded" | "critical"
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "metric": self.metric,
            "reference": self.reference,
            "fresh": self.fresh,
            "limit": self.limit,
            "severity": self.severity,
            "message": self.message,
        }


def load_benchmarks(directory: str | Path) -> dict[str, dict[str, Any]]:
    """Committed reference points: ``{"telemetry": {...}, ...}``.

    Scans ``directory`` for ``BENCH_<name>.json`` files; names are
    lower-cased.  Raises when the directory does not exist.
    """
    root = Path(directory)
    if not root.is_dir():
        raise ConfigurationError(
            f"benchmark reference directory not found: {root}"
        )
    references = {}
    for path in sorted(root.glob(f"{_PREFIX}*.json")):
        name = path.stem[len(_PREFIX):].lower()
        try:
            references[name] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"unreadable benchmark reference {path}: {exc}"
            ) from exc
    return references


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_numbers(
    benchmark: str,
    reference: Mapping[str, Any],
    fresh: Mapping[str, Any],
    *,
    rel_pct: float = DEFAULT_REL_PCT,
    abs_pct: float = DEFAULT_ABS_PCT,
) -> list[Regression]:
    """Regressions of one fresh run against one committed reference.

    Metrics present on only one side are skipped — references gain and
    lose fields as benchmarks evolve, and that is not a perf regression.
    """
    regressions = []
    for metric in sorted(reference):
        if metric not in fresh:
            continue
        ref, new = reference[metric], fresh[metric]
        if isinstance(ref, bool):
            if ref is True and new is not True:
                regressions.append(Regression(
                    benchmark=benchmark,
                    metric=metric,
                    reference=ref,
                    fresh=new,
                    limit=None,
                    severity="critical",
                    message=f"invariant {metric!r} no longer holds",
                ))
            continue
        if not (_is_number(ref) and _is_number(new)):
            continue
        if metric.endswith("_s"):
            limit = ref * (1.0 + rel_pct / 100.0)
            if new > limit:
                regressions.append(Regression(
                    benchmark=benchmark,
                    metric=metric,
                    reference=ref,
                    fresh=new,
                    limit=round(limit, 6),
                    severity="degraded",
                    message=(
                        f"{metric} rose {100.0 * (new / ref - 1.0):.1f}% over "
                        f"the reference (headroom {rel_pct:g}%)"
                    ),
                ))
        elif metric.endswith("_pct"):
            limit = ref + abs_pct
            if new > limit:
                regressions.append(Regression(
                    benchmark=benchmark,
                    metric=metric,
                    reference=ref,
                    fresh=new,
                    limit=round(limit, 6),
                    severity="degraded",
                    message=(
                        f"{metric} rose {new - ref:.2f} points over the "
                        f"reference (headroom {abs_pct:g} points)"
                    ),
                ))
    return regressions


def watchdog(
    directory: str | Path,
    fresh: Mapping[str, Mapping[str, Any]],
    *,
    rel_pct: float = DEFAULT_REL_PCT,
    abs_pct: float = DEFAULT_ABS_PCT,
) -> dict[str, Any]:
    """Compare fresh benchmark runs against the committed references.

    ``fresh`` maps benchmark name (as in :func:`load_benchmarks`) to that
    run's numbers.  Names with no committed reference are reported under
    ``"unmatched"`` rather than silently dropped.
    """
    references = load_benchmarks(directory)
    regressions: list[Regression] = []
    checked = []
    unmatched = []
    for name in sorted(fresh):
        reference = references.get(name.lower())
        if reference is None:
            unmatched.append(name)
            continue
        checked.append(name.lower())
        regressions.extend(compare_numbers(
            name.lower(), reference, fresh[name],
            rel_pct=rel_pct, abs_pct=abs_pct,
        ))
    status = "ok"
    if regressions:
        status = "critical" if any(
            r.severity == "critical" for r in regressions
        ) else "degraded"
    return {
        "status": status,
        "checked": checked,
        "unmatched": unmatched,
        "references": sorted(references),
        "regressions": [r.to_dict() for r in regressions],
    }
