"""Health & alerting: SLO rules, rolling-window evaluation, regression watch.

The layer that turns PR 9's raw telemetry into verdicts:

* :mod:`~repro.monitor.rules` — declarative, frozen :class:`AlertRule`
  definitions behind a ``register_rule`` registry, with built-ins for
  provider failover, fulfillment shortfall, span errors, cache hit-rate
  collapse, and scheduler lane starvation.
* :mod:`~repro.monitor.windows` — seq-cursored incremental rolling
  windows (keyed by iteration / evaluation index, never wall-clock).
* :mod:`~repro.monitor.health` — :class:`CampaignMonitor` (folds a
  campaign's durable events into persisted ``alert`` events) and
  :class:`HealthEvaluator` (per-component ok/degraded/critical verdicts
  behind ``GET /health/deep`` and ``cli monitor status``).
* :mod:`~repro.monitor.regression` — the benchmark watchdog comparing
  fresh runs against the committed ``benchmarks/BENCH_*.json`` points.

Monitoring reads events and metric snapshots and *appends* alert events;
it never touches tuner state, so monitored and unmonitored runs produce
byte-identical tuning results.
"""

from repro.monitor.health import (
    STATES,
    Alert,
    CampaignMonitor,
    HealthEvaluator,
    alert_history,
    worst_status,
)
from repro.monitor.regression import (
    Regression,
    compare_numbers,
    load_benchmarks,
    watchdog,
)
from repro.monitor.rules import (
    COMPONENTS,
    SEVERITIES,
    AlertRule,
    available_rules,
    campaign_rules,
    get_rule,
    is_rule,
    register_rule,
    rule_descriptions,
    service_rules,
    unregister_rule,
)
from repro.monitor.windows import RollingWindow

__all__ = [
    "COMPONENTS",
    "SEVERITIES",
    "STATES",
    "Alert",
    "AlertRule",
    "CampaignMonitor",
    "HealthEvaluator",
    "Regression",
    "RollingWindow",
    "alert_history",
    "available_rules",
    "campaign_rules",
    "compare_numbers",
    "get_rule",
    "is_rule",
    "load_benchmarks",
    "register_rule",
    "rule_descriptions",
    "service_rules",
    "unregister_rule",
    "watchdog",
    "worst_status",
]
