"""Seq-cursored incremental rolling windows for rule evaluation.

A :class:`RollingWindow` holds the last ``span`` samples of one signal,
each keyed by a monotonically increasing *index* — an iteration number for
campaign-scope rules, an evaluation counter for service-scope rules —
never a wall-clock timestamp.  Folding the same event log through the same
window therefore always yields the same means and the same alert
transitions, which is what keeps monitoring out of the determinism
surface: a warmed-up window (replayed on resume) is indistinguishable from
one that watched the run live.

Updates are O(1) amortised (append + bounded eviction); aggregates are
recomputed from the retained samples in insertion order so float summation
order is fixed and replay-stable.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.utils.exceptions import ConfigurationError

__all__ = ["RollingWindow"]


class RollingWindow:
    """The last ``span`` (index, value) samples of one signal.

    Parameters
    ----------
    span:
        Maximum number of samples retained; pushing an additional sample
        evicts the oldest.  Must be positive.
    """

    __slots__ = ("span", "_samples")

    def __init__(self, span: int) -> None:
        if span < 1:
            raise ConfigurationError(f"window span must be >= 1, got {span}")
        self.span = int(span)
        self._samples: deque[tuple[int, float]] = deque(maxlen=self.span)

    def push(self, index: int, value: float) -> None:
        """Record ``value`` at ``index``; indices must not decrease."""
        index = int(index)
        if self._samples and index < self._samples[-1][0]:
            raise ConfigurationError(
                f"window indices must be monotonic: got {index} after "
                f"{self._samples[-1][0]}"
            )
        self._samples.append((index, float(value)))

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[tuple[int, float]]:
        return iter(self._samples)

    @property
    def values(self) -> tuple[float, ...]:
        """Retained sample values, oldest first."""
        return tuple(value for _, value in self._samples)

    @property
    def last_index(self) -> int | None:
        """Index of the newest sample, or ``None`` when empty."""
        return self._samples[-1][0] if self._samples else None

    def mean(self) -> float:
        """Mean of the retained samples (0.0 when empty).

        Summed in insertion order so the float result is identical across
        live evaluation and replay warm-up.
        """
        if not self._samples:
            return 0.0
        total = 0.0
        for _, value in self._samples:
            total += value
        return total / len(self._samples)

    def state_dict(self) -> dict:
        """Serializable window state (for introspection/tests)."""
        return {
            "span": self.span,
            "samples": [[index, value] for index, value in self._samples],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RollingWindow(span={self.span}, samples={list(self._samples)})"
