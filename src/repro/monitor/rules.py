"""Declarative SLO alert rules and their registry.

An :class:`AlertRule` names a *signal* (a derived ratio the evaluators
compute from durable events or metric snapshots), a predicate over a
rolling window of that signal, and what a breach means: which component
degrades, how severely, and how long to hold off before re-firing after a
recovery (debounce, in window indices — iterations for campaign-scope
rules, evaluation steps for service-scope ones; never wall-clock).

Rules come in two scopes:

``campaign``
    Evaluated by :class:`~repro.monitor.health.CampaignMonitor` from the
    campaign's own event log, once per ``iteration`` event.  Transitions
    are persisted as durable ``alert`` events, so the alert sequence is
    part of the replayable history and byte-identical across executors,
    store backends, and crash-resume.

``service``
    Evaluated by :class:`~repro.monitor.health.HealthEvaluator` from
    successive :class:`~repro.telemetry.MetricsRegistry` snapshots —
    process-wide signals (shared cache, scheduler lanes) that no single
    campaign owns.  These shape live health verdicts only and are never
    persisted.

The registry mirrors :mod:`repro.core.registry`: string-keyed,
case-insensitive, overwrite-guarded, so operators can register their own
rules next to the built-ins::

    from repro.monitor import AlertRule, register_rule

    register_rule(AlertRule(
        name="reslice_churn",
        component="engine",
        scope="campaign",
        signal="failover_rate",
        predicate="gt",
        threshold=0.9,
        window=5,
        min_samples=3,
        severity="degraded",
        debounce=3,
        description="almost every recent iteration needed provider failover",
    ))
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.exceptions import ConfigurationError

__all__ = [
    "COMPONENTS",
    "PREDICATES",
    "SCOPES",
    "SEVERITIES",
    "AlertRule",
    "available_rules",
    "campaign_rules",
    "get_rule",
    "is_rule",
    "register_rule",
    "rule_descriptions",
    "service_rules",
    "unregister_rule",
]

#: Components a rule can degrade (the axes of ``GET /health/deep``).
COMPONENTS = ("engine", "cache", "acquisition", "scheduler", "serve")

#: Alert severities, mildest first.  ``critical`` flips ``/health/deep``
#: to 503; ``degraded`` keeps it 200 but marks the component.
SEVERITIES = ("degraded", "critical")

#: Where a rule's signal comes from (see module docstring).
SCOPES = ("campaign", "service")

#: Supported breach predicates: signal strictly above / below threshold.
PREDICATES = ("gt", "lt")


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO rule.

    Attributes
    ----------
    name:
        Registry key (case-insensitive, unique).
    component:
        Which :data:`COMPONENTS` entry a breach degrades.
    scope:
        ``"campaign"`` (event-log driven, persisted) or ``"service"``
        (metric-snapshot driven, live only).
    signal:
        Name of the derived sample the evaluator feeds the rule — e.g.
        ``failover_rate``; multiple rules may watch one signal.
    predicate / threshold:
        The rule breaches when the rolling-window mean of the signal is
        strictly ``gt``/``lt`` the threshold.
    window:
        Rolling-window length in samples (iterations / evaluations).
    min_samples:
        Evaluate only once the window holds at least this many samples,
        so a single noisy iteration cannot trip an alert.
    severity:
        One of :data:`SEVERITIES`.
    debounce:
        After a resolve at index ``i``, suppress re-firing until index
        ``i + debounce`` — anti-flap hysteresis in window indices.
    description:
        One-line summary shown by ``cli monitor rules``.
    """

    name: str
    component: str
    scope: str
    signal: str
    predicate: str
    threshold: float
    window: int
    min_samples: int
    severity: str
    debounce: int
    description: str = ""

    def __post_init__(self) -> None:
        if self.component not in COMPONENTS:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown component {self.component!r}; "
                f"expected one of {', '.join(COMPONENTS)}"
            )
        if self.scope not in SCOPES:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown scope {self.scope!r}; "
                f"expected one of {', '.join(SCOPES)}"
            )
        if self.predicate not in PREDICATES:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown predicate {self.predicate!r}; "
                f"expected one of {', '.join(PREDICATES)}"
            )
        if self.severity not in SEVERITIES:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown severity {self.severity!r}; "
                f"expected one of {', '.join(SEVERITIES)}"
            )
        if self.window < 1:
            raise ConfigurationError(
                f"rule {self.name!r}: window must be >= 1, got {self.window}"
            )
        if not 1 <= self.min_samples <= self.window:
            raise ConfigurationError(
                f"rule {self.name!r}: min_samples must be in "
                f"[1, window={self.window}], got {self.min_samples}"
            )
        if self.debounce < 0:
            raise ConfigurationError(
                f"rule {self.name!r}: debounce must be >= 0, "
                f"got {self.debounce}"
            )

    def breaches(self, value: float) -> bool:
        """Whether ``value`` violates the rule's predicate."""
        if self.predicate == "gt":
            return value > self.threshold
        return value < self.threshold

    def to_dict(self) -> dict:
        """JSON-friendly view (``cli monitor rules --json``)."""
        return {
            "name": self.name,
            "component": self.component,
            "scope": self.scope,
            "signal": self.signal,
            "predicate": self.predicate,
            "threshold": self.threshold,
            "window": self.window,
            "min_samples": self.min_samples,
            "severity": self.severity,
            "debounce": self.debounce,
            "description": self.description,
        }


_RULES: dict[str, AlertRule] = {}


def _normalize(name: str) -> str:
    return name.strip().lower()


def register_rule(rule: AlertRule, *, overwrite: bool = False) -> AlertRule:
    """Register ``rule`` under its (case-insensitive) name.

    Raises :class:`~repro.utils.exceptions.ConfigurationError` when the
    name is taken and ``overwrite`` is false, so typos don't silently
    shadow built-ins.
    """
    key = _normalize(rule.name)
    if not key:
        raise ConfigurationError("alert rule name must be non-empty")
    if not overwrite and key in _RULES:
        raise ConfigurationError(
            f"alert rule {rule.name!r} is already registered; pass "
            f"overwrite=True to replace it"
        )
    if rule.name != key:
        rule = replace(rule, name=key)
    _RULES[key] = rule
    return rule


def unregister_rule(name: str) -> None:
    """Remove a registration (primarily for tests tearing down fixtures)."""
    _RULES.pop(_normalize(name), None)


def get_rule(name: str) -> AlertRule:
    """The rule registered under ``name``; raises on unknown names."""
    rule = _RULES.get(_normalize(name))
    if rule is None:
        raise ConfigurationError(
            f"unknown alert rule {name!r}; registered rules: "
            f"{', '.join(available_rules())}"
        )
    return rule


def is_rule(name: str) -> bool:
    """Whether ``name`` resolves to a registered rule."""
    return _normalize(name) in _RULES


def available_rules() -> tuple[str, ...]:
    """Sorted names of every registered rule."""
    return tuple(sorted(_RULES))


def rule_descriptions() -> dict[str, str]:
    """Mapping of rule name to its one-line description."""
    return {name: _RULES[name].description for name in available_rules()}


def campaign_rules() -> tuple[AlertRule, ...]:
    """Campaign-scope rules in deterministic (sorted-name) order."""
    return tuple(
        _RULES[name] for name in available_rules()
        if _RULES[name].scope == "campaign"
    )


def service_rules() -> tuple[AlertRule, ...]:
    """Service-scope rules in deterministic (sorted-name) order."""
    return tuple(
        _RULES[name] for name in available_rules()
        if _RULES[name].scope == "service"
    )


# -- built-in rules ------------------------------------------------------------
#
# Campaign scope: signals derived from durable events, one sample per
# iteration (see CampaignMonitor for the exact sample definitions).

register_rule(AlertRule(
    name="provider_failover",
    component="acquisition",
    scope="campaign",
    signal="failover_rate",
    predicate="gt",
    threshold=0.4,
    window=3,
    min_samples=2,
    severity="degraded",
    debounce=2,
    description=(
        "most recent fulfillments needed failover, retries, or fell short "
        "(provenance > 1 provider, rounds > 1, or partial/empty status)"
    ),
))

register_rule(AlertRule(
    name="fulfillment_shortfall",
    component="acquisition",
    scope="campaign",
    signal="shortfall_rate",
    predicate="gt",
    threshold=0.2,
    window=3,
    min_samples=2,
    severity="critical",
    debounce=2,
    description=(
        "providers delivered well under the effective request over the "
        "recent window (undelivered / requested examples > 20%)"
    ),
))

register_rule(AlertRule(
    name="span_error_rate",
    component="engine",
    scope="campaign",
    signal="span_error_rate",
    predicate="gt",
    threshold=0.05,
    window=3,
    min_samples=1,
    severity="critical",
    debounce=2,
    description=(
        "persisted telemetry spans report errors (traced blocks raising) "
        "in the recent window; only evaluated when tracing is enabled"
    ),
))

# Service scope: signals derived from successive metrics-registry
# snapshots (see HealthEvaluator.observe for the exact sample definitions).

register_rule(AlertRule(
    name="cache_hit_collapse",
    component="cache",
    scope="service",
    signal="cache_hit_rate",
    predicate="lt",
    threshold=0.1,
    window=5,
    min_samples=3,
    severity="degraded",
    debounce=5,
    description=(
        "the shared result cache stopped serving hits "
        "(engine.cache_hits / lookups under 10% across recent snapshots)"
    ),
))

register_rule(AlertRule(
    name="lane_starvation",
    component="scheduler",
    scope="service",
    signal="lane_min_share",
    predicate="lt",
    threshold=0.05,
    window=5,
    min_samples=3,
    severity="degraded",
    debounce=5,
    description=(
        "with multiple priority lanes active, the coldest lane received "
        "under 5% of scheduler steps"
    ),
))
