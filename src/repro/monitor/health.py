"""Rolling-window rule evaluation over event logs and metric snapshots.

Two evaluators share the :class:`~repro.monitor.rules.AlertRule` vocabulary:

:class:`CampaignMonitor`
    Owned by a running :class:`~repro.campaigns.campaign.Campaign`.  It
    folds the campaign's *own durable events* in seq order — fulfillment
    summaries and persisted telemetry spans accumulate, and every
    ``iteration`` event triggers one evaluation of the campaign-scope
    rules.  Transitions (fired/resolved) come back as :class:`Alert`
    records which the campaign persists as durable ``alert`` events.
    Because the fold is a pure function of the event log (windows keyed by
    iteration, never wall-clock), replaying the log through a fresh
    monitor reproduces the exact alert sequence — which is also how
    crash-resume warms the monitor back up to its pre-crash state.

:class:`HealthEvaluator`
    Process-wide.  Folds successive :class:`~repro.telemetry.MetricsRegistry`
    snapshots through the service-scope rules (windows keyed by an
    evaluation counter), and combines the result with the durable alert
    state of non-terminal campaigns into per-component health verdicts:
    ``ok`` / ``degraded`` / ``critical`` for each of ``engine``, ``cache``,
    ``acquisition``, ``scheduler``, ``serve``.  The daemon's
    ``GET /health/deep`` returns 503 while any component is critical.

Alert payloads never embed event seqs or generations — those differ
across crash-resume generations — only rule identity, iteration index,
and the windowed value, so a resumed run re-appends byte-identical
``alert`` events and generation collapse yields one consistent history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.campaigns.store import (
    COMPLETED,
    FAILED,
    PAUSED,
    CampaignEvent,
    CampaignStore,
    replay_events,
)
from repro.monitor.rules import (
    COMPONENTS,
    AlertRule,
    campaign_rules,
    service_rules,
)
from repro.monitor.windows import RollingWindow

__all__ = [
    "STATES",
    "Alert",
    "CampaignMonitor",
    "HealthEvaluator",
    "alert_history",
    "worst_status",
]

#: Health states, healthiest first; a component's verdict is the worst
#: state among its active alerts.
STATES = ("ok", "degraded", "critical")

#: Minimum scheduler steps before lane-share signals are meaningful.
_MIN_LANE_STEPS = 20

#: Fulfillment statuses that never count as provider trouble.
_BENIGN_STATUSES = ("fulfilled", "skipped")


def worst_status(states: Iterable[str]) -> str:
    """The most severe of ``states`` (``ok`` when empty)."""
    worst = 0
    for state in states:
        worst = max(worst, STATES.index(state))
    return STATES[worst]


@dataclass(frozen=True)
class Alert:
    """One rule transition: a rule started (or stopped) breaching.

    ``value`` is the rolling-window mean that crossed (or re-crossed) the
    threshold; ``iteration`` is the window index of the transition — an
    iteration number for campaign-scope rules (-1 for resolutions emitted
    at campaign completion), an evaluation counter for service-scope
    rules.  Deliberately free of seqs, generations, and timestamps: the
    payload must be byte-identical when a resumed run re-evaluates the
    same iteration.
    """

    rule: str
    component: str
    severity: str
    state: str  # "fired" | "resolved"
    value: float
    threshold: float
    window: int
    iteration: int
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "component": self.component,
            "severity": self.severity,
            "state": self.state,
            "value": self.value,
            "threshold": self.threshold,
            "window": self.window,
            "iteration": self.iteration,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Alert":
        return cls(
            rule=str(data["rule"]),
            component=str(data["component"]),
            severity=str(data["severity"]),
            state=str(data["state"]),
            value=float(data["value"]),
            threshold=float(data["threshold"]),
            window=int(data["window"]),
            iteration=int(data["iteration"]),
            message=str(data.get("message", "")),
        )


def _transition(
    rule: AlertRule, state: str, value: float, iteration: int, message: str
) -> Alert:
    return Alert(
        rule=rule.name,
        component=rule.component,
        severity=rule.severity,
        state=state,
        value=value,
        threshold=rule.threshold,
        window=rule.window,
        iteration=iteration,
        message=message,
    )


class _RuleState:
    """Shared fired/resolved bookkeeping for one rule's window."""

    __slots__ = ("rule", "window", "active", "resolved_at")

    def __init__(self, rule: AlertRule) -> None:
        self.rule = rule
        self.window = RollingWindow(rule.window)
        self.active = False
        self.resolved_at: int | None = None

    def step(self, index: int, value: float | None) -> Alert | None:
        """Push one sample (when present) and return any transition.

        ``None`` samples leave the window untouched and emit nothing —
        no new evidence, no state change.  Re-firing within ``debounce``
        indices of the last resolve is suppressed (anti-flap).
        """
        rule = self.rule
        if value is None:
            return None
        self.window.push(index, value)
        if len(self.window) < rule.min_samples:
            return None
        mean = self.window.mean()
        breaching = rule.breaches(mean)
        if breaching and not self.active:
            if (
                self.resolved_at is not None
                and index - self.resolved_at < rule.debounce
            ):
                return None
            self.active = True
            comparison = ">" if rule.predicate == "gt" else "<"
            return _transition(
                rule, "fired", mean, index,
                f"{rule.signal} {mean:.6g} {comparison} {rule.threshold:g} "
                f"over the last {len(self.window)} sample(s)",
            )
        if not breaching and self.active:
            self.active = False
            self.resolved_at = index
            return _transition(
                rule, "resolved", mean, index,
                f"{rule.signal} recovered to {mean:.6g}",
            )
        return None

    def close(self, index: int, message: str) -> Alert | None:
        """Force-resolve an active alert (campaign completion)."""
        if not self.active:
            return None
        self.active = False
        self.resolved_at = index
        return _transition(
            self.rule, "resolved", self.window.mean(), index, message
        )


class CampaignMonitor:
    """Folds one campaign's durable events into alert transitions.

    Feed it events in seq order via :meth:`fold`; it buffers fulfillment
    and telemetry payloads and evaluates every campaign-scope rule once
    per ``iteration`` event (the per-iteration sample definitions are in
    :meth:`_samples`).  The caller persists returned alerts; on resume,
    fold the replayed pre-snapshot history first and discard the returned
    alerts — they were already persisted by the earlier generation.
    """

    def __init__(
        self, campaign_id: str, rules: Iterable[AlertRule] | None = None
    ) -> None:
        self.campaign_id = campaign_id
        self.rules = tuple(rules if rules is not None else campaign_rules())
        self._states = {rule.name: _RuleState(rule) for rule in self.rules}
        self._fulfillments: list[Mapping[str, Any]] = []
        self._spans: list[Mapping[str, Any]] = []

    @property
    def active(self) -> tuple[str, ...]:
        """Names of currently firing rules, sorted."""
        return tuple(
            sorted(name for name, st in self._states.items() if st.active)
        )

    def fold(self, events: Iterable[CampaignEvent]) -> list[Alert]:
        """Consume events in seq order; returns transitions to persist.

        ``alert`` events are skipped (they are this monitor's own output),
        so the full replayed log can be folded without pre-filtering.
        """
        out: list[Alert] = []
        for event in events:
            if event.kind == "fulfillment":
                self._fulfillments.append(event.payload)
            elif event.kind == "telemetry":
                self._spans.append(event.payload)
            elif event.kind == "iteration":
                out.extend(self._evaluate(int(event.iteration)))
        return out

    def warmup(
        self, events: Iterable[CampaignEvent], up_to_iteration: int
    ) -> None:
        """Rebuild pre-crash window state from the replayed history.

        Only events from iterations the resumed session will *not*
        re-execute are folded (``iteration <= up_to_iteration``, plus the
        out-of-loop ``-1`` / ``min_slice_size`` events that precede the
        loop); the re-executed tail re-derives its samples live, so the
        resumed monitor emits byte-identical alerts for it.
        """
        retained = [
            event
            for event in events
            if event.kind != "alert" and event.iteration <= up_to_iteration
        ]
        self.fold(retained)  # transitions were persisted by the prior gen

    def finalize(self) -> list[Alert]:
        """Resolve every still-active alert at campaign completion.

        Emitted at iteration ``-1`` (out-of-loop, like the ``completed``
        event) so completed campaigns never hold components degraded.
        """
        out = []
        for rule in self.rules:
            alert = self._states[rule.name].close(
                -1, "resolved at campaign completion"
            )
            if alert is not None:
                out.append(alert)
        return out

    # -- sample derivation -------------------------------------------------------
    @staticmethod
    def _troubled(summary: Mapping[str, Any]) -> bool:
        """Whether one fulfillment shows failover/retry/shortfall trouble."""
        status = summary.get("status")
        if status == "skipped":
            return False
        provenance = summary.get("provenance") or ()
        return (
            len(provenance) > 1
            or int(summary.get("rounds", 1)) > 1
            or status not in _BENIGN_STATUSES
        )

    def _samples(self) -> dict[str, float]:
        """Per-iteration signal values from the buffered payloads.

        All ratios of integers taken straight from event payloads, so the
        floats are identical across executors, stores, and replay.
        """
        samples: dict[str, float] = {}
        if self._fulfillments:
            troubled = sum(
                1 for item in self._fulfillments if self._troubled(item)
            )
            samples["failover_rate"] = troubled / len(self._fulfillments)
            effective = sum(
                int(item.get("effective", 0)) for item in self._fulfillments
            )
            shortfall = sum(
                int(item.get("shortfall", 0)) for item in self._fulfillments
            )
            if effective > 0:
                samples["shortfall_rate"] = shortfall / effective
        if self._spans:
            errors = sum(
                1 for span in self._spans if span.get("status") == "error"
            )
            samples["span_error_rate"] = errors / len(self._spans)
        return samples

    def _evaluate(self, iteration: int) -> list[Alert]:
        samples = self._samples()
        self._fulfillments = []
        self._spans = []
        out = []
        for rule in self.rules:
            alert = self._states[rule.name].step(
                iteration, samples.get(rule.signal)
            )
            if alert is not None:
                out.append(alert)
        return out


def alert_history(
    store: CampaignStore, campaign_id: str | None = None
) -> list[dict[str, Any]]:
    """The replayed durable alert sequence, annotated per campaign.

    One row per ``alert`` event after generation collapse, in seq order —
    the payload plus ``campaign_id``/``seq``/``generation``.  This is the
    CLI/daemon surface; the ``alert_history`` analytics view adds a
    running ``fired_count`` on top of the same rows.
    """
    records = store.list_campaigns()
    if campaign_id is not None:
        records = [r for r in records if r.campaign_id == campaign_id]
    rows = []
    for record in records:
        events = replay_events(store.events(record.campaign_id, kinds=("alert",)))
        for event in events:
            row = {
                "campaign_id": record.campaign_id,
                "seq": event.seq,
                "generation": event.generation,
            }
            row.update(event.payload)
            rows.append(row)
    return rows


def _active_campaign_alerts(
    store: CampaignStore,
) -> list[dict[str, Any]]:
    """Unresolved durable alerts of campaigns that are still progressing.

    Terminal campaigns (completed/failed/paused) drop out, so service
    health recovers once a troubled campaign finishes — matching the
    monitor's own completion-time resolutions.
    """
    active = []
    for record in store.list_campaigns():
        if record.status in (COMPLETED, FAILED, PAUSED):
            continue
        last: dict[str, dict[str, Any]] = {}
        for row in alert_history(store, record.campaign_id):
            last[str(row.get("rule"))] = row
        for rule, row in sorted(last.items()):
            if row.get("state") == "fired":
                active.append(row)
    return active


class HealthEvaluator:
    """Per-component health from metric snapshots plus durable alerts.

    :meth:`observe` folds one :class:`~repro.telemetry.MetricsRegistry`
    snapshot through the service-scope rules — windows keyed by a
    monotonic evaluation counter, never wall-clock, so feeding the same
    snapshot sequence always yields the same verdicts.  :meth:`health`
    combines the live service-rule state, the durable alert state of
    non-terminal campaigns in a store, and the daemon's drain/pump flags
    into the ``GET /health/deep`` document.
    """

    def __init__(self, rules: Iterable[AlertRule] | None = None) -> None:
        self.rules = tuple(rules if rules is not None else service_rules())
        self._states = {rule.name: _RuleState(rule) for rule in self.rules}
        self._evaluations = 0
        self._previous: dict[str, int] = {}

    @property
    def evaluations(self) -> int:
        """How many snapshots have been folded so far."""
        return self._evaluations

    def observe(self, snapshot: Mapping[str, Any]) -> list[Alert]:
        """Fold one metrics snapshot; returns service-rule transitions."""
        counters = {
            key: int(value)
            for key, value in snapshot.get("counters", {}).items()
        }
        samples = self._service_samples(counters)
        index = self._evaluations
        self._evaluations += 1
        self._previous = counters
        out = []
        for rule in self.rules:
            alert = self._states[rule.name].step(
                index, samples.get(rule.signal)
            )
            if alert is not None:
                out.append(alert)
        return out

    def _service_samples(
        self, counters: Mapping[str, int]
    ) -> dict[str, float]:
        samples: dict[str, float] = {}
        # Cache hit rate over the lookups since the previous snapshot —
        # sampled only once the cache has ever served a hit, so a fresh
        # workload of legitimately unique trainings (all misses, nothing
        # to collapse *from*) never trips the collapse rule.
        hits = counters.get("engine.cache_hits", 0) - self._previous.get(
            "engine.cache_hits", 0
        )
        misses = counters.get("engine.cache_misses", 0) - self._previous.get(
            "engine.cache_misses", 0
        )
        if self._previous.get("engine.cache_hits", 0) > 0 and hits + misses > 0:
            samples["cache_hit_rate"] = hits / (hits + misses)
        # Coldest lane's cumulative share of scheduler steps; only
        # meaningful once several lanes have enough history to compare.
        lanes = {
            key: value
            for key, value in counters.items()
            if key.startswith("scheduler.lane_steps{")
        }
        total = sum(lanes.values())
        if len(lanes) >= 2 and total >= _MIN_LANE_STEPS:
            samples["lane_min_share"] = min(lanes.values()) / total
        return samples

    def service_alerts(self) -> list[Alert]:
        """Currently firing service-scope alerts, in rule order."""
        out = []
        for rule in self.rules:
            state = self._states[rule.name]
            if state.active:
                out.append(
                    _transition(
                        rule,
                        "fired",
                        state.window.mean(),
                        state.window.last_index or 0,
                        f"{rule.signal} breaching across recent snapshots",
                    )
                )
        return out

    def health(
        self,
        store: CampaignStore | None = None,
        serve_state: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """The per-component health document.

        ``serve_state`` carries the daemon's own flags (``draining``,
        ``pump_error``); omit it for offline ``monitor status`` runs.
        """
        components: dict[str, dict[str, Any]] = {
            name: {"status": "ok", "alerts": []} for name in COMPONENTS
        }

        def attach(component: str, severity: str, alert: Mapping[str, Any]):
            slot = components[component]
            slot["alerts"].append(dict(alert))
            slot["status"] = worst_status((slot["status"], severity))

        for alert in self.service_alerts():
            attach(alert.component, alert.severity, alert.to_dict())
        if store is not None:
            for row in _active_campaign_alerts(store):
                component = str(row.get("component", "engine"))
                if component not in components:
                    component = "engine"
                attach(component, str(row.get("severity", "degraded")), row)
        if serve_state is not None:
            pump_error = serve_state.get("pump_error")
            if pump_error:
                attach(
                    "serve",
                    "critical",
                    {
                        "rule": "pump_failure",
                        "component": "serve",
                        "severity": "critical",
                        "state": "fired",
                        "message": str(pump_error),
                    },
                )
            elif serve_state.get("draining"):
                attach(
                    "serve",
                    "degraded",
                    {
                        "rule": "draining",
                        "component": "serve",
                        "severity": "degraded",
                        "state": "fired",
                        "message": "daemon is draining; no new submissions",
                    },
                )
        overall = worst_status(
            slot["status"] for slot in components.values()
        )
        return {
            "status": overall,
            "components": components,
            "evaluations": self._evaluations,
        }
