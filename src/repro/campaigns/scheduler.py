"""Multiplexing many campaigns over one shared engine executor.

:class:`CampaignScheduler` drives N concurrent campaigns one iteration at a
time over a single :class:`~repro.engine.executor.Executor` (and therefore
one shared result cache), interleaving them with **budget-fair round-robin
inside priority lanes**:

* the highest-priority lane with an unfinished campaign always schedules
  first (``CampaignSpec.priority``, higher = more urgent);
* within a lane, the campaign that has spent the *smallest fraction* of its
  budget goes next, so a cheap-per-iteration campaign cannot starve an
  expensive one — progress is fair in budget, not in iteration count;
* ties (e.g. at the start, when every campaign has spent nothing) fall back
  to least-recently-scheduled order, i.e. plain round-robin.

Every scheduled step emits a :class:`SchedulerTick` to the registered
progress callbacks, so dashboards and the CLI can watch all campaigns at
once.  Because each campaign owns its instance, RNG streams, and ledger, and
per-job seeds are pre-spawned, the interleaving (and the executor backend)
never changes any campaign's numbers: scheduling N campaigns concurrently
yields byte-identical results to running them serially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.campaigns.campaign import Campaign, CampaignSpec
from repro.campaigns.store import CampaignStore, InMemoryStore
from repro.core.plan import TuningResult
from repro.engine.cache import ResultCache
from repro.engine.executor import Executor, SerialExecutor
from repro.utils.exceptions import CampaignError


@dataclass(frozen=True)
class SchedulerTick:
    """One scheduled step of one campaign, as seen by progress callbacks.

    Attributes
    ----------
    campaign_id / name / priority:
        Which campaign was scheduled, and in which lane.
    iteration:
        The iteration that just landed (``-1`` for the finalizing tick that
        drained the campaign).
    spent / budget:
        The campaign's budget position after the step.
    done:
        True on the tick that completed the campaign.
    """

    campaign_id: str
    name: str
    priority: int
    iteration: int
    spent: float
    budget: float
    done: bool


#: Signature of a scheduler progress callback.
ProgressCallback = Callable[[SchedulerTick], None]


@dataclass
class _Entry:
    campaign: Campaign
    order: int
    last_step: int = 0


class CampaignScheduler:
    """Budget-fair, priority-laned multiplexer of concurrent campaigns.

    Parameters
    ----------
    store:
        The shared :class:`~repro.campaigns.store.CampaignStore` every
        scheduled campaign persists into (an
        :class:`~repro.campaigns.store.InMemoryStore` by default).
    executor:
        One engine executor shared by every campaign's trainings; defaults
        to a :class:`~repro.engine.executor.SerialExecutor` carrying
        ``result_cache``.  Sharing is safe — the cache is content-addressed
        — and lets identical trainings across campaigns be served once.
    result_cache:
        Attached to the default executor (ignored when ``executor`` is
        supplied; attach the cache to that executor yourself).
    on_progress:
        Optional :class:`SchedulerTick` callback registered up-front.
    """

    def __init__(
        self,
        store: CampaignStore | None = None,
        executor: Executor | None = None,
        result_cache: ResultCache | None = None,
        on_progress: ProgressCallback | None = None,
    ) -> None:
        self.store = store if store is not None else InMemoryStore()
        self.executor = executor or SerialExecutor(cache=result_cache)
        self._entries: list[_Entry] = []
        self._callbacks: list[ProgressCallback] = (
            [on_progress] if on_progress else []
        )
        self._steps = 0

    # -- registration ------------------------------------------------------------
    def add(self, spec: CampaignSpec) -> Campaign:
        """Schedule a new campaign (deduplicated by content fingerprint)."""
        campaign = Campaign.start(self.store, spec, executor=self.executor)
        return self._register(campaign)

    def add_existing(self, campaign_id: str) -> Campaign:
        """Schedule a stored campaign for (re)execution on this scheduler."""
        campaign = Campaign.resume(self.store, campaign_id, executor=self.executor)
        return self._register(campaign)

    def add_progress_callback(self, callback: ProgressCallback) -> "CampaignScheduler":
        """Fire ``callback`` with every :class:`SchedulerTick`; returns self."""
        self._callbacks.append(callback)
        return self

    def _register(self, campaign: Campaign) -> Campaign:
        if any(
            entry.campaign.campaign_id == campaign.campaign_id
            for entry in self._entries
        ):
            raise CampaignError(
                f"campaign {campaign.campaign_id!r} is already scheduled"
            )
        self._entries.append(_Entry(campaign, order=len(self._entries)))
        return campaign

    @property
    def campaigns(self) -> list[Campaign]:
        """Every scheduled campaign, in registration order."""
        return [entry.campaign for entry in self._entries]

    # -- the scheduling loop -----------------------------------------------------
    def run(self) -> dict[str, TuningResult]:
        """Drive every scheduled campaign to completion, interleaved.

        Returns ``{campaign id: result}`` — campaign ids are unique per
        store, unlike names, so no result can be shadowed.  Campaigns that
        were already complete (idempotent re-runs) contribute their stored
        result without consuming any schedule slots.
        """
        while self.step() is not None:
            pass
        return {
            entry.campaign.campaign_id: entry.campaign.result()
            for entry in self._entries
        }

    def step(self) -> SchedulerTick | None:
        """Schedule a single iteration; ``None`` when every campaign is done."""
        active = [entry for entry in self._entries if not entry.campaign.is_done]
        if not active:
            return None
        entry = self._pick(active)
        self._steps += 1
        entry.last_step = self._steps
        record = entry.campaign.advance()
        done = record is None
        return self._emit(entry, -1 if done else record.iteration, done)

    def _pick(self, active: list[_Entry]) -> _Entry:
        """Budget-fair choice inside the highest non-empty priority lane."""
        lane = max(entry.campaign.spec.priority for entry in active)
        candidates = [
            entry for entry in active if entry.campaign.spec.priority == lane
        ]
        return min(
            candidates,
            key=lambda entry: (
                entry.campaign.spent_fraction,
                entry.last_step,
                entry.order,
            ),
        )

    def _emit(self, entry: _Entry, iteration: int, done: bool) -> SchedulerTick:
        campaign = entry.campaign
        tick = SchedulerTick(
            campaign_id=campaign.campaign_id,
            name=campaign.spec.name,
            priority=campaign.spec.priority,
            iteration=iteration,
            spent=campaign.spent,
            budget=campaign.spec.budget,
            done=done,
        )
        for callback in self._callbacks:
            callback(tick)
        return tick
