"""Multiplexing many campaigns over one shared engine executor.

:class:`CampaignScheduler` drives N concurrent campaigns one iteration at a
time over a single :class:`~repro.engine.executor.Executor` (and therefore
one shared result cache), interleaving them with **budget-fair round-robin
inside priority lanes**:

* the highest-priority lane with an unfinished campaign always schedules
  first (``CampaignSpec.priority``, higher = more urgent);
* within a lane, the campaign that has spent the *smallest fraction* of its
  budget goes next, so a cheap-per-iteration campaign cannot starve an
  expensive one — progress is fair in budget, not in iteration count;
* ties (e.g. at the start, when every campaign has spent nothing) fall back
  to least-recently-scheduled order, i.e. plain round-robin.

Every scheduled step emits a :class:`SchedulerTick` to the registered
progress callbacks, so dashboards and the CLI can watch all campaigns at
once.  Because each campaign owns its instance, RNG streams, and ledger, and
per-job seeds are pre-spawned, the interleaving (and the executor backend)
never changes any campaign's numbers: scheduling N campaigns concurrently
yields byte-identical results to running them serially.

Two driving modes share the same scheduling loop:

* **foreground** — :meth:`CampaignScheduler.run` steps until every
  registered campaign is done (the CLI ``campaign`` commands);
* **background pump** — :meth:`CampaignScheduler.start_pump` moves the loop
  onto a daemon thread and makes registration thread-safe, so new campaigns
  can be submitted *while others are running* (the tuner service daemon).
  One re-entrant lock serializes scheduling steps against registration,
  pause/resume, and :meth:`drain`, which means every external mutation
  lands exactly at an iteration boundary — the only place campaign state
  may be touched without breaking the byte-identical resume guarantee.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.campaigns.campaign import Campaign, CampaignSpec
from repro.campaigns.store import RUNNING, CampaignStore, InMemoryStore
from repro.core.plan import TuningResult
from repro.engine.cache import ResultCache
from repro.engine.executor import Executor, SerialExecutor
from repro.telemetry import get_registry, get_tracer
from repro.utils.exceptions import CampaignError


@dataclass(frozen=True)
class SchedulerTick:
    """One scheduled step of one campaign, as seen by progress callbacks.

    Attributes
    ----------
    campaign_id / name / priority:
        Which campaign was scheduled, and in which lane.
    iteration:
        The iteration that just landed (``-1`` for the finalizing tick that
        drained the campaign).
    spent / budget:
        The campaign's budget position after the step.
    done:
        True on the tick that completed the campaign.
    slice_generation:
        The campaign's current slice generation (0 until a dynamic
        campaign's first re-slice lands).
    """

    campaign_id: str
    name: str
    priority: int
    iteration: int
    spent: float
    budget: float
    done: bool
    slice_generation: int = 0


#: Signature of a scheduler progress callback.
ProgressCallback = Callable[[SchedulerTick], None]


@dataclass
class _Entry:
    campaign: Campaign
    order: int
    last_step: int = 0
    paused: bool = False
    failed: bool = False


class CampaignScheduler:
    """Budget-fair, priority-laned multiplexer of concurrent campaigns.

    Parameters
    ----------
    store:
        The shared :class:`~repro.campaigns.store.CampaignStore` every
        scheduled campaign persists into (an
        :class:`~repro.campaigns.store.InMemoryStore` by default).
    executor:
        One engine executor shared by every campaign's trainings; defaults
        to a :class:`~repro.engine.executor.SerialExecutor` carrying
        ``result_cache``.  Sharing is safe — the cache is content-addressed
        — and lets identical trainings across campaigns be served once.
    result_cache:
        Attached to the default executor (ignored when ``executor`` is
        supplied; attach the cache to that executor yourself).
    on_progress:
        Optional :class:`SchedulerTick` callback registered up-front.
    """

    def __init__(
        self,
        store: CampaignStore | None = None,
        executor: Executor | None = None,
        result_cache: ResultCache | None = None,
        on_progress: ProgressCallback | None = None,
    ) -> None:
        self.store = store if store is not None else InMemoryStore()
        self.executor = executor or SerialExecutor(cache=result_cache)
        self._entries: list[_Entry] = []
        self._callbacks: list[ProgressCallback] = (
            [on_progress] if on_progress else []
        )
        self._steps = 0
        #: ``(campaign_id, exception)`` pairs collected by the background
        #: pump — a failing campaign is parked (its entry marked failed, its
        #: store status already FAILED) instead of killing the pump thread.
        self.errors: list[tuple[str, Exception]] = []
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._pump: threading.Thread | None = None

    # -- registration ------------------------------------------------------------
    def add(self, spec: CampaignSpec) -> Campaign:
        """Schedule a new campaign (deduplicated by content fingerprint)."""
        with self._lock:
            campaign = Campaign.start(self.store, spec, executor=self.executor)
            return self._register(campaign)

    def add_existing(self, campaign_id: str) -> Campaign:
        """Schedule a stored campaign for (re)execution on this scheduler."""
        with self._lock:
            campaign = Campaign.resume(
                self.store, campaign_id, executor=self.executor
            )
            return self._register(campaign)

    def add_progress_callback(self, callback: ProgressCallback) -> "CampaignScheduler":
        """Fire ``callback`` with every :class:`SchedulerTick`; returns self."""
        self._callbacks.append(callback)
        return self

    def _register(self, campaign: Campaign) -> Campaign:
        if any(
            entry.campaign.campaign_id == campaign.campaign_id
            for entry in self._entries
        ):
            raise CampaignError(
                f"campaign {campaign.campaign_id!r} is already scheduled"
            )
        self._entries.append(_Entry(campaign, order=len(self._entries)))
        self._wake.notify_all()
        return campaign

    @property
    def campaigns(self) -> list[Campaign]:
        """Every scheduled campaign, in registration order."""
        with self._lock:
            return [entry.campaign for entry in self._entries]

    @property
    def steps(self) -> int:
        """Total scheduling steps taken so far (foreground and pump)."""
        return self._steps

    def find(self, campaign_id: str) -> Campaign | None:
        """The scheduled campaign with ``campaign_id``, or ``None``."""
        with self._lock:
            entry = self._find_entry(campaign_id)
            return None if entry is None else entry.campaign

    def _find_entry(self, campaign_id: str) -> "_Entry | None":
        for entry in self._entries:
            if entry.campaign.campaign_id == campaign_id:
                return entry
        return None

    # -- the scheduling loop -----------------------------------------------------
    def run(self) -> dict[str, TuningResult]:
        """Drive every scheduled campaign to completion, interleaved.

        Returns ``{campaign id: result}`` — campaign ids are unique per
        store, unlike names, so no result can be shadowed.  Campaigns that
        were already complete (idempotent re-runs) contribute their stored
        result without consuming any schedule slots.
        """
        while self.step() is not None:
            pass
        with self._lock:
            return {
                entry.campaign.campaign_id: entry.campaign.result()
                for entry in self._entries
                if entry.campaign.is_done
            }

    def step(self) -> SchedulerTick | None:
        """Schedule a single iteration; ``None`` when nothing is runnable.

        Paused and failed entries are skipped (they stay registered, so
        :meth:`resume_campaign` can revive a paused one); a ``None`` return
        therefore means "idle", not necessarily "everything completed".
        """
        with self._lock:
            active = [
                entry
                for entry in self._entries
                if not (entry.campaign.is_done or entry.paused or entry.failed)
            ]
            if not active:
                return None
            entry = self._pick(active)
            self._steps += 1
            entry.last_step = self._steps
            get_registry().counter("scheduler.steps").inc()
            # Per-lane step counts feed the monitor's lane_starvation rule.
            get_registry().counter(
                "scheduler.lane_steps", lane=entry.campaign.spec.priority
            ).inc()
            try:
                with get_tracer().span(
                    "scheduler.step",
                    attributes={
                        "campaign_id": entry.campaign.campaign_id,
                        "step": self._steps,
                    },
                ):
                    record = entry.campaign.advance()
            except Exception as error:
                # Campaign.advance already flipped the store status to
                # FAILED; park the entry so one bad campaign cannot wedge
                # the loop, and let the driver decide what to do with the
                # exception (run() re-raises, the pump collects it).
                entry.failed = True
                try:
                    error.campaign_id = entry.campaign.campaign_id  # type: ignore[attr-defined]
                except Exception:  # noqa: BLE001 - attribute-less exception
                    pass
                raise
            done = record is None
            return self._emit(entry, -1 if done else record.iteration, done)

    # -- the background pump -----------------------------------------------------
    @property
    def pump_running(self) -> bool:
        """True while the background pump thread is alive."""
        pump = self._pump
        return pump is not None and pump.is_alive()

    def start_pump(self, poll_interval: float = 0.1) -> "CampaignScheduler":
        """Move the scheduling loop onto a daemon thread; returns self.

        The pump keeps calling :meth:`step`; when idle it sleeps up to
        ``poll_interval`` seconds (woken immediately by new submissions), so
        campaigns registered while others run start without delay.  A
        campaign whose :meth:`~repro.campaigns.campaign.Campaign.advance`
        raises is parked as failed and recorded in :attr:`errors`; the pump
        itself keeps running.
        """
        with self._lock:
            if self.pump_running:
                raise CampaignError("the scheduler pump is already running")
            self._stop.clear()
            self._pump = threading.Thread(
                target=self._pump_loop,
                args=(float(poll_interval),),
                name="campaign-scheduler-pump",
                daemon=True,
            )
            self._pump.start()
        return self

    def _pump_loop(self, poll_interval: float) -> None:
        while not self._stop.is_set():
            try:
                tick = self.step()
            except Exception as error:  # noqa: BLE001 - pump must survive
                self.errors.append(
                    (str(getattr(error, "campaign_id", "?")), error)
                )
                continue
            if tick is None:
                with self._wake:
                    if not self._stop.is_set():
                        self._wake.wait(poll_interval)

    def stop_pump(self) -> None:
        """Stop the pump thread and wait for the in-flight step to finish."""
        self._stop.set()
        with self._wake:
            self._wake.notify_all()
        pump = self._pump
        if pump is not None and pump.is_alive():
            pump.join()
        self._pump = None

    def drain(self) -> list[str]:
        """Graceful shutdown: stop the pump, checkpoint + pause what's left.

        Every unfinished campaign gets a final runtime-state snapshot (via
        :meth:`Campaign.suspend <repro.campaigns.campaign.Campaign.suspend>`,
        called at the iteration boundary the stopped pump left behind) and
        its store status set to paused, so a restarted daemon resumes each
        one byte-identically.  Returns the suspended campaign ids.
        """
        self.stop_pump()
        suspended = []
        with self._lock:
            for entry in self._entries:
                if entry.failed or entry.paused:
                    continue  # failed stays failed; paused is already checkpointed
                if entry.campaign.suspend():
                    entry.paused = True
                    suspended.append(entry.campaign.campaign_id)
        return suspended

    # -- pause / resume ----------------------------------------------------------
    def pause_campaign(self, campaign_id: str) -> bool:
        """Checkpoint + pause one scheduled campaign; False when done/unknown.

        Taking the scheduling lock guarantees the pause lands between
        iterations, so the checkpoint is a clean resume point.
        """
        with self._lock:
            entry = self._find_entry(campaign_id)
            if entry is None or entry.campaign.is_done:
                return False
            if entry.campaign.suspend():
                entry.paused = True
                return True
            return False

    def resume_campaign(self, campaign_id: str) -> Campaign:
        """(Re)activate a campaign: un-pause it, or register it from the store.

        A campaign that *failed* under the pump is retried with a fresh
        :class:`Campaign` rebuilt from the store (its live session died
        mid-advance and cannot be trusted), exactly as a daemon restart
        would — the entry is dropped and re-registered.
        """
        with self._lock:
            entry = self._find_entry(campaign_id)
            if entry is None:
                return self.add_existing(campaign_id)
            if entry.failed:
                self._entries.remove(entry)
                return self.add_existing(campaign_id)
            if entry.paused and not entry.campaign.is_done:
                entry.paused = False
                self.store.set_status(campaign_id, RUNNING)
                self._wake.notify_all()
            return entry.campaign

    def _pick(self, active: list[_Entry]) -> _Entry:
        """Budget-fair choice inside the highest non-empty priority lane."""
        lane = max(entry.campaign.spec.priority for entry in active)
        candidates = [
            entry for entry in active if entry.campaign.spec.priority == lane
        ]
        return min(
            candidates,
            key=lambda entry: (
                entry.campaign.spent_fraction,
                entry.last_step,
                entry.order,
            ),
        )

    def _emit(self, entry: _Entry, iteration: int, done: bool) -> SchedulerTick:
        campaign = entry.campaign
        tick = SchedulerTick(
            campaign_id=campaign.campaign_id,
            name=campaign.spec.name,
            priority=campaign.spec.priority,
            iteration=iteration,
            spent=campaign.spent,
            budget=campaign.spec.budget,
            done=done,
            slice_generation=campaign.slice_generation,
        )
        for callback in self._callbacks:
            callback(tick)
        return tick
