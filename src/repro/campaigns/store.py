"""Durable campaign state: an append-only event log plus periodic snapshots.

A :class:`CampaignStore` persists everything a campaign run produces:

* one **campaign record** per campaign — the declarative
  :class:`~repro.campaigns.campaign.CampaignSpec` (as a JSON dict), a
  content fingerprint for idempotent re-run detection, a status, and a
  scheduling priority;
* an **append-only event log** — one ``iteration`` event per
  :class:`~repro.core.plan.IterationRecord` and one ``fulfillment`` event
  per :class:`~repro.acquisition.requests.Fulfillment` summary, exactly the
  stream :meth:`TunerSession.stream_events
  <repro.core.session.TunerSession.stream_events>` yields, plus lifecycle
  markers (``evaluate``, ``completed``); and
* periodic **snapshots** — opaque byte payloads (the campaign layer pickles
  a full runtime-state bundle) keyed by ``(campaign id, generation,
  iteration)``.

Recovery follows the incremental-view-maintenance stance of the FO+MOD line
of work: a run is *replayed* as its latest snapshot plus the event-log tail,
never recomputed from scratch.  Because resumed runs are deterministic,
re-executed iterations append byte-identical events under a fresh
**generation** number; :func:`replay_events` collapses the log back into a
single consistent history by keeping, for every iteration, the events of the
newest generation that covers it.

Two backends implement the protocol:

* :class:`InMemoryStore` — plain dictionaries; for tests and throwaway runs.
* :class:`SqliteStore` — a stdlib-:mod:`sqlite3` file in WAL mode with one
  committed transaction per append, so a ``kill -9`` can lose at most the
  event being written, never a committed one.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping, Protocol, runtime_checkable

from repro.utils.exceptions import CampaignError

#: Campaign lifecycle states.
PENDING = "pending"
RUNNING = "running"
PAUSED = "paused"
COMPLETED = "completed"
FAILED = "failed"

#: Statuses a campaign can be resumed from (``completed`` simply replays
#: its stored result).
RESUMABLE = (PENDING, RUNNING, PAUSED, FAILED)


@dataclass(frozen=True)
class CampaignRecord:
    """One campaign as the store knows it."""

    campaign_id: str
    name: str
    fingerprint: str
    spec: dict
    status: str = PENDING
    priority: int = 0
    created_at: float = 0.0


@dataclass(frozen=True)
class CampaignEvent:
    """One entry of a campaign's append-only event log.

    Attributes
    ----------
    seq:
        Store-assigned, strictly increasing sequence number.
    generation:
        Resume epoch the event was written under (0 for the first run; each
        :meth:`Campaign.resume <repro.campaigns.campaign.Campaign>` bumps
        it).  Deterministic re-execution after a crash re-appends identical
        events under a newer generation; replay keeps the newest.
    iteration:
        Iteration the event belongs to (0 for the minimum-size top-up,
        ``-1`` for events outside the loop, e.g. ``evaluate``).
    kind:
        ``iteration`` / ``fulfillment`` / ``evaluate`` / ``completed`` /
        ``reslice`` / ``telemetry`` (completed
        :class:`~repro.telemetry.Span` dicts, persisted only while a live
        tracer is installed) / ``alert``
        (:class:`~repro.monitor.Alert` rule transitions persisted by the
        campaign monitor; payloads carry rule identity and iteration
        index, never seqs, so resumed generations re-append them
        byte-identically).
    payload:
        JSON-compatible event body.
    """

    campaign_id: str
    seq: int
    generation: int
    iteration: int
    kind: str
    payload: dict

    def to_dict(self) -> dict[str, Any]:
        """The wire/``--json`` representation (shared by CLI and daemon)."""
        return {
            "seq": self.seq,
            "generation": self.generation,
            "iteration": self.iteration,
            "kind": self.kind,
            "payload": self.payload,
        }


@dataclass(frozen=True)
class CampaignSnapshot:
    """One opaque runtime-state snapshot of a campaign."""

    campaign_id: str
    generation: int
    iteration: int
    payload: bytes


@runtime_checkable
class CampaignStore(Protocol):
    """Protocol every campaign persistence backend implements."""

    def create_campaign(self, record: CampaignRecord) -> None:
        """Persist a new campaign record (id must be unused)."""
        ...

    def get_campaign(self, campaign_id: str) -> CampaignRecord:
        """Return the record for ``campaign_id``; raise if unknown."""
        ...

    def find_fingerprint(self, fingerprint: str) -> CampaignRecord | None:
        """The campaign carrying ``fingerprint``, or ``None``."""
        ...

    def list_campaigns(self) -> list[CampaignRecord]:
        """Every stored campaign, in creation order."""
        ...

    def set_status(self, campaign_id: str, status: str) -> None:
        """Update a campaign's lifecycle status."""
        ...

    def append_event(
        self,
        campaign_id: str,
        *,
        generation: int,
        iteration: int,
        kind: str,
        payload: Mapping[str, Any],
    ) -> int:
        """Append one event; returns its sequence number."""
        ...

    def events(
        self,
        campaign_id: str,
        kinds: tuple[str, ...] | None = None,
        after: int = 0,
    ) -> list[CampaignEvent]:
        """The campaign's event log in append order.

        ``kinds`` restricts the result to the named event kinds — progress
        summaries over large stores use it to skip parsing the heavy
        payloads they do not need (e.g. the full result embedded in every
        ``completed`` event).  ``after`` returns only events with
        ``seq > after`` — the live-tail cursor query of the serve layer,
        pushed into the backend so an idle poll costs O(new events).
        """
        ...

    def latest_generation(self, campaign_id: str) -> int:
        """Highest generation seen in events/snapshots (-1 when none)."""
        ...

    def save_snapshot(
        self, campaign_id: str, *, generation: int, iteration: int, payload: bytes
    ) -> None:
        """Persist one snapshot."""
        ...

    def latest_snapshot(self, campaign_id: str) -> CampaignSnapshot | None:
        """The most recently written snapshot, or ``None``."""
        ...

    def close(self) -> None:
        """Release backend resources."""
        ...


def replay_events(events: Iterable[CampaignEvent]) -> list[CampaignEvent]:
    """Collapse a multi-generation event log into one consistent history.

    Crash-resume re-executes the iterations after the last snapshot, so the
    raw log can contain the same iteration once per generation (with
    byte-identical payloads, since resumed runs are deterministic).  Replay
    keeps, for every iteration, only the events written by the newest
    generation that covers that iteration; out-of-loop events (iteration
    ``-1``) are deduplicated by ``(kind, iteration)`` the same way.
    """
    events = list(events)
    newest: dict[tuple[str, int], int] = {}
    for event in events:
        key = (event.kind, event.iteration)
        newest[key] = max(newest.get(key, event.generation), event.generation)
    kept = [
        event
        for event in events
        if event.generation == newest[(event.kind, event.iteration)]
    ]
    # Sequence order is already chronological: a resumed generation only
    # appends events for iterations after its snapshot, so the surviving
    # prefix (older generation) has strictly smaller seq numbers.
    kept.sort(key=lambda event: event.seq)
    return kept


class InMemoryStore:
    """Dictionary-backed :class:`CampaignStore` (nothing survives the process).

    Safe under concurrent threads: every operation holds one re-entrant
    lock, mirroring the :class:`SqliteStore` write-lock discipline so the
    two backends stay interchangeable under the tuner service daemon.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._campaigns: dict[str, CampaignRecord] = {}
        self._events: dict[str, list[CampaignEvent]] = {}
        self._snapshots: dict[str, list[CampaignSnapshot]] = {}
        self._seq = 0

    # -- campaigns ---------------------------------------------------------------
    def create_campaign(self, record: CampaignRecord) -> None:
        with self._lock:
            if record.campaign_id in self._campaigns:
                raise CampaignError(
                    f"campaign {record.campaign_id!r} already exists"
                )
            if record.created_at == 0.0:
                record = replace(record, created_at=time.time())
            self._campaigns[record.campaign_id] = record
            self._events[record.campaign_id] = []
            self._snapshots[record.campaign_id] = []

    def get_campaign(self, campaign_id: str) -> CampaignRecord:
        with self._lock:
            try:
                return self._campaigns[campaign_id]
            except KeyError:
                raise CampaignError(f"unknown campaign {campaign_id!r}") from None

    def find_fingerprint(self, fingerprint: str) -> CampaignRecord | None:
        with self._lock:
            for record in self._campaigns.values():
                if record.fingerprint == fingerprint:
                    return record
            return None

    def list_campaigns(self) -> list[CampaignRecord]:
        with self._lock:
            return list(self._campaigns.values())

    def set_status(self, campaign_id: str, status: str) -> None:
        with self._lock:
            record = self.get_campaign(campaign_id)
            self._campaigns[campaign_id] = replace(record, status=status)

    # -- events ------------------------------------------------------------------
    def append_event(
        self,
        campaign_id: str,
        *,
        generation: int,
        iteration: int,
        kind: str,
        payload: Mapping[str, Any],
    ) -> int:
        with self._lock:
            self.get_campaign(campaign_id)
            self._seq += 1
            event = CampaignEvent(
                campaign_id=campaign_id,
                seq=self._seq,
                generation=int(generation),
                iteration=int(iteration),
                kind=str(kind),
                payload=dict(payload),
            )
            self._events[campaign_id].append(event)
            return event.seq

    def events(
        self,
        campaign_id: str,
        kinds: tuple[str, ...] | None = None,
        after: int = 0,
    ) -> list[CampaignEvent]:
        with self._lock:
            self.get_campaign(campaign_id)
            events = self._events[campaign_id]
            if after:
                events = [event for event in events if event.seq > after]
            if kinds is None:
                return list(events)
            wanted = set(kinds)
            return [event for event in events if event.kind in wanted]

    def latest_generation(self, campaign_id: str) -> int:
        with self._lock:
            self.get_campaign(campaign_id)
            generations = [event.generation for event in self._events[campaign_id]]
            generations += [
                snap.generation for snap in self._snapshots[campaign_id]
            ]
            return max(generations, default=-1)

    # -- snapshots ---------------------------------------------------------------
    def save_snapshot(
        self, campaign_id: str, *, generation: int, iteration: int, payload: bytes
    ) -> None:
        with self._lock:
            self.get_campaign(campaign_id)
            self._snapshots[campaign_id].append(
                CampaignSnapshot(
                    campaign_id=campaign_id,
                    generation=int(generation),
                    iteration=int(iteration),
                    payload=bytes(payload),
                )
            )

    def latest_snapshot(self, campaign_id: str) -> CampaignSnapshot | None:
        with self._lock:
            self.get_campaign(campaign_id)
            snapshots = self._snapshots[campaign_id]
            return snapshots[-1] if snapshots else None

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Nothing to release."""

    def __enter__(self) -> "InMemoryStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id TEXT PRIMARY KEY,
    name        TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    spec        TEXT NOT NULL,
    status      TEXT NOT NULL,
    priority    INTEGER NOT NULL DEFAULT 0,
    created_at  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_campaigns_fingerprint
    ON campaigns(fingerprint);
CREATE TABLE IF NOT EXISTS events (
    seq         INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id TEXT NOT NULL,
    generation  INTEGER NOT NULL,
    iteration   INTEGER NOT NULL,
    kind        TEXT NOT NULL,
    payload     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_events_campaign ON events(campaign_id, seq);
CREATE INDEX IF NOT EXISTS idx_events_campaign_kind
    ON events(campaign_id, kind, seq);
CREATE TABLE IF NOT EXISTS snapshots (
    snap_id     INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id TEXT NOT NULL,
    generation  INTEGER NOT NULL,
    iteration   INTEGER NOT NULL,
    payload     BLOB NOT NULL,
    created_at  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_snapshots_campaign
    ON snapshots(campaign_id, snap_id);
"""


class SqliteStore:
    """File-backed :class:`CampaignStore` on stdlib :mod:`sqlite3`.

    The database runs in WAL mode and every append is its own committed
    transaction, so state persisted before an abrupt process death
    (``kill -9``, SIGTERM, power loss) is recoverable by simply reopening
    the file.  Snapshot payloads are stored as opaque BLOBs; events and
    specs as JSON text, so the log stays greppable with the ``sqlite3``
    command-line shell.

    Safe under concurrent threads: the tuner service daemon appends from
    its scheduler pump while HTTP handler threads read progress and replay
    event logs.  All access goes through one shared connection
    (``check_same_thread=False``) serialized by a re-entrant write lock —
    SQLite serializes writers anyway, so a process-level lock costs nothing
    and spares every reader the ``database is locked`` retry dance.

    Parameters
    ----------
    path:
        Database file path (created on first use).  ``":memory:"`` works for
        tests but obviously defeats durability.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.executescript(_SCHEMA)

    # -- campaigns ---------------------------------------------------------------
    def create_campaign(self, record: CampaignRecord) -> None:
        created_at = record.created_at or time.time()
        try:
            with self._lock, self._conn:
                self._conn.execute(
                    "INSERT INTO campaigns "
                    "(campaign_id, name, fingerprint, spec, status, priority, created_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        record.campaign_id,
                        record.name,
                        record.fingerprint,
                        json.dumps(record.spec, sort_keys=True),
                        record.status,
                        int(record.priority),
                        created_at,
                    ),
                )
        except sqlite3.IntegrityError:
            raise CampaignError(
                f"campaign {record.campaign_id!r} already exists"
            ) from None

    def get_campaign(self, campaign_id: str) -> CampaignRecord:
        with self._lock:
            row = self._conn.execute(
                "SELECT campaign_id, name, fingerprint, spec, status, priority, created_at "
                "FROM campaigns WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchone()
        if row is None:
            raise CampaignError(f"unknown campaign {campaign_id!r}")
        return self._record_from_row(row)

    def find_fingerprint(self, fingerprint: str) -> CampaignRecord | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT campaign_id, name, fingerprint, spec, status, priority, created_at "
                "FROM campaigns WHERE fingerprint = ? ORDER BY created_at LIMIT 1",
                (fingerprint,),
            ).fetchone()
        return None if row is None else self._record_from_row(row)

    def list_campaigns(self) -> list[CampaignRecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT campaign_id, name, fingerprint, spec, status, priority, created_at "
                "FROM campaigns ORDER BY created_at, campaign_id"
            ).fetchall()
        return [self._record_from_row(row) for row in rows]

    def set_status(self, campaign_id: str, status: str) -> None:
        with self._lock, self._conn:
            updated = self._conn.execute(
                "UPDATE campaigns SET status = ? WHERE campaign_id = ?",
                (status, campaign_id),
            ).rowcount
        if not updated:
            raise CampaignError(f"unknown campaign {campaign_id!r}")

    @staticmethod
    def _record_from_row(row: tuple) -> CampaignRecord:
        return CampaignRecord(
            campaign_id=row[0],
            name=row[1],
            fingerprint=row[2],
            spec=json.loads(row[3]),
            status=row[4],
            priority=int(row[5]),
            created_at=float(row[6]),
        )

    # -- events ------------------------------------------------------------------
    def append_event(
        self,
        campaign_id: str,
        *,
        generation: int,
        iteration: int,
        kind: str,
        payload: Mapping[str, Any],
    ) -> int:
        with self._lock:
            self.get_campaign(campaign_id)
            with self._conn:
                cursor = self._conn.execute(
                    "INSERT INTO events (campaign_id, generation, iteration, kind, payload) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (
                        campaign_id,
                        int(generation),
                        int(iteration),
                        str(kind),
                        # Insertion order is preserved (not sorted) so a result
                        # reloaded from the log re-serializes byte-identically.
                        json.dumps(dict(payload)),
                    ),
                )
            return int(cursor.lastrowid)

    def events(
        self,
        campaign_id: str,
        kinds: tuple[str, ...] | None = None,
        after: int = 0,
    ) -> list[CampaignEvent]:
        self.get_campaign(campaign_id)
        query = (
            "SELECT seq, generation, iteration, kind, payload FROM events "
            "WHERE campaign_id = ?"
        )
        params: list = [campaign_id]
        if after:
            query += " AND seq > ?"
            params.append(int(after))
        if kinds is not None:
            placeholders = ", ".join("?" for _ in kinds)
            query += f" AND kind IN ({placeholders})"
            params.extend(kinds)
        with self._lock:
            rows = self._conn.execute(query + " ORDER BY seq", params).fetchall()
        return [
            CampaignEvent(
                campaign_id=campaign_id,
                seq=int(row[0]),
                generation=int(row[1]),
                iteration=int(row[2]),
                kind=row[3],
                payload=json.loads(row[4]),
            )
            for row in rows
        ]

    def latest_generation(self, campaign_id: str) -> int:
        with self._lock:
            self.get_campaign(campaign_id)
            row = self._conn.execute(
                "SELECT max(generation) FROM ("
                "  SELECT generation FROM events WHERE campaign_id = ?"
                "  UNION ALL"
                "  SELECT generation FROM snapshots WHERE campaign_id = ?"
                ")",
                (campaign_id, campaign_id),
            ).fetchone()
        return -1 if row is None or row[0] is None else int(row[0])

    # -- snapshots ---------------------------------------------------------------
    def save_snapshot(
        self, campaign_id: str, *, generation: int, iteration: int, payload: bytes
    ) -> None:
        with self._lock:
            self.get_campaign(campaign_id)
            with self._conn:
                self._conn.execute(
                    "INSERT INTO snapshots "
                    "(campaign_id, generation, iteration, payload, created_at) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (
                        campaign_id,
                        int(generation),
                        int(iteration),
                        sqlite3.Binary(bytes(payload)),
                        time.time(),
                    ),
                )

    def latest_snapshot(self, campaign_id: str) -> CampaignSnapshot | None:
        with self._lock:
            self.get_campaign(campaign_id)
            row = self._conn.execute(
                "SELECT generation, iteration, payload FROM snapshots "
                "WHERE campaign_id = ? ORDER BY snap_id DESC LIMIT 1",
                (campaign_id,),
            ).fetchone()
        if row is None:
            return None
        return CampaignSnapshot(
            campaign_id=campaign_id,
            generation=int(row[0]),
            iteration=int(row[1]),
            payload=bytes(row[2]),
        )

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "SqliteStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
