"""Durable campaigns: persistent, resumable, multiplexed tuning runs.

The campaign subsystem adds three layers on top of the streaming session
API:

* :mod:`repro.campaigns.store` — :class:`CampaignStore` backends
  (:class:`InMemoryStore`, :class:`SqliteStore`) persisting an append-only
  event log plus periodic runtime-state snapshots;
* :mod:`repro.campaigns.campaign` — :class:`Campaign`, binding one
  :class:`~repro.core.session.TunerSession` to a store with crash-safe
  ``resume()`` (byte-identical to an uninterrupted run) and idempotent
  re-run detection via spec content fingerprints;
* :mod:`repro.campaigns.scheduler` — :class:`CampaignScheduler`,
  multiplexing N concurrent campaigns over one shared engine executor with
  budget-fair round-robin inside priority lanes.
"""

from repro.campaigns.campaign import (
    Campaign,
    CampaignProgress,
    CampaignSpec,
    build_campaign_tuner,
    campaign_progress,
    campaign_summary,
)
from repro.campaigns.scheduler import (
    CampaignScheduler,
    SchedulerTick,
)
from repro.campaigns.store import (
    COMPLETED,
    FAILED,
    PAUSED,
    PENDING,
    RESUMABLE,
    RUNNING,
    CampaignEvent,
    CampaignRecord,
    CampaignSnapshot,
    CampaignStore,
    InMemoryStore,
    SqliteStore,
    replay_events,
)

__all__ = [
    "Campaign",
    "CampaignEvent",
    "CampaignProgress",
    "CampaignRecord",
    "CampaignScheduler",
    "CampaignSnapshot",
    "CampaignSpec",
    "CampaignStore",
    "InMemoryStore",
    "SchedulerTick",
    "SqliteStore",
    "build_campaign_tuner",
    "campaign_progress",
    "campaign_summary",
    "replay_events",
    "COMPLETED",
    "FAILED",
    "PAUSED",
    "PENDING",
    "RESUMABLE",
    "RUNNING",
]
