"""Durable, resumable tuning runs: a :class:`TunerSession` bound to a store.

A :class:`Campaign` is the persistence wrapper around one tuning run.  It is
built from a declarative :class:`CampaignSpec` (what to run: dataset,
scenario, acquisition setup, strategy, budget, seed) and a
:class:`~repro.campaigns.store.CampaignStore` (where to persist it), and
drives the run one iteration at a time:

* every :class:`~repro.core.plan.IterationRecord` and every
  :class:`~repro.acquisition.requests.Fulfillment` summary is appended to
  the store's event log the moment it lands (via the session's
  ``fulfillment`` hook and the record stream);
* every ``checkpoint_every`` iterations a full runtime-state snapshot is
  written — the session checkpoint (:meth:`TunerSession.state_dict
  <repro.core.session.TunerSession.state_dict>`) plus the tuner's
  :meth:`runtime state <repro.core.tuner.SliceTuner.runtime_state>` (sliced
  dataset, provider table with per-provider RNGs and reserves, cost model,
  main RNG position, evaluation seed), pickled as one bundle.

Because specs are declarative and instance construction is deterministic,
:meth:`Campaign.resume` rebuilds the tuner from the spec, restores the
latest snapshot, and continues the loop — the resulting
:class:`~repro.core.plan.TuningResult` is **byte-identical** to an
uninterrupted run, even after ``kill -9``.  Content fingerprints over the
spec give idempotent re-run detection: starting a campaign whose fingerprint
already completed replays the stored result instead of burning budget again.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import re
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

from repro.campaigns.store import (
    COMPLETED,
    FAILED,
    PAUSED,
    PENDING,
    RUNNING,
    CampaignRecord,
    CampaignStore,
    replay_events,
)
from repro.core.plan import IterationRecord, TuningResult
from repro.core.registry import available_strategies, is_registered
from repro.fairness.report import FairnessReport
from repro.monitor.health import CampaignMonitor
from repro.telemetry import PERSISTED_SPAN_NAMES, get_tracer
from repro.utils.exceptions import CampaignError, ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.session import TunerSession
    from repro.core.tuner import SliceTuner
    from repro.engine.cache import ResultCache
    from repro.engine.executor import Executor

_SNAPSHOT_VERSION = 1

#: Hook fired after every persisted iteration: ``(campaign, record)``.
IterationHook = Callable[["Campaign", IterationRecord], None]


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one tuning run.

    The *identity* fields (everything except ``priority`` and
    ``checkpoint_every``) fully determine the run: the same spec always
    builds the same dataset instance, provider table, and tuner, which is
    what makes crash-safe resume and idempotent re-run detection possible.

    Attributes
    ----------
    name:
        Human-readable campaign name (part of the campaign id, not of the
        fingerprint — renaming identical work still deduplicates).
    dataset / scenario / source:
        Instance construction, exactly as the experiment runner understands
        it (``source=None`` uses the scenario's own source kind).
    method / budget / lam / seed:
        What to run: any registered strategy name, the acquisition budget,
        the loss/unfairness weight, and the base random seed.
    base_size / validation_size / epochs / curve_points / min_slice_size /
    acquisition_rounds / max_iterations:
        Instance and tuner knobs (mirroring
        :class:`~repro.experiments.config.ExperimentConfig`).
    evaluate:
        When True, the model is trained and evaluated before and after
        acquisition and the reports attached to the result (both survive
        crash/resume).
    discover / reslice_every:
        Dynamic-slices mode: a registered slice discovery method (see
        :mod:`repro.slices.discovery`) re-run every ``reslice_every``
        iterations, re-partitioning the data mid-campaign.  Each re-slice
        is persisted as a durable ``reslice`` event whose payload carries
        the content-fingerprinted boundaries, so replay and crash-resume
        stay byte-identical.  ``discover=None`` defers to the scenario's
        own defaults (e.g. ``dynamic_slices``); both fields are part of
        the fingerprint.
    priority:
        Scheduling lane for :class:`~repro.campaigns.scheduler.
        CampaignScheduler` — higher runs first.  Not part of the
        fingerprint.
    checkpoint_every:
        Snapshot cadence in iterations (1 = after every iteration).  A
        crash can lose at most ``checkpoint_every - 1`` iterations of
        *snapshot* state; the resumed run re-executes them deterministically
        from the previous snapshot.  Not part of the fingerprint.
    monitor:
        Evaluate the campaign-scope alert rules
        (:func:`repro.monitor.campaign_rules`) against the event log and
        persist transitions as durable ``alert`` events.  Monitoring only
        reads events and appends alerts — it never touches tuner state —
        so results are byte-identical either way, and the flag (like
        ``priority``) is not part of the fingerprint.
    """

    name: str
    dataset: str = "adult_like"
    scenario: str = "basic"
    source: str | None = None
    method: str = "moderate"
    budget: float = 500.0
    lam: float = 1.0
    seed: int = 0
    base_size: int = 60
    validation_size: int = 60
    epochs: int = 10
    curve_points: int = 3
    min_slice_size: int = 0
    acquisition_rounds: int = 1
    max_iterations: int = 30
    evaluate: bool = False
    discover: str | None = None
    reslice_every: int = 0
    priority: int = 0
    checkpoint_every: int = 1
    monitor: bool = True

    #: Spec fields that do not contribute to the content fingerprint.
    _NON_IDENTITY = ("name", "priority", "checkpoint_every", "monitor")

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a campaign needs a non-empty name")
        if not is_registered(self.method):
            raise ConfigurationError(
                f"unknown strategy {self.method!r}; registered: "
                f"{', '.join(available_strategies())}"
            )
        if self.budget < 0:
            raise ConfigurationError(f"budget must be >= 0, got {self.budget}")
        if self.checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.discover is not None:
            from repro.slices.discovery import (
                available_discovery_methods,
                is_discovery_method,
            )

            if not is_discovery_method(self.discover):
                raise ConfigurationError(
                    f"unknown discovery method {self.discover!r}; registered: "
                    f"{', '.join(available_discovery_methods())}"
                )
            if self.reslice_every < 1:
                raise ConfigurationError(
                    "discover requires reslice_every >= 1, "
                    f"got {self.reslice_every}"
                )
        elif self.reslice_every != 0:
            raise ConfigurationError(
                "reslice_every requires a discover method to be set"
            )

    def fingerprint(self) -> str:
        """Content hash over the identity fields (idempotent re-run key)."""
        identity = {
            key: value
            for key, value in asdict(self).items()
            if key not in self._NON_IDENTITY
        }
        canonical = json.dumps(identity, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def campaign_id(self) -> str:
        """Deterministic id: slug of the name plus a fingerprint prefix."""
        slug = re.sub(r"[^a-z0-9]+", "-", self.name.lower()).strip("-") or "campaign"
        return f"{slug}-{self.fingerprint()[:10]}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation (stored on the campaign record)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        return cls(**{key: value for key, value in data.items() if key in known})


def build_campaign_tuner(
    spec: CampaignSpec,
    executor: "Executor | None" = None,
    result_cache: "ResultCache | None" = None,
) -> "SliceTuner":
    """Deterministically build the tuner a spec describes.

    Constructs the dataset instance and named provider table through the
    experiment runner (same path as ``run_method``), so a spec names work
    reproducibly: two calls build byte-identical tuners.  ``executor`` lets
    the scheduler share one engine executor (and result cache) across every
    campaign it multiplexes.
    """
    # Imported lazily: campaigns sit above the experiments layer for
    # instance construction, while experiments/runner.py exposes the
    # campaign_suite scenario — the lazy import breaks the cycle.
    from repro.core.tuner import SliceTuner, SliceTunerConfig
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import prepare_named_instance
    from repro.experiments.scenarios import build_scenario

    extra: dict[str, Any] = {"base_size": spec.base_size}
    if spec.source is not None:
        extra["source"] = spec.source
    config = ExperimentConfig(
        dataset=spec.dataset,
        scenario=spec.scenario,
        budget=spec.budget,
        methods=(spec.method,),
        lam=spec.lam,
        trials=1,
        validation_size=spec.validation_size,
        min_slice_size=spec.min_slice_size,
        curve_points=spec.curve_points,
        curve_repeats=1,
        epochs=spec.epochs,
        seed=spec.seed,
        extra=extra,
    )
    sliced, sources = prepare_named_instance(config, seed=spec.seed)
    # Dynamic-slices knobs: an explicit spec wins; otherwise the scenario's
    # own defaults apply (the dynamic_slices/drifting_slices scenarios carry
    # a discovery method and cadence of their own).
    scenario = build_scenario(spec.scenario)
    if spec.discover is not None:
        discover, reslice_every = spec.discover, spec.reslice_every
    else:
        discover, reslice_every = scenario.discover, scenario.reslice_every
    return SliceTuner(
        sliced,
        sources=sources,
        trainer_config=config.training_config(),
        curve_config=config.curve_config(),
        config=SliceTunerConfig(
            lam=spec.lam,
            min_slice_size=spec.min_slice_size,
            max_iterations=spec.max_iterations,
            acquisition_rounds=spec.acquisition_rounds,
            discover=discover,
            reslice_every=reslice_every,
        ),
        random_state=spec.seed + 20_000,
        executor=executor,
        result_cache=result_cache,
    )


@dataclass
class CampaignProgress:
    """Replayed progress of a campaign, as far as the store knows it."""

    campaign_id: str
    name: str
    status: str
    priority: int
    iterations: int = 0
    spent: float = 0.0
    budget: float = 0.0
    acquired: dict[str, int] = field(default_factory=dict)
    fulfillments: int = 0
    generations: int = 0
    slice_generation: int = 0

    @property
    def spent_fraction(self) -> float:
        """Fraction of the budget spent (1.0 when the budget is zero)."""
        return self.spent / self.budget if self.budget > 0 else 1.0


def campaign_progress(store: CampaignStore, campaign_id: str) -> CampaignProgress:
    """Replay a campaign's event log into a progress summary."""
    record = store.get_campaign(campaign_id)
    spec = CampaignSpec.from_dict(record.spec)
    progress = CampaignProgress(
        campaign_id=campaign_id,
        name=record.name,
        status=record.status,
        priority=record.priority,
        budget=spec.budget,
    )
    # Generations start at 0 and increment by one per resume, so the count
    # is the latest generation + 1 — no need to scan the log for it.
    progress.generations = store.latest_generation(campaign_id) + 1
    # Only iteration/fulfillment/reslice events are needed; skipping the
    # rest keeps progress summaries cheap on stores whose ``completed``
    # events embed full results.
    events = store.events(campaign_id, kinds=("iteration", "fulfillment", "reslice"))
    for event in replay_events(events):
        if event.kind == "iteration":
            progress.iterations += 1
            progress.spent += float(event.payload.get("spent", 0.0))
            for name, count in event.payload.get("acquired", {}).items():
                progress.acquired[name] = progress.acquired.get(name, 0) + int(count)
        elif event.kind == "fulfillment":
            progress.fulfillments += 1
        elif event.kind == "reslice":
            progress.slice_generation = max(
                progress.slice_generation,
                int(event.payload.get("slice_generation", 0)),
            )
    return progress


def campaign_summary(store: CampaignStore, campaign_id: str) -> dict[str, Any]:
    """One campaign's record + replayed progress as a JSON-compatible dict.

    The single source of the summary shape shared by the daemon's
    ``GET /campaigns`` payload and the CLI's ``--json`` output, so local
    and remote tooling parse one schema.
    """
    record = store.get_campaign(campaign_id)
    progress = campaign_progress(store, campaign_id)
    return {
        "campaign_id": record.campaign_id,
        "name": record.name,
        "status": record.status,
        "priority": record.priority,
        "iterations": progress.iterations,
        "spent": progress.spent,
        "budget": progress.budget,
        "acquired": dict(progress.acquired),
        "generations": progress.generations,
        "fulfillments": progress.fulfillments,
        "slice_generation": progress.slice_generation,
    }


def _iteration_of(fulfillment_summary: Mapping[str, Any]) -> int:
    """Iteration an acquisition-service fulfillment belongs to (from its tag)."""
    tag = str(fulfillment_summary.get("tag", ""))
    if tag.startswith("iteration:"):
        try:
            return int(tag.split(":", 1)[1])
        except ValueError:
            return -1
    if tag == "min_slice_size":
        return 0
    return -1


class Campaign:
    """One durable tuning run bound to a :class:`CampaignStore`.

    Create campaigns with :meth:`start` (new or deduplicated by
    fingerprint) or :meth:`resume` (rebuild from the store after a pause or
    crash), then drive them with :meth:`run` — or iteration-by-iteration
    with :meth:`advance`, which is how the
    :class:`~repro.campaigns.scheduler.CampaignScheduler` multiplexes many
    campaigns over one engine executor.
    """

    def __init__(
        self,
        store: CampaignStore,
        spec: CampaignSpec,
        campaign_id: str,
        executor: "Executor | None" = None,
        result_cache: "ResultCache | None" = None,
    ) -> None:
        self.store = store
        self.spec = spec
        self.campaign_id = campaign_id
        self.generation = 0
        self.reused = False
        self.tuner: "SliceTuner | None" = None
        self.session: "TunerSession | None" = None
        self._executor = executor
        self._result_cache = result_cache
        self._records: Iterator[IterationRecord] | None = None
        self._initial_report: FairnessReport | None = None
        self._result: TuningResult | None = None
        self._pause_requested = False
        self._since_checkpoint = 0
        self._iteration_hooks: list[IterationHook] = []
        self._monitor: CampaignMonitor | None = None
        self._monitor_cursor = 0

    # -- construction ------------------------------------------------------------
    @classmethod
    def start(
        cls,
        store: CampaignStore,
        spec: CampaignSpec,
        executor: "Executor | None" = None,
        result_cache: "ResultCache | None" = None,
    ) -> "Campaign":
        """Create (or deduplicate) a campaign for ``spec``.

        If a campaign with the same content fingerprint already exists the
        stored one is returned (``campaign.reused`` is True): completed
        campaigns replay their persisted result without re-running anything;
        unfinished ones continue from their latest snapshot.
        """
        fingerprint = spec.fingerprint()
        existing = store.find_fingerprint(fingerprint)
        if existing is not None:
            campaign = cls.resume(
                store,
                existing.campaign_id,
                executor=executor,
                result_cache=result_cache,
            )
            campaign.reused = True
            return campaign
        campaign_id = spec.campaign_id()
        store.create_campaign(
            CampaignRecord(
                campaign_id=campaign_id,
                name=spec.name,
                fingerprint=fingerprint,
                spec=spec.to_dict(),
                status=PENDING,
                priority=spec.priority,
            )
        )
        return cls(
            store, spec, campaign_id, executor=executor, result_cache=result_cache
        )

    @classmethod
    def resume(
        cls,
        store: CampaignStore,
        campaign_id: str,
        executor: "Executor | None" = None,
        result_cache: "ResultCache | None" = None,
    ) -> "Campaign":
        """Rebind a stored campaign (after a pause, crash, or completion).

        The heavy lifting — rebuilding the tuner from the spec and restoring
        the latest snapshot — happens lazily on the first :meth:`advance`,
        so resuming a completed campaign costs nothing but the result load.
        """
        record = store.get_campaign(campaign_id)
        spec = CampaignSpec.from_dict(record.spec)
        campaign = cls(
            store, spec, campaign_id, executor=executor, result_cache=result_cache
        )
        if record.status == COMPLETED:
            campaign._result = campaign._load_stored_result()
        return campaign

    # -- hooks -------------------------------------------------------------------
    def add_iteration_hook(self, hook: IterationHook) -> "Campaign":
        """Fire ``hook(campaign, record)`` after every persisted iteration."""
        self._iteration_hooks.append(hook)
        return self

    # -- introspection -----------------------------------------------------------
    @property
    def is_done(self) -> bool:
        """True once a final result exists (completed or replayed)."""
        return self._result is not None

    @property
    def spent(self) -> float:
        """Budget spent so far in the live run (0.0 before it starts)."""
        if self.session is not None and self._result is None:
            return self.session.result().spent
        if self._result is not None:
            return self._result.spent
        return 0.0

    @property
    def spent_fraction(self) -> float:
        """Fraction of the budget spent (1.0 when the budget is zero)."""
        return self.spent / self.spec.budget if self.spec.budget > 0 else 1.0

    @property
    def slice_generation(self) -> int:
        """Current slice generation of the live session (0 before discovery)."""
        if self.session is not None:
            return self.session.slice_generation
        return 0

    def result(self) -> TuningResult:
        """The final result; raises until the campaign completed."""
        if self._result is None:
            raise CampaignError(
                f"campaign {self.campaign_id!r} has not completed; "
                f"call run() or advance() until done"
            )
        return self._result

    def partial_result(self) -> TuningResult | None:
        """The in-flight result of a live run (None before it starts)."""
        if self._result is not None:
            return self._result
        if self.session is not None:
            return self.session.result()
        return None

    # -- driving -----------------------------------------------------------------
    def run(self, max_steps: int | None = None) -> TuningResult | None:
        """Drive the campaign to completion (or pause), persisting each step.

        Returns the final :class:`~repro.core.plan.TuningResult`, or
        ``None`` when the run paused first (an explicit :meth:`pause`
        request or the ``max_steps`` cap) — the paused state is
        checkpointed, so a later :meth:`resume` continues exactly where
        this call stopped.
        """
        steps = 0
        while True:
            if self._pause_requested:
                self._enter_paused()
                return None
            record = self.advance()
            if record is None:
                return self._result
            steps += 1
            if max_steps is not None and steps >= max_steps:
                self._enter_paused()
                return None

    def advance(self) -> IterationRecord | None:
        """Run one acquisition iteration and persist it; ``None`` when done.

        The first call starts (or restores) the underlying session; the
        call that drains the stream finalizes the campaign — final
        evaluation, ``completed`` event, status flip — and returns ``None``.
        """
        if self._result is not None:
            return None
        try:
            self._ensure_session()
            record = next(self._records, None)  # type: ignore[arg-type]
        except Exception:
            # Both a failing iteration and a failing session *build* (bad
            # dataset, unrestorable snapshot, ...) leave the campaign FAILED
            # — otherwise a daemon's clients would watch it sit "pending"
            # forever.  FAILED campaigns stay resumable.
            self.store.set_status(self.campaign_id, FAILED)
            raise
        if record is None:
            self._finalize()
            return None
        self.store.append_event(
            self.campaign_id,
            generation=self.generation,
            iteration=record.iteration,
            kind="iteration",
            payload=record.to_dict(),
        )
        self._poll_monitor()
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.spec.checkpoint_every:
            self.checkpoint()
        for hook in self._iteration_hooks:
            hook(self, record)
        return record

    def pause(self) -> None:
        """Ask :meth:`run` to stop after the current iteration.

        Safe to call from a hook; the paused state is checkpointed, and
        :meth:`resume` (in this process or a later one) continues the run.
        """
        self._pause_requested = True

    def suspend(self) -> bool:
        """Checkpoint (if needed) and mark the campaign paused *right now*.

        Unlike :meth:`pause` — a request honored by :meth:`run` at the next
        iteration boundary — ``suspend`` acts immediately, so it must only
        be called *between* iterations (the scheduler's graceful drain calls
        it under the scheduling lock, which is exactly that boundary).  A
        campaign suspended this way resumes byte-identically via
        :meth:`resume`, in this process or after a daemon restart.  Returns
        False (and does nothing) once the campaign already completed.
        """
        if self._result is not None:
            return False
        if self.session is not None and self._since_checkpoint:
            self.checkpoint()
        self.store.set_status(self.campaign_id, PAUSED)
        return True

    def checkpoint(self) -> None:
        """Write a full runtime-state snapshot of the live run."""
        if self.session is None or self.tuner is None:
            raise CampaignError("no live run to checkpoint")
        bundle = {
            "version": _SNAPSHOT_VERSION,
            "tuner": self.tuner.runtime_state(),
            "session": self.session.state_dict(),
            "initial_report": (
                None
                if self._initial_report is None
                else self._initial_report.to_dict()
            ),
        }
        payload = pickle.dumps(bundle, protocol=pickle.HIGHEST_PROTOCOL)
        self.store.save_snapshot(
            self.campaign_id,
            generation=self.generation,
            iteration=int(bundle["session"]["iteration"]),
            payload=payload,
        )
        self._since_checkpoint = 0

    # -- internals ---------------------------------------------------------------
    def _ensure_session(self) -> None:
        if self.session is not None:
            return
        self.generation = self.store.latest_generation(self.campaign_id) + 1
        self.tuner = build_campaign_tuner(
            self.spec, executor=self._executor, result_cache=self._result_cache
        )
        self.session = self.tuner.session()
        self.session.add_hook("fulfillment", self._persist_fulfillment)
        self.session.add_hook("reslice", self._persist_reslice)
        # Scope the session's spans by campaign id so concurrent campaigns
        # sharing the process tracer keep disjoint span trees, and persist
        # the per-iteration skeleton when tracing is live.
        self.session.set_trace_scope(self.campaign_id)
        if get_tracer().enabled:
            self.session.add_hook("span", self._persist_span)
        snapshot = self.store.latest_snapshot(self.campaign_id)
        resume_iteration: int | None = None
        if snapshot is not None:
            bundle = pickle.loads(snapshot.payload)
            if int(bundle.get("version", -1)) != _SNAPSHOT_VERSION:
                raise CampaignError(
                    f"unsupported campaign snapshot version "
                    f"{bundle.get('version')!r} for {self.campaign_id!r}"
                )
            self.tuner.restore_runtime_state(bundle["tuner"])
            self.session.load_state_dict(bundle["session"])
            resume_iteration = int(bundle["session"]["iteration"])
            if bundle.get("initial_report") is not None:
                self._initial_report = FairnessReport.from_dict(
                    bundle["initial_report"]
                )
            self._records = self.session.resume()
        else:
            if self.spec.evaluate:
                self._initial_report = self.tuner.evaluate()
                self.store.append_event(
                    self.campaign_id,
                    generation=self.generation,
                    iteration=-1,
                    kind="evaluate",
                    payload={"stage": "initial", **self._initial_report.to_dict()},
                )
            self._records = self.session.stream(
                self.spec.budget, strategy=self.spec.method, lam=self.spec.lam
            )
        if self.spec.monitor:
            # The monitor folds this campaign's own durable events (never
            # tuner state), so it can be rebuilt from the log: warm it up
            # with the replayed pre-snapshot history (the re-executed tail
            # re-derives its samples live, byte-identically), then cursor
            # past everything already stored.
            self._monitor = CampaignMonitor(self.campaign_id)
            history = self.store.events(self.campaign_id)
            if history:
                self._monitor_cursor = history[-1].seq
                if resume_iteration is not None:
                    self._monitor.warmup(
                        replay_events(history), resume_iteration
                    )
        self.store.set_status(self.campaign_id, RUNNING)

    def _persist_fulfillment(self, fulfillment) -> None:
        summary = fulfillment.summary()
        self.store.append_event(
            self.campaign_id,
            generation=self.generation,
            iteration=_iteration_of(summary),
            kind="fulfillment",
            payload=summary,
        )

    def _persist_span(self, span) -> None:
        """Persist one completed span as a durable ``telemetry`` event.

        Only the bounded :data:`~repro.telemetry.PERSISTED_SPAN_NAMES`
        vocabulary is stored (the per-iteration skeleton), so the event log
        stays proportional to iterations, not trainings.  The iteration
        rides in the span's baggage, stamped by the session.
        """
        if span.name not in PERSISTED_SPAN_NAMES:
            return
        self.store.append_event(
            self.campaign_id,
            generation=self.generation,
            iteration=int(span.baggage.get("iteration", -1)),
            kind="telemetry",
            payload=span.to_dict(),
        )

    def _persist_reslice(self, event) -> None:
        self.store.append_event(
            self.campaign_id,
            generation=self.generation,
            iteration=int(event.iteration),
            kind="reslice",
            payload={
                "slice_generation": int(event.slice_generation),
                "method": event.method,
                "fingerprint": event.fingerprint,
                "slice_names": list(event.slice_names),
            },
        )

    def _enter_paused(self) -> None:
        self._pause_requested = False
        if self.session is not None and self._result is None:
            if self._since_checkpoint:
                self.checkpoint()
            self.store.set_status(self.campaign_id, PAUSED)

    def _poll_monitor(self) -> None:
        """Fold events appended since the last poll; persist transitions.

        Called right after the ``iteration`` event lands (and before the
        checkpoint, so a snapshot boundary never splits an iteration from
        its alerts).  The ``after=seq`` cursor keeps an idle poll at
        O(new events).
        """
        if self._monitor is None:
            return
        fresh = self.store.events(self.campaign_id, after=self._monitor_cursor)
        if fresh:
            self._monitor_cursor = fresh[-1].seq
        for alert in self._monitor.fold(fresh):
            self._monitor_cursor = max(
                self._monitor_cursor,
                self.store.append_event(
                    self.campaign_id,
                    generation=self.generation,
                    iteration=alert.iteration,
                    kind="alert",
                    payload=alert.to_dict(),
                ),
            )

    def _finalize(self) -> None:
        assert self.session is not None and self.tuner is not None
        result = self.session.result()
        if self.spec.evaluate:
            result.initial_report = self._initial_report
            result.final_report = self.tuner.evaluate()
        self._result = result
        if self._monitor is not None:
            for alert in self._monitor.finalize():
                self.store.append_event(
                    self.campaign_id,
                    generation=self.generation,
                    iteration=alert.iteration,
                    kind="alert",
                    payload=alert.to_dict(),
                )
        self.store.append_event(
            self.campaign_id,
            generation=self.generation,
            iteration=-1,
            kind="completed",
            payload=result.to_dict(),
        )
        self.store.set_status(self.campaign_id, COMPLETED)
        self._records = None

    def _load_stored_result(self) -> TuningResult:
        completed = [
            event
            for event in self.store.events(self.campaign_id)
            if event.kind == "completed"
        ]
        if not completed:
            raise CampaignError(
                f"campaign {self.campaign_id!r} is marked completed but has "
                f"no stored result event"
            )
        return TuningResult.from_dict(completed[-1].payload)
