"""Named metrics instruments and the process-wide registry.

Three instrument kinds, all thread-safe and all living in a
:class:`MetricsRegistry`:

* :class:`Counter` — monotonically increasing totals (requests, cache hits);
* :class:`Gauge` — last-write-wins point values (pump running, queue depth);
* :class:`Histogram` — value distributions over **fixed** bucket boundaries
  (:data:`DEFAULT_BUCKETS`), so the *shape* of a snapshot is deterministic
  even though the observed latencies are not.

Every instrument shares its registry's lock, so
:meth:`MetricsRegistry.snapshot` is a point-in-time atomic read — no
counter in the snapshot can be mid-update relative to another.  That
single-lock snapshot is the repo-wide answer to torn ``/stats`` reads
(:class:`~repro.serve.app.ServerStats` and the cache counters build their
JSON surfaces on it).

Snapshots are plain JSON dicts and **mergeable**:
:meth:`MetricsRegistry.merge` folds one snapshot into a live registry —
counters and histogram buckets add, gauges take the incoming value — which
is how :class:`~repro.engine.executor.ProcessPoolExecutor` workers
aggregate their per-job metrics into the parent process.

Labels are supported on every instrument (``registry.histogram("lat",
provider="pool")``); a labeled instrument's snapshot key renders as
``name{provider=pool}`` with label keys sorted.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "merge_snapshots",
    "histogram_quantiles",
    "render_prometheus",
]

#: Fixed histogram bucket upper bounds, in seconds — chosen once so every
#: process and every run produces structurally identical snapshots.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _render_key(name: str, labels: Mapping[str, Any]) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("key", "_value", "_lock")

    def __init__(self, key: str, lock: threading.RLock) -> None:
        self.key = key
        self._value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins point value."""

    __slots__ = ("key", "_value", "_lock")

    def __init__(self, key: str, lock: threading.RLock) -> None:
        self.key = key
        self._value: float = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A distribution over fixed bucket boundaries.

    ``counts[i]`` counts observations ``<= buckets[i]``; the final slot
    counts overflow (``> buckets[-1]``).  ``sum``/``count`` track the total
    mass, so means are recoverable from any snapshot.
    """

    __slots__ = ("key", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        key: str,
        lock: threading.RLock,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"bucket bounds must be sorted and non-empty: {buckets}")
        self.key = key
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
                    break
            else:
                self._counts[-1] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }


class MetricsRegistry:
    """Get-or-create instrument store with atomic snapshot and merge."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instruments -------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = _render_key(name, labels)
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = Counter(key, self._lock)
                self._counters[key] = instrument
            return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _render_key(name, labels)
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = Gauge(key, self._lock)
                self._gauges[key] = instrument
            return instrument

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = _render_key(name, labels)
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = Histogram(key, self._lock, buckets=buckets)
                self._histograms[key] = instrument
            return instrument

    # -- snapshot / merge --------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """One atomic, JSON-compatible view of every instrument."""
        with self._lock:
            return {
                "counters": {
                    key: counter._value
                    for key, counter in sorted(self._counters.items())
                },
                "gauges": {
                    key: gauge._value for key, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    key: histogram.snapshot()
                    for key, histogram in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` into this registry (worker aggregation)."""
        with self._lock:
            for key, value in (snapshot.get("counters") or {}).items():
                counter = self._counters.get(key)
                if counter is None:
                    counter = Counter(key, self._lock)
                    self._counters[key] = counter
                counter._value += int(value)
            for key, value in (snapshot.get("gauges") or {}).items():
                gauge = self._gauges.get(key)
                if gauge is None:
                    gauge = Gauge(key, self._lock)
                    self._gauges[key] = gauge
                gauge._value = float(value)
            for key, incoming in (snapshot.get("histograms") or {}).items():
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = Histogram(
                        key, self._lock, buckets=tuple(incoming["buckets"])
                    )
                    self._histograms[key] = histogram
                if list(histogram.buckets) != [
                    float(b) for b in incoming["buckets"]
                ]:
                    raise ValueError(
                        f"histogram {key!r} bucket boundaries differ; "
                        f"refusing to merge mismatched shapes"
                    )
                for index, count in enumerate(incoming["counts"]):
                    histogram._counts[index] += int(count)
                histogram._sum += float(incoming["sum"])
                histogram._count += int(incoming["count"])

    def reset(self) -> None:
        """Drop every instrument (tests and fresh worker registries)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def merge_snapshots(*snapshots: Mapping[str, Any]) -> dict[str, Any]:
    """Merge snapshot dicts into one (later gauges win), purely functionally."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged.snapshot()


def histogram_quantiles(
    histogram: Mapping[str, Any],
    quantiles: Iterable[float] = (0.5, 0.95, 0.99),
) -> dict[str, float | None]:
    """Quantile estimates from one histogram snapshot's bucket counts.

    Standard linearly-interpolated estimation over the cumulative bucket
    counts: the q-quantile falls in the first bucket whose cumulative
    count reaches ``q * count`` and is interpolated between that bucket's
    bounds (the first bucket's lower edge is 0 — these are latency
    histograms).  Observations in the overflow slot clamp to the top
    bound, the best available estimate without an upper edge.  Keys
    render as ``p50`` / ``p95`` / ``p99``; values are ``None`` for an
    empty histogram.
    """
    bounds = [float(bound) for bound in histogram.get("buckets", ())]
    counts = [int(count) for count in histogram.get("counts", ())]
    total = sum(counts)
    estimates: dict[str, float | None] = {}
    for quantile in quantiles:
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantiles must be in (0, 1], got {quantile}")
        label = f"p{quantile * 100:g}"
        if total == 0:
            estimates[label] = None
            continue
        target = quantile * total
        cumulative = 0
        for index, count in enumerate(counts):
            if count == 0:
                continue
            previous = cumulative
            cumulative += count
            if cumulative >= target:
                if index >= len(bounds):  # overflow slot
                    estimates[label] = bounds[-1]
                else:
                    lower = 0.0 if index == 0 else bounds[index - 1]
                    upper = bounds[index]
                    fraction = (target - previous) / count
                    estimates[label] = lower + (upper - lower) * fraction
                break
    return estimates


_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_parse(key: str) -> tuple[str, list[tuple[str, str]]]:
    """Split a snapshot key into a sanitized metric name and label pairs."""
    labels: list[tuple[str, str]] = []
    name = key
    if key.endswith("}") and "{" in key:
        name, _, rendered = key.partition("{")
        for pair in rendered[:-1].split(","):
            label, _, value = pair.partition("=")
            labels.append((_PROM_NAME_RE.sub("_", label.strip()), value))
    name = _PROM_NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = f"_{name}"
    return name, labels


def _prom_labels(labels: Iterable[tuple[str, str]]) -> str:
    rendered = ",".join(
        '{}="{}"'.format(
            label,
            value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n"),
        )
        for label, value in labels
    )
    return f"{{{rendered}}}" if rendered else ""


def _prom_number(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """A snapshot in Prometheus text exposition format (version 0.0.4).

    Counters and gauges render one sample each; histograms render the
    conventional cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``.  Dots in repo metric names become underscores
    (``engine.cache_hits`` -> ``engine_cache_hits``); one ``# TYPE`` line
    is emitted per family, covering every labeled series in it.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in (snapshot.get("counters") or {}).items():
        name, labels = _prom_parse(key)
        declare(name, "counter")
        lines.append(f"{name}{_prom_labels(labels)} {_prom_number(value)}")
    for key, value in (snapshot.get("gauges") or {}).items():
        name, labels = _prom_parse(key)
        declare(name, "gauge")
        lines.append(f"{name}{_prom_labels(labels)} {_prom_number(value)}")
    for key, histogram in (snapshot.get("histograms") or {}).items():
        name, labels = _prom_parse(key)
        declare(name, "histogram")
        cumulative = 0
        counts = [int(count) for count in histogram.get("counts", ())]
        for bound, count in zip(histogram.get("buckets", ()), counts):
            cumulative += count
            series = _prom_labels(labels + [("le", _prom_number(bound))])
            lines.append(f"{name}_bucket{series} {cumulative}")
        total = sum(counts)
        inf_series = _prom_labels(labels + [("le", "+Inf")])
        lines.append(f"{name}_bucket{inf_series} {total}")
        lines.append(
            f"{name}_sum{_prom_labels(labels)} "
            f"{repr(float(histogram.get('sum', 0.0)))}"
        )
        lines.append(f"{name}_count{_prom_labels(labels)} {total}")
    return "\n".join(lines) + "\n"


_default_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install a default registry (None -> fresh); returns the previous one.

    Pool workers swap in a job-local registry around each job so the
    snapshot they ship back contains exactly that job's deltas.
    """
    global _default_registry
    with _registry_lock:
        previous = _default_registry
        _default_registry = registry if registry is not None else MetricsRegistry()
        return previous
