"""Span sinks: where completed spans go.

Three sinks, all with the same one-method protocol (``on_span(span)``):

* :class:`RingBufferSink` — a bounded in-memory buffer for live inspection
  (the daemon's per-campaign span summaries, tests);
* :class:`JsonlTraceSink` — one JSON line per span appended to
  ``<trace_dir>/spans.jsonl`` (the ``--trace-out`` / ``REPRO_TRACE_DIR``
  surface the CLI ``telemetry`` subcommand reads back);
* :class:`CollectSink` — an unbounded plain list, used by pool workers to
  gather spans for shipping back with job results.

The module also owns the on-disk layout of a trace directory: spans in
``spans.jsonl``, the final metrics snapshot in ``metrics.json`` (merged
over whatever an earlier run left there, so sequential runs sharing one
trace directory accumulate).
"""

from __future__ import annotations

import collections
import json
import os
import threading
from typing import Any, Iterable

from repro.telemetry.metrics import merge_snapshots
from repro.telemetry.trace import Span

__all__ = [
    "RingBufferSink",
    "JsonlTraceSink",
    "CollectSink",
    "spans_path",
    "metrics_path",
    "write_metrics_snapshot",
    "read_spans",
    "read_metrics",
    "summarize_spans",
]

_SPANS_FILE = "spans.jsonl"
_METRICS_FILE = "metrics.json"


class RingBufferSink:
    """Keep the newest ``capacity`` spans in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._buffer: collections.deque[Span] = collections.deque(maxlen=capacity)
        self._lock = threading.Lock()

    def on_span(self, span: Span) -> None:
        with self._lock:
            self._buffer.append(span)

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._buffer)

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)


class CollectSink:
    """Unbounded collector (pool workers ship its contents back)."""

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._lock = threading.Lock()

    def on_span(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)


class JsonlTraceSink:
    """Append one sorted-key JSON line per completed span to a file."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8")

    def on_span(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            if self._file.closed:  # pragma: no cover - emit after close
                return
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


def spans_path(trace_dir: str) -> str:
    """Where a trace directory keeps its span log."""
    return os.path.join(trace_dir, _SPANS_FILE)


def metrics_path(trace_dir: str) -> str:
    """Where a trace directory keeps its merged metrics snapshot."""
    return os.path.join(trace_dir, _METRICS_FILE)


def write_metrics_snapshot(trace_dir: str, snapshot: dict[str, Any]) -> str:
    """Merge ``snapshot`` over the directory's existing one and write it."""
    os.makedirs(trace_dir, exist_ok=True)
    path = metrics_path(trace_dir)
    existing: dict[str, Any] = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, json.JSONDecodeError):
            existing = {}
    merged = merge_snapshots(existing, snapshot) if existing else snapshot
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, sort_keys=True, indent=2)
        handle.write("\n")
    return path


def read_spans(trace_dir: str) -> list[dict[str, Any]]:
    """Every span recorded under ``trace_dir``, as dicts, in file order."""
    spans: list[dict[str, Any]] = []
    if not os.path.isdir(trace_dir):
        return spans
    for name in sorted(os.listdir(trace_dir)):
        if not name.endswith(".jsonl"):
            continue
        with open(os.path.join(trace_dir, name), "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    spans.append(json.loads(line))
    return spans


def read_metrics(trace_dir: str) -> dict[str, Any]:
    """The directory's merged metrics snapshot ({} when absent)."""
    path = metrics_path(trace_dir)
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def summarize_spans(
    spans: Iterable[dict[str, Any]],
) -> tuple[int, dict[str, dict[str, Any]]]:
    """Aggregate span dicts by name into per-name timing/error rollups.

    Returns ``(total_span_count, {name: {count, errors, total_seconds,
    mean_seconds, max_seconds}})`` with names sorted — the shape shared by
    the daemon's ``GET /campaigns/<id>/spans`` endpoint and the CLI
    ``telemetry summary`` subcommand, so the two surfaces stay equal for
    the same spans.
    """
    summary: dict[str, dict[str, Any]] = {}
    total = 0
    for payload in spans:
        total += 1
        entry = summary.setdefault(
            str(payload.get("name", "?")),
            {"count": 0, "errors": 0, "total_seconds": 0.0, "max_seconds": 0.0},
        )
        duration = float(payload.get("duration") or 0.0)
        entry["count"] += 1
        entry["total_seconds"] += duration
        entry["max_seconds"] = max(entry["max_seconds"], duration)
        if payload.get("status") == "error":
            entry["errors"] += 1
    for entry in summary.values():
        entry["mean_seconds"] = round(entry["total_seconds"] / entry["count"], 6)
        entry["total_seconds"] = round(entry["total_seconds"], 6)
        entry["max_seconds"] = round(entry["max_seconds"], 6)
    return total, dict(sorted(summary.items()))
