"""Structured tracing: deterministic span ids, nested context, zero cost off.

A :class:`Span` records one timed operation — name, deterministic span id,
parent linkage, wall-clock start, monotonic duration, free-form attributes,
and a status — and a :class:`Tracer` hands them out as context managers::

    tracer = Tracer(sinks=[RingBufferSink()])
    with tracer.span("session.iteration", attributes={"iteration": 3}):
        with tracer.span("engine.submit"):      # nests via thread-local
            ...

Span ids are **deterministic**: each id derives from the parent id, the
span name, and a per-parent sequence number (never from the clock or an
RNG), so two runs of the same code produce the same tree of ids and a
crash-resumed run re-derives the ids it already emitted.  Timestamps and
durations live only in telemetry payloads — they never feed fingerprints,
RNG streams, or result bytes.

Context propagates two ways:

* **thread-local** — ``tracer.span(...)`` parents under the innermost open
  span of the calling thread (the common case);
* **explicit** — pass ``parent=`` (a :class:`Span` or a span id string)
  plus ``sequence=`` to stitch trees across threads and processes;
  :class:`~repro.engine.executor.ProcessPoolExecutor` workers use this to
  ship completed spans back to the parent process with their results.

``baggage`` is a small dict inherited by every descendant span (unlike
``attributes``, which belong to one span).  Sessions use it to stamp a
per-run scope on everything beneath an iteration, which is how concurrent
campaigns keep disjoint span trees over one shared tracer.

The module-level default tracer is a :class:`NoopTracer`: every ``span()``
call returns one preallocated null context manager, so instrumented code
paths cost a single attribute lookup when tracing is off.  Enable tracing
with :func:`repro.telemetry.configure` (or :func:`set_tracer`).
"""

from __future__ import annotations

import functools
import hashlib
import threading
import time
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "get_tracer",
    "set_tracer",
    "current_span",
    "traced",
    "derive_span_id",
]


def derive_span_id(parent_id: str, name: str, sequence: int) -> str:
    """Deterministic 16-hex-char span id from (parent id, name, sequence)."""
    material = f"{parent_id}\x1f{name}\x1f{int(sequence)}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


class Span:
    """One timed, attributed operation in a trace tree.

    Attributes
    ----------
    name:
        Operation name (dotted, e.g. ``"session.iteration"``).
    span_id / parent_id:
        Deterministic identity (see :func:`derive_span_id`); a root span's
        ``parent_id`` is ``""``.
    sequence:
        Index of this span among same-named children of its parent — the
        third input of the id derivation, kept for reconstruction.
    started_at:
        Wall-clock start (``time.time()``); telemetry payloads only.
    duration:
        Monotonic seconds between enter and exit (``None`` while open).
    attributes:
        Free-form JSON-compatible facts about this span alone.
    baggage:
        Inherited key/value context (copied into every descendant).
    status:
        ``"ok"``, or ``"error"`` when the traced block raised.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "sequence",
        "started_at",
        "duration",
        "attributes",
        "baggage",
        "status",
        "_children",
        "_child_lock",
        "_started_mono",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: str,
        sequence: int,
        baggage: Mapping[str, Any] | None = None,
        attributes: Mapping[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.sequence = int(sequence)
        self.started_at: float = 0.0
        self.duration: float | None = None
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.baggage: dict[str, Any] = dict(baggage or {})
        self.status = "ok"
        self._children: dict[str, int] = {}
        self._child_lock = threading.Lock()
        self._started_mono = 0.0

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    def child_sequence(self, name: str) -> int:
        """Allocate the next sequence number for a same-named child."""
        with self._child_lock:
            sequence = self._children.get(name, 0)
            self._children[name] = sequence + 1
            return sequence

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (what sinks, stores, and workers ship)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "sequence": self.sequence,
            "started_at": self.started_at,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
            "baggage": dict(self.baggage),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        """Rebuild a completed span (e.g. one shipped from a worker)."""
        span = cls(
            name=str(data["name"]),
            span_id=str(data["span_id"]),
            parent_id=str(data.get("parent_id", "")),
            sequence=int(data.get("sequence", 0)),
            baggage=data.get("baggage") or {},
            attributes=data.get("attributes") or {},
        )
        span.started_at = float(data.get("started_at", 0.0))
        duration = data.get("duration")
        span.duration = None if duration is None else float(duration)
        span.status = str(data.get("status", "ok"))
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id!r}, "
            f"duration={self.duration}, status={self.status})"
        )


class _ActiveSpan:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self.span.started_at = time.time()
        self.span._started_mono = time.perf_counter()
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        span.duration = time.perf_counter() - span._started_mono
        if exc_type is not None:
            span.status = "error"
            span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(span)
        self._tracer.emit(span)
        return False


class Tracer:
    """Hands out spans, tracks the per-thread context stack, feeds sinks.

    Parameters
    ----------
    sinks:
        Objects with an ``on_span(span)`` method (see
        :mod:`repro.telemetry.sinks`), called with every completed span.
    """

    enabled = True

    def __init__(self, sinks: Iterable[Any] = ()) -> None:
        self._sinks: list[Any] = list(sinks)
        self._listeners: list[Callable[[Span], None]] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        #: Sequence counters for spans without a live parent ``Span`` object
        #: (roots and explicit string parents), keyed by (parent id, name).
        self._sequences: dict[tuple[str, str], int] = {}
        #: Optional trace directory this tracer writes to (set by configure).
        self.trace_dir: str | None = None

    # -- context -----------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unbalanced exit, be safe
            stack.remove(span)

    def current_span(self) -> Span | None:
        """The innermost open span of the calling thread (or None)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _allocate_sequence(self, parent_id: str, name: str) -> int:
        with self._lock:
            key = (parent_id, name)
            sequence = self._sequences.get(key, 0)
            self._sequences[key] = sequence + 1
            return sequence

    # -- span creation -----------------------------------------------------------
    def span(
        self,
        name: str,
        parent: "Span | str | None" = None,
        sequence: int | None = None,
        attributes: Mapping[str, Any] | None = None,
        baggage: Mapping[str, Any] | None = None,
    ) -> _ActiveSpan:
        """Open a span as a context manager yielding the :class:`Span`.

        ``parent`` defaults to the calling thread's innermost open span;
        pass a :class:`Span` or a span id string (with ``sequence``) for
        explicit cross-thread/process propagation.  ``baggage`` entries are
        merged over the parent's (descendants inherit the union).
        """
        if parent is None:
            parent = self.current_span()
        inherited: Mapping[str, Any] = {}
        if isinstance(parent, Span):
            parent_id = parent.span_id
            inherited = parent.baggage
            if sequence is None:
                sequence = parent.child_sequence(name)
        else:
            parent_id = str(parent or "")
            if sequence is None:
                sequence = self._allocate_sequence(parent_id, name)
        merged = dict(inherited)
        if baggage:
            merged.update(baggage)
        span = Span(
            name=name,
            span_id=derive_span_id(parent_id, name, sequence),
            parent_id=parent_id,
            sequence=sequence,
            baggage=merged,
            attributes=attributes,
        )
        return _ActiveSpan(self, span)

    # -- emission ----------------------------------------------------------------
    def emit(self, span: Span) -> None:
        """Deliver a completed span to every listener and sink."""
        with self._lock:
            listeners = list(self._listeners)
            sinks = list(self._sinks)
        for listener in listeners:
            listener(span)
        for sink in sinks:
            sink.on_span(span)

    def add_sink(self, sink: Any) -> "Tracer":
        with self._lock:
            self._sinks.append(sink)
        return self

    def add_listener(self, listener: Callable[[Span], None]) -> "Tracer":
        """Register a callback fired with every completed span."""
        with self._lock:
            self._listeners.append(listener)
        return self

    def remove_listener(self, listener: Callable[[Span], None]) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    @property
    def sinks(self) -> tuple[Any, ...]:
        with self._lock:
            return tuple(self._sinks)

    def close(self) -> None:
        """Close every sink that has a ``close()``."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


class _NoopSpan(Span):
    """Singleton stand-in when tracing is off; absorbs writes."""

    def set_attribute(self, key: str, value: Any) -> "Span":
        return self

    def child_sequence(self, name: str) -> int:
        return 0


class _NoopContext:
    __slots__ = ("_span",)

    def __init__(self, span: _NoopSpan) -> None:
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NoopTracer(Tracer):
    """The default tracer: every operation is a near-free no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._noop_context = _NoopContext(_NoopSpan("noop", "", "", 0))

    def span(self, name, parent=None, sequence=None, attributes=None, baggage=None):
        return self._noop_context

    def current_span(self) -> Span | None:
        return None

    def emit(self, span: Span) -> None:
        pass

    def add_sink(self, sink: Any) -> "Tracer":
        return self

    def add_listener(self, listener: Callable[[Span], None]) -> "Tracer":
        return self


#: The process-wide no-op tracer (the default active tracer).
NOOP_TRACER = NoopTracer()

_active_tracer: Tracer = NOOP_TRACER
_tracer_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide active tracer (:data:`NOOP_TRACER` by default)."""
    return _active_tracer


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` (None restores the no-op); returns the previous one."""
    global _active_tracer
    with _tracer_lock:
        previous = _active_tracer
        _active_tracer = tracer if tracer is not None else NOOP_TRACER
        return previous


def current_span() -> Span | None:
    """The active tracer's innermost open span on this thread."""
    return _active_tracer.current_span()


def traced(
    name: str | None = None, **attributes: Any
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator: run the function inside a span on the active tracer."""

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with get_tracer().span(span_name, attributes=attributes):
                return fn(*args, **kwargs)

        return wrapper

    return decorator
