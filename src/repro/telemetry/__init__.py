"""End-to-end telemetry: structured tracing, metrics, and live profiling.

The observability layer of the repo — one substrate answering "where did
this iteration's time go?" across every subsystem:

* :mod:`repro.telemetry.trace` — :class:`Span`\\ s with deterministic ids,
  thread-local + explicit context propagation, and a no-op default tracer
  so instrumented code is free when tracing is off;
* :mod:`repro.telemetry.metrics` — named Counter/Gauge/Histogram
  instruments in a process-wide :class:`MetricsRegistry` with atomic
  snapshots and cross-process merge;
* :mod:`repro.telemetry.sinks` — ring buffer, JSONL trace files
  (``--trace-out`` / ``REPRO_TRACE_DIR``), and the readers behind the CLI
  ``telemetry`` subcommand.

Typical lifecycle (the CLI does exactly this)::

    import repro.telemetry as telemetry

    tracer = telemetry.configure(trace_dir="traces/")   # JSONL + ring buffer
    ...run tuning...                                    # subsystems emit spans
    telemetry.shutdown()                                # metrics.json + close

Telemetry never perturbs results: span ids derive from (parent, name,
sequence) — never from clocks or RNGs — and timestamps/durations live only
in telemetry payloads, a property locked in by byte-identity regression
tests over traced vs untraced runs on both executors.
"""

from __future__ import annotations

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    histogram_quantiles,
    merge_snapshots,
    render_prometheus,
    set_registry,
)
from repro.telemetry.sinks import (
    CollectSink,
    JsonlTraceSink,
    RingBufferSink,
    metrics_path,
    read_metrics,
    read_spans,
    spans_path,
    summarize_spans,
    write_metrics_snapshot,
)
from repro.telemetry.trace import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
    current_span,
    derive_span_id,
    get_tracer,
    set_tracer,
    traced,
)

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "get_tracer",
    "set_tracer",
    "current_span",
    "traced",
    "derive_span_id",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "merge_snapshots",
    "histogram_quantiles",
    "render_prometheus",
    "RingBufferSink",
    "JsonlTraceSink",
    "CollectSink",
    "spans_path",
    "metrics_path",
    "write_metrics_snapshot",
    "read_spans",
    "read_metrics",
    "summarize_spans",
    "configure",
    "flush_metrics",
    "shutdown",
]

#: Span names campaigns persist as durable ``telemetry`` events (bounded
#: volume: the per-iteration skeleton, not every training in the engine).
PERSISTED_SPAN_NAMES = frozenset(
    {
        "session.iteration",
        "session.top_up",
        "session.reslice",
        "acquisition.fulfill",
        "acquisition.provider",
        "engine.submit",
        "engine.job",
        "discovery.fit",
    }
)


def configure(
    trace_dir: str | None = None, ring_capacity: int = 4096
) -> Tracer:
    """Build and install a live tracer; returns it.

    Always attaches a :class:`RingBufferSink`; ``trace_dir`` additionally
    streams spans to ``<trace_dir>/spans.jsonl`` and makes
    :func:`shutdown` write the metrics snapshot next to it.
    """
    sinks: list[object] = [RingBufferSink(ring_capacity)]
    if trace_dir:
        sinks.append(JsonlTraceSink(spans_path(trace_dir)))
    tracer = Tracer(sinks=sinks)
    tracer.trace_dir = trace_dir
    set_tracer(tracer)
    return tracer


def flush_metrics() -> None:
    """Write the metrics snapshot to the active trace dir *now*.

    The early-flush half of the drain path: a daemon stopping on SIGTERM
    calls this before its (potentially slow) campaign drain, so
    ``<trace_dir>/metrics.json`` survives even if a second signal kills
    the process mid-drain.  The flushed deltas are cleared from the
    registry — :func:`shutdown`'s final merge then only adds whatever
    accumulated after the flush, never double-counting.
    """
    tracer = get_tracer()
    if not tracer.enabled or not tracer.trace_dir:
        return
    registry = get_registry()
    write_metrics_snapshot(tracer.trace_dir, registry.snapshot())
    registry.reset()


def shutdown() -> None:
    """Flush the active tracer and restore the no-op default.

    When the tracer was configured with a trace directory the default
    registry's snapshot is merged into ``<trace_dir>/metrics.json`` first,
    so ``cli telemetry metrics`` sees the run's final numbers.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return
    if tracer.trace_dir:
        write_metrics_snapshot(tracer.trace_dir, get_registry().snapshot())
    tracer.close()
    set_tracer(None)
