"""Baseline data acquisition strategies (Section 2.2 / Figure 3 of the paper).

* :func:`uniform_allocation` — acquire (nearly) equal numbers of examples for
  every slice.
* :func:`water_filling_allocation` — acquire data so all slices end up with
  (nearly) the same size, filling the smallest slices first.
* :func:`proportional_allocation` — acquire data proportional to the current
  slice sizes (the reference [12] baseline, which does not fix bias at all).

All three respect per-slice costs and never exceed the budget; they return
integer example counts keyed by position, aligned with the given slice order.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.plan import AcquisitionPlan
from repro.core.registry import register_strategy
from repro.core.strategy_api import AcquisitionStrategy, TunerState
from repro.utils.exceptions import ConfigurationError


def _validate(
    sizes: Sequence[int] | np.ndarray,
    costs: Sequence[float] | np.ndarray | None,
    budget: float,
) -> tuple[np.ndarray, np.ndarray, float]:
    sizes = np.asarray(sizes, dtype=np.float64).ravel()
    if sizes.size == 0:
        raise ConfigurationError("at least one slice is required")
    if np.any(sizes < 0):
        raise ConfigurationError("slice sizes must be non-negative")
    if costs is None:
        costs = np.ones_like(sizes)
    else:
        costs = np.asarray(costs, dtype=np.float64).ravel()
        if costs.shape != sizes.shape:
            raise ConfigurationError("costs must have one entry per slice")
        if np.any(costs <= 0):
            raise ConfigurationError("costs must be positive")
    budget = float(budget)
    if budget < 0:
        raise ConfigurationError(f"budget must be non-negative, got {budget}")
    return sizes, costs, budget


def _spend_leftover(
    allocation: np.ndarray,
    costs: np.ndarray,
    remaining: float,
    priority: np.ndarray,
) -> np.ndarray:
    """Assign remaining budget one example at a time following ``priority``.

    ``priority`` gives the preferred ordering of slices for extra examples
    (lower value = earlier); ties cycle round-robin so leftovers spread out.
    """
    order = np.argsort(priority, kind="stable")
    progressed = True
    while progressed:
        progressed = False
        for i in order:
            if costs[i] <= remaining + 1e-9:
                allocation[i] += 1
                remaining -= costs[i]
                progressed = True
    return allocation


def uniform_allocation(
    sizes: Sequence[int] | np.ndarray,
    budget: float,
    costs: Sequence[float] | np.ndarray | None = None,
) -> np.ndarray:
    """Acquire (nearly) the same number of examples for every slice.

    The common per-slice count is ``budget / sum(costs)`` rounded down; any
    leftover budget buys one more example for the cheapest slices first.
    """
    sizes, costs, budget = _validate(sizes, costs, budget)
    per_slice = int(budget // costs.sum()) if costs.sum() > 0 else 0
    allocation = np.full(sizes.shape[0], per_slice, dtype=np.int64)
    remaining = budget - float(np.dot(costs, allocation))
    return _spend_leftover(allocation, costs, remaining, priority=costs)


def water_filling_allocation(
    sizes: Sequence[int] | np.ndarray,
    budget: float,
    costs: Sequence[float] | np.ndarray | None = None,
) -> np.ndarray:
    """Acquire data so that all slices end up with (nearly) the same size.

    The target level ``L`` satisfies ``sum_i C_i * max(0, L - |s_i|) = B`` and
    is found by bisection on the piecewise-linear spend function; each slice
    then receives ``max(0, floor(L) - |s_i|)`` examples, with any leftover
    budget topping up the currently-smallest slices.
    """
    sizes, costs, budget = _validate(sizes, costs, budget)

    def spend_at(level: float) -> float:
        return float(np.dot(costs, np.maximum(level - sizes, 0.0)))

    low = float(sizes.min())
    high = float(sizes.max() + budget / costs.min() + 1.0)
    if spend_at(high) < budget:
        level = high
    else:
        for _ in range(100):
            mid = 0.5 * (low + high)
            if spend_at(mid) > budget:
                high = mid
            else:
                low = mid
        level = low
    allocation = np.maximum(np.floor(level) - sizes, 0.0).astype(np.int64)
    spent = float(np.dot(costs, allocation))
    if spent > budget + 1e-9:
        # Floor rounding can still overshoot when many slices sit exactly at
        # the level; trim from the largest resulting slices.
        order = np.argsort(-(sizes + allocation))
        for i in order:
            while allocation[i] > 0 and spent > budget + 1e-9:
                allocation[i] -= 1
                spent -= costs[i]
    remaining = budget - spent
    # Extra budget goes to whichever slice is currently smallest.
    return _spend_leftover(
        allocation, costs, remaining, priority=sizes + allocation
    )


def proportional_allocation(
    sizes: Sequence[int] | np.ndarray,
    budget: float,
    costs: Sequence[float] | np.ndarray | None = None,
) -> np.ndarray:
    """Acquire data in proportion to the current slice sizes.

    This keeps the existing bias intact (the paper considers it strictly
    worse than the other baselines); it is included for completeness and for
    the ablation benchmarks.
    """
    sizes, costs, budget = _validate(sizes, costs, budget)
    total = float(np.dot(costs, sizes))
    if total <= 0:
        return uniform_allocation(sizes, budget, costs)
    scale = budget / total
    allocation = np.floor(sizes * scale).astype(np.int64)
    remaining = budget - float(np.dot(costs, allocation))
    return _spend_leftover(allocation, costs, remaining, priority=-sizes)


class AllocationBaselineStrategy(AcquisitionStrategy):
    """A curve-free allocation rule as a pluggable strategy (single batch).

    Parameters
    ----------
    kind:
        The registry name (``"uniform"``, ``"water_filling"``, or
        ``"proportional"``).
    allocate:
        The allocation function ``(sizes, budget, costs) -> counts``.
    """

    is_iterative = False
    uses_lam = False

    def __init__(
        self,
        kind: str,
        allocate: Callable[[np.ndarray, float, np.ndarray], np.ndarray],
    ) -> None:
        self.name = kind
        self._allocate = allocate

    def propose(
        self, state: TunerState, budget: float, lam: float
    ) -> AcquisitionPlan:
        sizes = state.sliced.sizes()
        costs = np.array(
            [state.cost_model.cost(name) for name in state.sliced.names]
        )
        allocation = self._allocate(sizes, budget, costs)
        counts = {
            name: int(count)
            for name, count in zip(state.sliced.names, allocation)
        }
        return AcquisitionPlan(
            counts=counts,
            expected_cost=float(np.dot(costs, allocation)),
            solver=self.name,
        )


@register_strategy(
    "uniform", description="equal examples per slice (Section 2.2 baseline)"
)
def _uniform_strategy() -> AllocationBaselineStrategy:
    return AllocationBaselineStrategy("uniform", uniform_allocation)


@register_strategy(
    "water_filling",
    aliases=("waterfilling",),
    description="equalize final slice sizes, smallest slices first",
)
def _water_filling_strategy() -> AllocationBaselineStrategy:
    return AllocationBaselineStrategy("water_filling", water_filling_allocation)


@register_strategy(
    "proportional",
    description="acquire proportionally to current sizes (keeps bias)",
)
def _proportional_strategy() -> AllocationBaselineStrategy:
    return AllocationBaselineStrategy("proportional", proportional_allocation)
