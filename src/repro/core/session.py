"""Streaming tuning sessions: the propose-acquire-refit loop, step by step.

:class:`TunerSession` is the engine behind :meth:`SliceTuner.run
<repro.core.tuner.SliceTuner.run>`.  Where ``run`` executes a whole strategy
and hands back one :class:`~repro.core.plan.TuningResult`, a session exposes
the loop itself::

    session = TunerSession(tuner)
    for record in session.stream(budget=2000, strategy="aggressive"):
        print(record.iteration, record.acquired)
        if record.spent == 0:
            break                       # the caller can stop at any point
    result = session.result()           # everything acquired so far

Sessions add three things on top of the batch API:

* **Lifecycle hooks** — ``on_fulfillment`` fires per delivered fulfillment,
  ``on_acquire`` / ``on_iteration`` fire per batch, and ``on_evaluate``
  around the before/after evaluations, so progress can be logged or shipped
  to a dashboard while the run is in flight.
* **Per-fulfillment events** — every run owns an
  :class:`~repro.acquisition.service.AcquisitionService` routing its
  acquisitions across the tuner's named providers;
  :meth:`TunerSession.stream_events` yields each
  :class:`~repro.acquisition.requests.Fulfillment` (partial deliveries, dry
  pools, failover provenance) alongside the iteration records.
* **Early-stop predicates** — ``stop_when=lambda record: ...`` (or
  :meth:`TunerSession.add_early_stop`) ends the loop as soon as a predicate
  is satisfied, e.g. stop once the imbalance ratio is close to 1.
* **Checkpointing** — :meth:`TunerSession.state_dict` snapshots the
  orchestration state (budget spent, iteration index, the strategy's
  schedule state, and all records); :meth:`TunerSession.load_state_dict`
  plus :meth:`TunerSession.resume` continue a paused run.  The dataset
  itself is owned by the tuner; persist it separately if the process exits.

Any strategy name registered in :mod:`repro.core.registry` can be streamed,
including user-defined registrations.

Evaluation trials and the per-iteration curve refits inside curve-based
strategies run through the tuner's
:class:`~repro.engine.executor.Executor` (exposed to strategies as
``TunerState.executor``), so the serial/process-pool choice and the result
cache apply to streaming runs exactly as they do to batch runs.  Strategies
that train their own reward models inline (e.g. the bandit's
``state.train_model()``) still draw on the shared RNG stream and bypass the
executor.

Each :meth:`TunerSession.stream` call owns its run state, but all runs of
one session mutate the same tuner (dataset, cost model, RNG) — run them to
completion one at a time; :meth:`TunerSession.result` / ``state_dict`` refer
to the most recently started run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from dataclasses import field as dataclasses_field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping, Union

from repro.acquisition.budget import BudgetLedger
from repro.acquisition.cost import TableCost
from repro.acquisition.requests import SKIPPED, Fulfillment
from repro.acquisition.router import AcquisitionRouter
from repro.acquisition.service import AcquisitionService
from repro.acquisition.source import DiscoverySource
from repro.core.plan import AcquisitionPlan, IterationRecord, TuningResult
from repro.core.registry import get_strategy
from repro.core.strategy_api import (
    AcquisitionStrategy,
    TunerState,
    top_up_minimum_sizes,
)
from repro.engine.factories import describe_factory
from repro.engine.job import TrainingJob, stable_seed
from repro.slices.discovery import get_discovery_method
from repro.telemetry import Span, get_registry, get_tracer
from repro.utils.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tuner import SliceTuner
    from repro.fairness.report import FairnessReport

#: Hook signatures (see :meth:`TunerSession.add_hook`).
IterationHook = Callable[[IterationRecord], None]
EvaluateHook = Callable[[str, "FairnessReport"], None]
FulfillmentHook = Callable[[Fulfillment], None]
SpanHook = Callable[[Span], None]
EarlyStop = Callable[[IterationRecord], bool]

#: Default trace scopes; only used for in-process span routing, so a plain
#: process-local counter is fine (campaigns override with their campaign id).
_scope_counter = itertools.count(1)

_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class FulfillmentEvent:
    """One fulfillment landing mid-run (see :meth:`TunerSession.stream_events`).

    Attributes
    ----------
    iteration:
        The iteration whose batch the fulfillment belongs to (0 for the
        minimum-slice-size top-up).
    fulfillment:
        The full :class:`~repro.acquisition.requests.Fulfillment`, including
        the delivered dataset, shortfall, and provenance.
    """

    iteration: int
    fulfillment: Fulfillment

    kind: str = "fulfillment"


@dataclass(frozen=True)
class IterationEvent:
    """One completed acquisition batch (the strategy has digested it)."""

    record: IterationRecord

    kind: str = "iteration"


@dataclass(frozen=True)
class ResliceEvent:
    """One dynamic re-slice: discovery re-ran and re-partitioned the data.

    Emitted by sessions running with ``SliceTunerConfig.discover`` set,
    after the boundary iteration's record and before the next iteration's
    proposals.  The boundaries are content-fingerprinted (see
    :meth:`~repro.slices.discovery.SliceDiscoveryMethod.fingerprint`), so a
    crash-resumed run that re-discovers the same partition emits a
    byte-identical event — the property the campaign store's
    ``replay_events`` relies on.

    Attributes
    ----------
    iteration:
        The completed iteration after which discovery re-ran.
    slice_generation:
        1-based generation counter of the slice partition (0 = the initial,
        static slices).
    method:
        Registry name of the discovery method.
    fingerprint:
        Content hash of the discovered boundaries.
    slice_names:
        Names of the discovered slices, in assignment order.
    """

    iteration: int
    slice_generation: int
    method: str
    fingerprint: str
    slice_names: tuple[str, ...]

    kind: str = "reslice"


#: Everything :meth:`TunerSession.stream_events` can yield.
SessionEvent = Union[FulfillmentEvent, IterationEvent, ResliceEvent]


@dataclass
class _RunContext:
    """The mutable state of one tuning run (one stream/run invocation)."""

    strategy: AcquisitionStrategy
    state: TunerState
    result: TuningResult
    lam: float
    iteration: int = 0
    slice_generation: int = 0
    last_reslice_iteration: int = -1
    reslice_log: list[ResliceEvent] = dataclasses_field(default_factory=list)


class TunerSession:
    """A stateful, step-wise tuning run over one :class:`SliceTuner`.

    Parameters
    ----------
    tuner:
        The orchestrator owning the dataset, source, estimator, cost model,
        and evaluation protocol.
    on_iteration / on_acquire / on_evaluate / on_fulfillment:
        Optional hooks; see :meth:`add_hook`.
    """

    def __init__(
        self,
        tuner: "SliceTuner",
        on_iteration: IterationHook | None = None,
        on_acquire: IterationHook | None = None,
        on_evaluate: EvaluateHook | None = None,
        on_fulfillment: FulfillmentHook | None = None,
    ) -> None:
        self.tuner = tuner
        self._hooks: dict[str, list[Callable]] = {
            "iteration": [on_iteration] if on_iteration else [],
            "acquire": [on_acquire] if on_acquire else [],
            "evaluate": [on_evaluate] if on_evaluate else [],
            "fulfillment": [on_fulfillment] if on_fulfillment else [],
            "reslice": [],
            "span": [],
        }
        self._early_stops: list[EarlyStop] = []
        #: Baggage scope stamped on every span this session opens; spans
        #: carrying a different scope (another session sharing the tracer)
        #: never reach this session's ``span`` hooks.
        self._scope = f"session-{next(_scope_counter)}"
        #: The most recently started run (stream()/load_state_dict()).
        self._run: _RunContext | None = None

    # -- hooks and early stops ---------------------------------------------------
    def add_hook(self, event: str, hook: Callable) -> "TunerSession":
        """Register a hook; ``event`` is ``fulfillment``, ``acquire``, ``iteration``, ``evaluate``, ``reslice``, or ``span``.

        ``fulfillment`` hooks fire with every
        :class:`~repro.acquisition.requests.Fulfillment` the moment the
        acquisition service applies it (so partial deliveries and dry pools
        are observable mid-batch); ``acquire`` hooks fire right after a
        batch lands in the dataset; ``iteration`` hooks fire once the
        strategy has digested the batch; ``evaluate`` hooks fire as
        ``(stage, report)`` around the before/after evaluations of
        :meth:`run`; ``reslice`` hooks fire with a :class:`ResliceEvent`
        every time dynamic discovery re-partitions the data; ``span`` hooks
        fire with every completed :class:`~repro.telemetry.Span` belonging
        to this session's runs (only while a live tracer is installed —
        see :func:`repro.telemetry.configure`).  Returns ``self`` so calls
        chain.
        """
        if event not in self._hooks:
            raise ConfigurationError(
                f"unknown hook event {event!r}; expected one of "
                f"{tuple(self._hooks)}"
            )
        self._hooks[event].append(hook)
        return self

    def add_early_stop(self, predicate: EarlyStop) -> "TunerSession":
        """Stop streaming as soon as ``predicate(record)`` is True."""
        self._early_stops.append(predicate)
        return self

    def on_span(self, hook: SpanHook) -> "TunerSession":
        """Shorthand for ``add_hook("span", hook)``."""
        return self.add_hook("span", hook)

    def set_trace_scope(self, scope: str) -> "TunerSession":
        """Stamp this session's spans with ``scope`` (baggage ``scope`` key).

        Concurrent sessions share one process-wide tracer; the scope is how
        each session (and each campaign, which sets its campaign id here)
        tells its own spans apart.  Returns ``self`` so calls chain.
        """
        self._scope = str(scope)
        return self

    def _fire(self, event: str, *args) -> None:
        for hook in self._hooks[event]:
            hook(*args)

    def _dispatch_span(self, span: Span) -> None:
        """Tracer listener: forward this session's completed spans to hooks."""
        if span.baggage.get("scope") != self._scope:
            return
        self._fire("span", span)

    # -- the streaming API -------------------------------------------------------
    def stream(
        self,
        budget: float,
        strategy: str | AcquisitionStrategy = "moderate",
        lam: float | None = None,
        stop_when: EarlyStop | Iterable[EarlyStop] | None = None,
    ) -> Iterator[IterationRecord]:
        """Run a strategy, yielding each :class:`IterationRecord` as it lands.

        Parameters
        ----------
        budget:
            Total data acquisition budget ``B``.
        strategy:
            A registered strategy name (see
            :func:`repro.core.registry.available_strategies`) or an
            :class:`~repro.core.strategy_api.AcquisitionStrategy` instance.
        lam:
            Loss/unfairness weight; defaults to the tuner's configured value.
        stop_when:
            Early-stop predicate(s) for this run, in addition to any added
            through :meth:`add_early_stop`.

        The generator mutates the tuner's dataset as it goes; breaking out
        early keeps everything acquired so far, and :meth:`result` /
        :meth:`state_dict` reflect the partial run.
        """
        run = self._begin(budget, strategy, lam)
        if stop_when is not None:
            stops = [stop_when] if callable(stop_when) else list(stop_when)
        else:
            stops = []
        return self._drive(run, extra_stops=stops)

    def stream_events(
        self,
        budget: float,
        strategy: str | AcquisitionStrategy = "moderate",
        lam: float | None = None,
        stop_when: EarlyStop | Iterable[EarlyStop] | None = None,
    ) -> Iterator[SessionEvent]:
        """Like :meth:`stream`, but yields per-fulfillment events too.

        Every :class:`~repro.acquisition.requests.Fulfillment` produced by
        the run's acquisition service is yielded as a
        :class:`FulfillmentEvent` (in delivery order), followed by an
        :class:`IterationEvent` once the strategy has digested the batch —
        so partial deliveries, dry pools, and multi-provider failover are
        first-class observations instead of exceptions::

            for event in session.stream_events(budget=500, strategy="moderate"):
                if event.kind == "fulfillment":
                    f = event.fulfillment
                    print(f.slice_name, f.status, f.provenance, f.shortfall)
                else:
                    print("iteration", event.record.iteration, "done")

        Breaking out early keeps everything acquired so far, exactly as with
        :meth:`stream`.
        """
        records = self.stream(budget, strategy=strategy, lam=lam, stop_when=stop_when)
        run = self._run
        assert run is not None and run.state.service is not None
        fulfillments = run.state.service.fulfillments
        reslices = run.reslice_log
        seen = 0
        seen_reslices = 0
        for record in records:
            for reslice in reslices[seen_reslices:]:
                yield reslice
            seen_reslices = len(reslices)
            for fulfillment in fulfillments[seen:]:
                yield FulfillmentEvent(
                    iteration=record.iteration, fulfillment=fulfillment
                )
            seen = len(fulfillments)
            yield IterationEvent(record=record)

    def resume(self) -> Iterator[IterationRecord]:
        """Continue a run restored with :meth:`load_state_dict`."""
        if self._run is None:
            raise ConfigurationError(
                "nothing to resume: call stream() or load_state_dict() first"
            )
        return self._drive(self._run, extra_stops=[])

    def run(
        self,
        budget: float,
        strategy: str | AcquisitionStrategy = "moderate",
        lam: float | None = None,
        evaluate: bool = True,
    ) -> TuningResult:
        """Batch counterpart of :meth:`stream`: drain the loop, return the result.

        When ``evaluate`` is True the model is trained and evaluated before
        and after acquisition and the reports attached (firing ``evaluate``
        hooks with stages ``"initial"`` and ``"final"``).
        """
        initial_report = None
        if evaluate:
            initial_report = self.tuner.evaluate()
            self._fire("evaluate", "initial", initial_report)
        for _ in self.stream(budget, strategy=strategy, lam=lam):
            pass
        result = self.result()
        result.initial_report = initial_report
        if evaluate:
            result.final_report = self.tuner.evaluate()
            self._fire("evaluate", "final", result.final_report)
        return result

    def result(self) -> TuningResult:
        """The (possibly partial) result of the most recently started run."""
        if self._run is None:
            raise ConfigurationError("no run in progress: call stream() first")
        return self._run.result

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Snapshot of the orchestration state of the current run.

        Captures the strategy (name + schedule state), budget accounting,
        iteration index, and the result so far — everything needed by
        :meth:`load_state_dict` to continue the loop.  The tuner's dataset
        and RNG are *not* captured; a faithful resume needs the same live
        tuner (or a dataset restored by other means).
        """
        run = self._run
        if run is None:
            raise ConfigurationError("no run in progress: call stream() first")
        return {
            "version": _CHECKPOINT_VERSION,
            "strategy": run.strategy.name,
            "strategy_state": run.strategy.state_dict(),
            "lam": run.lam,
            "budget": run.state.ledger.total,
            "spent": run.state.ledger.spent,
            "iteration": run.iteration,
            "slice_generation": run.slice_generation,
            "last_reslice_iteration": run.last_reslice_iteration,
            "result": run.result.to_dict(),
        }

    def load_state_dict(
        self,
        state: Mapping[str, Any],
        strategy: AcquisitionStrategy | None = None,
    ) -> None:
        """Restore a run captured by :meth:`state_dict`; continue via :meth:`resume`.

        The strategy is re-created from the registry by the checkpointed name
        and its run state restored via ``strategy.load_state_dict`` (``begin``
        is *not* called, so no checkpointed state is clobbered and no model is
        trained during the restore).  For a run started from an unregistered
        :class:`~repro.core.strategy_api.AcquisitionStrategy` instance, pass
        an equivalent instance as ``strategy``.
        """
        if int(state.get("version", -1)) != _CHECKPOINT_VERSION:
            raise ConfigurationError(
                f"unsupported session checkpoint version {state.get('version')!r}"
            )
        if strategy is None:
            strategy = get_strategy(str(state["strategy"]))
        elif strategy.name != state["strategy"]:
            raise ConfigurationError(
                f"checkpoint was taken with strategy {state['strategy']!r} "
                f"but {strategy.name!r} was supplied"
            )
        ledger = BudgetLedger(total=float(state["budget"]))
        ledger.spent = float(state["spent"])
        result = TuningResult.from_dict(state["result"])
        run = _RunContext(
            strategy=strategy,
            state=self._make_state(ledger),
            result=result,
            lam=float(state["lam"]),
            iteration=int(state["iteration"]),
            slice_generation=int(state.get("slice_generation", 0)),
            last_reslice_iteration=int(state.get("last_reslice_iteration", -1)),
        )
        run.state.iteration = run.iteration
        run.state.records = result.iterations
        strategy.load_state_dict(state.get("strategy_state", {}))
        self._run = run

    # -- internals ---------------------------------------------------------------
    def _make_state(self, ledger: BudgetLedger) -> TunerState:
        tuner = self.tuner
        router = AcquisitionRouter(tuner.sources, default=tuner.provider_order)
        service = AcquisitionService(
            router,
            cost_model=tuner.cost_model,
            ledger=ledger,
            sliced=tuner.sliced,
        )
        service.add_callback(lambda fulfillment: self._fire("fulfillment", fulfillment))
        return TunerState(
            sliced=tuner.sliced,
            source=tuner.source,
            estimator=tuner.estimator,
            cost_model=tuner.cost_model,
            ledger=ledger,
            config=tuner.config,
            model_factory=tuner.model_factory,
            trainer_config=tuner.trainer_config,
            rng=tuner._rng,
            executor=tuner.executor,
            service=service,
        )

    def _begin(
        self,
        budget: float,
        strategy: str | AcquisitionStrategy,
        lam: float | None,
    ) -> _RunContext:
        if isinstance(strategy, str):
            strategy = get_strategy(strategy)
        elif not isinstance(strategy, AcquisitionStrategy):
            raise ConfigurationError(
                f"strategy must be a registered name or an "
                f"AcquisitionStrategy, got {type(strategy).__name__}"
            )
        lam = self.tuner.config.lam if lam is None else float(lam)
        result = TuningResult(
            method=strategy.name,
            lam=lam if strategy.uses_lam else 0.0,
            budget=float(budget),
        )
        result.total_acquired = {name: 0 for name in self.tuner.sliced.names}
        run = _RunContext(
            strategy=strategy,
            state=self._make_state(BudgetLedger(total=float(budget))),
            result=result,
            lam=lam,
        )
        run.state.records = result.iterations
        strategy.begin(run.state)
        self._run = run
        return run

    def _drive(
        self, run: _RunContext, extra_stops: list[EarlyStop]
    ) -> Iterator[IterationRecord]:
        strategy, state, result = run.strategy, run.state, run.result
        stops = [*self._early_stops, *extra_stops]
        tuner = self.tuner
        tracer = get_tracer()
        registry = get_registry()
        listening = tracer.enabled
        if listening:
            tracer.add_listener(self._dispatch_span)

        def finish(record: IterationRecord) -> bool:
            """Yield-side bookkeeping; True when an early stop fired."""
            result.spent = state.ledger.spent
            return any(predicate(record) for predicate in stops)

        try:
            # Steps 3-6 of Algorithm 1: top every slice up to the minimum
            # size L.
            if (
                run.iteration == 0
                and strategy.enforce_min_slice_size
                and tuner.config.min_slice_size > 0
            ):
                with tracer.span(
                    "session.top_up",
                    attributes={"strategy": strategy.name},
                    baggage={"scope": self._scope, "iteration": 0},
                ) as span:
                    record = self._top_up_minimum_sizes(run)
                    if record is not None:
                        span.set_attribute("spent", record.spent)
                if record is not None:
                    result.iterations.append(record)
                    self._fire("acquire", record)
                    self._fire("iteration", record)
                    stop = finish(record)
                    yield record
                    if stop:
                        return

            max_iterations = (
                strategy.iteration_cap or tuner.config.max_iterations
            )
            while run.iteration < max_iterations:
                if strategy.is_iterative:
                    if state.ledger.exhausted:
                        break
                    if state.ledger.remaining < state.cheapest_cost():
                        break
                if (
                    tuner.config.reslice_every > 0
                    and run.iteration > 0
                    and run.iteration % tuner.config.reslice_every == 0
                    and run.last_reslice_iteration != run.iteration
                ):
                    self._reslice(run)
                # The span closes before the "iteration" hooks and the
                # yield, so it measures propose/acquire/observe — not
                # whatever the consumer does between records.
                with tracer.span(
                    "session.iteration",
                    attributes={"strategy": strategy.name},
                    baggage={
                        "scope": self._scope,
                        "iteration": run.iteration + 1,
                    },
                ) as span:
                    plan = strategy.propose(
                        state, state.ledger.remaining, run.lam
                    )
                    if plan is None:
                        span.set_attribute("proposed", False)
                        break
                    run.iteration += 1
                    state.iteration = run.iteration
                    record = self._acquire_plan(state, plan, run.iteration)
                    result.iterations.append(record)
                    for name, count in record.acquired.items():
                        result.total_acquired[name] = (
                            result.total_acquired.get(name, 0) + count
                        )
                    self._fire("acquire", record)
                    keep_going = strategy.observe(state, record)
                    span.set_attribute(
                        "acquired", sum(record.acquired.values())
                    )
                    span.set_attribute("spent", record.spent)
                registry.counter("session.iterations").inc()
                self._fire("iteration", record)
                stop = finish(record)
                yield record
                if stop or not keep_going or not strategy.is_iterative:
                    break
            result.spent = state.ledger.spent
        finally:
            if listening:
                tracer.remove_listener(self._dispatch_span)

    def _reslice(self, run: _RunContext) -> None:
        """Re-run slice discovery and swap the run onto the new partition.

        Deterministic by construction: the discovery seed and the training
        seed of the probe model derive from the slice generation through
        :func:`~repro.engine.job.stable_seed` (never from the shared RNG
        stream), so a crash-resumed run that replays this boundary
        re-discovers byte-identical slices.  After the swap the strategy is
        re-initialized via ``begin`` — its per-slice state keys by the old
        names — and a :class:`ResliceEvent` fires on the ``reslice`` hooks.
        """
        tuner = self.tuner
        generation = run.slice_generation + 1
        with get_tracer().span(
            "session.reslice",
            attributes={
                "generation": generation,
                "method": tuner.config.discover,
            },
            baggage={"scope": self._scope, "iteration": run.iteration},
        ):
            method = get_discovery_method(
                tuner.config.discover,
                seed=stable_seed(
                    "slice-discovery", tuner.config.discover, generation
                ),
            )
            pool = tuner.sliced.combined_train()
            job = TrainingJob(
                train=pool,
                n_classes=tuner.sliced.n_classes,
                seed=stable_seed("slice-discovery-model", generation),
                trainer_config=tuner.trainer_config,
                model_factory=tuner.model_factory,
                factory_name=describe_factory(tuner.model_factory),
                tag=("discover", generation),
            )
            model = tuner.executor.submit([job])[0].model
            method.fit(model, pool)
        get_registry().counter("session.reslices").inc()

        # Base providers understand the *original* slice names; unwrap a
        # previous generation's adapter rather than nesting adapters.
        base_source = tuner.source
        if isinstance(base_source, DiscoverySource):
            base_names = list(base_source.base_names)
            base_source = base_source.base
        else:
            base_names = tuner.sliced.names

        new_sliced = method.transform(tuner.sliced)
        discovery_source = DiscoverySource(
            base=base_source,
            method=method,
            base_names=base_names,
            n_features=new_sliced.n_features,
        )
        tuner.sliced = new_sliced
        tuner.sources = {"discovered": discovery_source}
        tuner.provider_order = ("discovered",)
        tuner.source = discovery_source
        tuner.cost_model = TableCost(
            {name: new_sliced[name].cost for name in new_sliced.names}
        )

        state = run.state
        state.sliced = new_sliced
        state.source = discovery_source
        state.cost_model = tuner.cost_model
        if state.service is not None:
            state.service.router = AcquisitionRouter(
                tuner.sources, default=tuner.provider_order
            )
            state.service.cost_model = tuner.cost_model
            state.service.sliced = new_sliced
        for name in new_sliced.names:
            run.result.total_acquired.setdefault(name, 0)
        run.strategy.begin(state)

        run.slice_generation = generation
        run.last_reslice_iteration = run.iteration
        event = ResliceEvent(
            iteration=run.iteration,
            slice_generation=generation,
            method=method.name,
            fingerprint=method.fingerprint(),
            slice_names=tuple(new_sliced.names),
        )
        run.reslice_log.append(event)
        self._fire("reslice", event)

    @property
    def slice_generation(self) -> int:
        """Current slice-partition generation (0 until the first re-slice)."""
        return self._run.slice_generation if self._run is not None else 0

    def _acquire_plan(
        self, state: TunerState, plan: AcquisitionPlan, iteration: int
    ) -> IterationRecord:
        """Acquire one proposed batch, charging only for delivered examples.

        The plan is translated into declarative acquisition requests and
        submitted to the run's :class:`~repro.acquisition.service.
        AcquisitionService`; each fulfillment is applied incrementally (and
        fires the ``fulfillment`` hooks) as it lands, and its summary is
        recorded on the iteration record.
        """
        record = IterationRecord(
            iteration=iteration,
            requested={
                name: int(count) for name, count in plan.counts.items()
            },
            limit=plan.limit,
            curve_parameters=dict(plan.curve_parameters),
        )
        record.imbalance_before = (
            state.sliced.imbalance_ratio()
            if plan.imbalance_before is None
            else plan.imbalance_before
        )
        spent_before = state.ledger.spent
        deadline_rounds = self.tuner.config.acquisition_rounds
        for name, count in plan.counts.items():
            if count <= 0:
                continue
            fulfillment = state.service.acquire(
                name,
                int(count),
                deadline_rounds=deadline_rounds,
                tag=f"iteration:{iteration}",
            )
            record.fulfillments.append(fulfillment.summary())
            if fulfillment.status == SKIPPED:
                continue  # capped to zero by the budget; no provider consulted
            record.acquired[name] = (
                record.acquired.get(name, 0) + fulfillment.delivered_count
            )
        record.spent = state.ledger.spent - spent_before
        record.imbalance_after = (
            state.sliced.imbalance_ratio()
            if plan.imbalance_after is None
            else plan.imbalance_after
        )
        return record

    def _top_up_minimum_sizes(self, run: _RunContext) -> IterationRecord | None:
        """Top every slice up to ``min_slice_size``; None when nothing to do."""
        state = run.state
        record = IterationRecord(iteration=0, limit=run.strategy.current_limit)
        record.imbalance_before = state.sliced.imbalance_ratio()
        spent_before = state.ledger.spent
        delivered_by_slice = top_up_minimum_sizes(
            state.sliced,
            state.source,
            state.cost_model,
            state.ledger,
            self.tuner.config.min_slice_size,
            record,
            service=state.service,
        )
        for name, delivered in delivered_by_slice.items():
            run.result.total_acquired[name] = (
                run.result.total_acquired.get(name, 0) + delivered
            )
        record.imbalance_after = state.sliced.imbalance_ratio()
        record.spent = state.ledger.spent - spent_before
        return record if delivered_by_slice else None
