"""The pluggable acquisition-strategy API.

The paper frames Slice Tuner as a selective data acquisition *framework*:
One-shot, the Iterative variants, the baselines, and even the rotting-bandit
comparator are all instances of one propose-acquire-refit loop.  This module
captures that loop's contract:

* :class:`TunerState` — a read/observe view over everything the orchestrator
  owns (slices, source, estimator, cost model, budget ledger, RNG) that a
  strategy may inspect when proposing an acquisition batch.
* :class:`AcquisitionStrategy` — the protocol every acquisition policy
  implements: ``propose(state, budget, lam) -> AcquisitionPlan`` plus
  ``name``/``is_iterative`` metadata and optional lifecycle hooks
  (``begin``, ``observe``) and checkpointing (``state_dict`` /
  ``load_state_dict``).

Strategies are instantiated through :mod:`repro.core.registry`; the driving
loop lives in :class:`repro.core.session.TunerSession`.  Registering a new
policy makes it available to :meth:`repro.core.tuner.SliceTuner.run`, the
``TunerSession`` streaming API, the CLI, and the experiment runner — no
``elif`` chain to extend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.acquisition.service import AcquisitionService
from repro.core.plan import AcquisitionPlan, IterationRecord
from repro.fairness.report import evaluate_fairness
from repro.ml.metrics import log_loss
from repro.ml.train import Trainer

if TYPE_CHECKING:  # pragma: no cover - import cycle guards, typing only
    from repro.acquisition.budget import BudgetLedger
    from repro.acquisition.cost import CostModel
    from repro.acquisition.source import DataSource
    from repro.core.tuner import SliceTunerConfig
    from repro.curves.estimator import LearningCurveEstimator, ModelFactory
    from repro.engine.executor import Executor
    from repro.fairness.report import FairnessReport
    from repro.ml.train import TrainingConfig
    from repro.slices.sliced_dataset import SlicedDataset


@dataclass
class TunerState:
    """Everything a strategy may inspect while a tuning run is in flight.

    The state is a *view*: mutating the dataset or charging the ledger is the
    session's job; strategies only read it (and may train throwaway models
    through the helpers below, e.g. to measure rewards).

    Attributes
    ----------
    sliced:
        The slices and their current data (grows as batches are acquired).
    source:
        Where new examples come from.
    estimator:
        The learning-curve estimator shared by curve-based strategies.
    cost_model:
        Per-slice acquisition costs (may escalate as data is acquired).
    ledger:
        The run's budget ledger; ``ledger.remaining`` is what is left.
    config:
        The orchestrator configuration (``lam`` default, ``min_slice_size``,
        ``max_iterations``, ...).
    model_factory / trainer_config:
        The model family and hyperparameters used for evaluations, available
        to strategies that measure their own rewards (e.g. the bandit).
    executor:
        The run's :class:`~repro.engine.executor.Executor` (None for legacy
        drivers).  Strategies with several independent trainings to run
        should batch them into :class:`~repro.engine.job.TrainingJob` specs
        and submit them here rather than looping over ``Trainer.fit``.
        (The :meth:`train_model` helper below predates the engine and still
        trains inline on the shared RNG stream.)
    service:
        The run's :class:`~repro.acquisition.service.AcquisitionService`
        (None for legacy drivers).  Strategies may inspect its fulfillment
        history (``service.fulfillments``, ``service.shortfall_by_slice()``)
        or routed availability (``service.available(name)``); actually
        acquiring and charging stays the session's job.
    rng:
        The run's random generator.
    iteration:
        1-based index of the iteration currently being proposed (0 while the
        minimum-slice-size top-up runs).
    records:
        The :class:`~repro.core.plan.IterationRecord` history so far.
    """

    sliced: "SlicedDataset"
    source: "DataSource"
    estimator: "LearningCurveEstimator"
    cost_model: "CostModel"
    ledger: "BudgetLedger"
    config: "SliceTunerConfig"
    model_factory: "ModelFactory"
    trainer_config: "TrainingConfig"
    rng: np.random.Generator
    executor: "Executor | None" = None
    service: AcquisitionService | None = None
    iteration: int = 0
    records: list[IterationRecord] = field(default_factory=list)

    # -- convenience views -------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """The slice names, in canonical order."""
        return tuple(self.sliced.names)

    @property
    def remaining(self) -> float:
        """Budget still available."""
        return self.ledger.remaining

    def unit_costs(self) -> dict[str, float]:
        """Current per-slice unit costs."""
        return {name: self.cost_model.cost(name) for name in self.sliced.names}

    def cheapest_cost(self) -> float:
        """The cheapest current unit cost across slices."""
        return min(self.cost_model.cost(name) for name in self.sliced.names)

    # -- model helpers for reward-measuring strategies ---------------------------
    def train_model(self):
        """Train a fresh model on the current combined training data."""
        model = self.model_factory(self.sliced.n_classes)
        trainer = Trainer(config=self.trainer_config, random_state=self.rng)
        trainer.fit(model, self.sliced.combined_train())
        return model

    def slice_validation_losses(self) -> dict[str, float]:
        """Per-slice validation log loss of a freshly trained model."""
        model = self.train_model()
        return {
            name: log_loss(model, dataset)
            for name, dataset in self.sliced.validation_by_slice().items()
        }

    def fairness_report(self) -> "FairnessReport":
        """Full fairness/accuracy report of a freshly trained model."""
        return evaluate_fairness(self.train_model(), self.sliced)


class AcquisitionStrategy:
    """Base class / protocol for pluggable acquisition policies.

    A strategy answers one question — *given the current state, what should
    the next acquisition batch be?* — through :meth:`propose`.  The driving
    loop (:class:`~repro.core.session.TunerSession`) handles everything else:
    budget accounting, actually acquiring the data, record keeping, hooks,
    and stopping.

    Class attributes (override in subclasses)
    -----------------------------------------
    name:
        Registry key reported in :class:`~repro.core.plan.TuningResult`.
    is_iterative:
        When False the session acquires exactly one batch (One-shot and the
        allocation baselines); when True it keeps calling :meth:`propose`
        until the budget runs dry, :meth:`propose` returns ``None``, or
        :meth:`observe` returns False.
    uses_lam:
        Whether the policy consumes the loss/unfairness weight ``lam``
        (baselines do not; their results report ``lam = 0``).
    enforce_min_slice_size:
        Whether the session should run the paper's minimum-slice-size top-up
        (Algorithm 1 steps 3-6) before the main loop.
    iteration_cap:
        Optional per-strategy override of ``config.max_iterations``.
    """

    name: str = "base"
    is_iterative: bool = False
    uses_lam: bool = True
    enforce_min_slice_size: bool = False
    iteration_cap: int | None = None

    # -- lifecycle ---------------------------------------------------------------
    def begin(self, state: TunerState) -> None:
        """Reset per-run state; called once before the first proposal."""

    def propose(
        self, state: TunerState, budget: float, lam: float
    ) -> AcquisitionPlan | None:
        """Return the next batch to acquire, or ``None`` to stop.

        Parameters
        ----------
        state:
            The live tuner state.
        budget:
            The budget still available for this and all future batches.
        lam:
            The loss/unfairness trade-off weight for this run.
        """
        raise NotImplementedError

    def observe(self, state: TunerState, record: IterationRecord) -> bool:
        """Digest the outcome of an acquisition; return False to stop.

        Called after each batch is acquired with the resulting
        :class:`~repro.core.plan.IterationRecord`.  Iterative strategies use
        this to advance their schedules (grow ``T``, update reward windows).
        """
        return True

    @property
    def current_limit(self) -> float:
        """The imbalance-ratio change limit in force (0 when not applicable)."""
        return 0.0

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the strategy's mutable run state."""
        return {}

    def load_state_dict(self, state: Mapping) -> None:
        """Restore run state captured by :meth:`state_dict`."""


def acquire_batch(
    sliced: "SlicedDataset",
    source: "DataSource",
    cost_model: "CostModel",
    ledger: "BudgetLedger",
    name: str,
    count: int,
) -> int:
    """Acquire ``count`` examples for one slice, updating all bookkeeping.

    A thin facade over :class:`~repro.acquisition.service.AcquisitionService`
    kept for the legacy drivers (:class:`~repro.core.iterative.
    IterativeAlgorithm`, the bandit acquirer) and for user code written
    against the PR-1 API: one request in, one fulfillment out, with the
    ledger and cost model charged for what was actually *delivered* — an
    exhausted pool or a lossy crowdsourcing campaign never debits phantom
    examples.  Returns the delivered count.  The session holds a per-run
    service instead, so its fulfillments accumulate and stream as events.
    """
    service = AcquisitionService(
        source, cost_model=cost_model, ledger=ledger, sliced=sliced
    )
    return service.acquire(name, count).delivered_count


def top_up_minimum_sizes(
    sliced: "SlicedDataset",
    source: "DataSource",
    cost_model: "CostModel",
    ledger: "BudgetLedger",
    min_slice_size: int,
    record: IterationRecord,
    service: AcquisitionService | None = None,
) -> dict[str, int]:
    """Steps 3-6 of Algorithm 1: top every slice up to ``min_slice_size``.

    Fills ``record.requested``/``record.acquired`` per topped-up slice and
    returns the delivered counts (empty when no slice needed topping up).
    Shared by :class:`~repro.core.session.TunerSession` (which passes its
    per-run ``service`` so fulfillments are logged and streamed) and the
    legacy :class:`~repro.core.iterative.IterativeAlgorithm` (which lets an
    ephemeral service be built from the raw parts).
    """
    if service is None:
        service = AcquisitionService(
            source, cost_model=cost_model, ledger=ledger, sliced=sliced
        )
    delivered_by_slice: dict[str, int] = {}
    for name in sliced.names:
        deficit = min_slice_size - sliced[name].size
        if deficit <= 0:
            continue
        unit_cost = cost_model.cost(name)
        affordable = min(deficit, ledger.affordable_count(unit_cost))
        if affordable <= 0:
            continue
        record.requested[name] = affordable
        fulfillment = service.acquire(name, affordable, tag="min_slice_size")
        record.acquired[name] = (
            record.acquired.get(name, 0) + fulfillment.delivered_count
        )
        record.fulfillments.append(fulfillment.summary())
        delivered_by_slice[name] = fulfillment.delivered_count
    return delivered_by_slice


def annotate_plan(
    plan: AcquisitionPlan,
    *,
    limit: float | None = None,
    curve_parameters: Mapping[str, tuple[float, float]] | None = None,
    imbalance_before: float | None = None,
    imbalance_after: float | None = None,
) -> AcquisitionPlan:
    """Return a copy of ``plan`` carrying strategy-side annotations.

    The session copies these annotations onto the
    :class:`~repro.core.plan.IterationRecord` it emits, so strategies can
    report the limit ``T`` in force, the fitted curve parameters, and their
    predicted imbalance ratios without holding a reference to the record.
    """
    return AcquisitionPlan(
        counts=plan.counts,
        expected_cost=plan.expected_cost,
        solver=plan.solver,
        limit=plan.limit if limit is None else float(limit),
        curve_parameters=(
            plan.curve_parameters if curve_parameters is None
            else dict(curve_parameters)
        ),
        imbalance_before=(
            plan.imbalance_before if imbalance_before is None
            else float(imbalance_before)
        ),
        imbalance_after=(
            plan.imbalance_after if imbalance_after is None
            else float(imbalance_after)
        ),
    )
