"""Imbalance ratio and the GetChangeRatio solver of Algorithm 1.

The imbalance ratio (largest slice size divided by smallest) is the paper's
proxy for data bias: the Iterative algorithm limits how much the ratio may
change per acquisition batch so learning curves stay trustworthy between
updates.  When the One-shot allocation would change the ratio by more than
the limit ``T``, ``GetChangeRatio`` finds the scaling factor ``x`` in (0, 1]
such that acquiring ``x * num_examples`` lands exactly on the target ratio.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import optimize

from repro.utils.exceptions import OptimizationError

from repro.slices.validation import imbalance_ratio  # re-exported

__all__ = ["imbalance_ratio", "get_change_ratio"]


def get_change_ratio(
    sizes: Sequence[float] | np.ndarray,
    num_examples: Sequence[float] | np.ndarray,
    target_ratio: float,
) -> float:
    """Find ``x`` in (0, 1] with ``imbalance_ratio(sizes + x*num) = target_ratio``.

    Parameters
    ----------
    sizes:
        Current slice sizes (all positive).
    num_examples:
        The full-budget allocation proposed by One-shot.
    target_ratio:
        The imbalance ratio the scaled allocation must land on; it must lie
        between the current ratio and the ratio after the full allocation
        (this is guaranteed by Algorithm 1's construction).

    Returns
    -------
    The scaling factor ``x``.  Follows the paper's worked example: with
    ``sizes = [10, 10]``, ``num = [10, 40]`` and ``target = 2`` the result is
    ``0.5``.
    """
    sizes = np.asarray(sizes, dtype=np.float64).ravel()
    num_examples = np.asarray(num_examples, dtype=np.float64).ravel()
    if sizes.shape != num_examples.shape:
        raise OptimizationError("sizes and num_examples must have the same length")
    if np.any(sizes <= 0):
        raise OptimizationError(
            "all slice sizes must be positive to compute a change ratio"
        )
    target_ratio = float(target_ratio)
    if target_ratio < 1.0:
        raise OptimizationError(
            f"target imbalance ratio must be >= 1, got {target_ratio}"
        )

    def ratio_at(x: float) -> float:
        return imbalance_ratio(sizes + x * num_examples)

    start, end = ratio_at(0.0), ratio_at(1.0)
    low_value = start - target_ratio
    high_value = end - target_ratio
    if abs(low_value) < 1e-12:
        return 0.0
    if abs(high_value) < 1e-12:
        return 1.0
    if np.sign(low_value) == np.sign(high_value):
        raise OptimizationError(
            f"target ratio {target_ratio} is not bracketed by the current ratio "
            f"{start:.4f} and the full-allocation ratio {end:.4f}"
        )
    return float(
        optimize.brentq(lambda x: ratio_at(x) - target_ratio, 0.0, 1.0, xtol=1e-10)
    )
