"""The Iterative algorithm — Algorithm 1 of the paper (Section 5.2).

The Iterative algorithm repeatedly:

1. re-estimates the learning curves on the current data,
2. runs One-shot with the *entire remaining budget*,
3. caps the resulting acquisition so the imbalance ratio changes by at most
   ``T`` (scaling the allocation by the ``GetChangeRatio`` factor),
4. acquires the capped allocation, charges the budget, and
5. grows ``T`` according to the chosen strategy.

It also enforces the minimum slice size ``L`` up front.  The iterative
updates keep the learning curves reliable and account for cross-slice
influence, which is why the paper's Conservative/Moderate/Aggressive variants
beat One-shot.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.acquisition.budget import BudgetLedger
from repro.acquisition.cost import CostModel, TableCost
from repro.acquisition.source import DataSource
from repro.core.imbalance import get_change_ratio, imbalance_ratio
from repro.core.oneshot import OneShotAlgorithm
from repro.core.plan import IterationRecord, TuningResult
from repro.core.strategies import LimitStrategy
from repro.slices.sliced_dataset import SlicedDataset
from repro.utils.exceptions import OptimizationError
from repro.utils.validation import check_non_negative_int, check_positive_int


class IterativeAlgorithm:
    """Algorithm 1: iterative selective data acquisition.

    Parameters
    ----------
    oneshot:
        The One-shot planner invoked each iteration with the remaining budget.
    strategy:
        Schedule for the imbalance-ratio change limit ``T``
        (Conservative / Moderate / Aggressive).
    min_slice_size:
        The paper's ``L``: every slice is topped up to at least this size
        before the main loop (0 disables the step).
    max_iterations:
        Safety cap on the number of iterations.
    """

    def __init__(
        self,
        oneshot: OneShotAlgorithm,
        strategy: LimitStrategy,
        min_slice_size: int = 0,
        max_iterations: int = 30,
    ) -> None:
        self.oneshot = oneshot
        self.strategy = strategy
        self.min_slice_size = check_non_negative_int(min_slice_size, "min_slice_size")
        self.max_iterations = check_positive_int(max_iterations, "max_iterations")

    # -- the algorithm -----------------------------------------------------------
    def run(
        self,
        sliced: SlicedDataset,
        budget: float,
        source: DataSource,
        cost_model: CostModel | None = None,
        on_iteration: Callable[[IterationRecord], None] | None = None,
    ) -> TuningResult:
        """Run Algorithm 1, mutating ``sliced`` as data is acquired.

        Parameters
        ----------
        sliced:
            The slices and their data; acquired examples are appended to it.
        budget:
            The total data acquisition budget ``B``.
        source:
            Where acquired examples come from.
        cost_model:
            Per-slice cost model; defaults to the costs on the slices.
            Requested (not delivered) examples are charged, mirroring a
            crowdsourcing campaign where every submitted task is paid.
        on_iteration:
            Optional callback invoked with each :class:`IterationRecord`.
        """
        cost_model = cost_model or TableCost(
            {name: sliced[name].cost for name in sliced.names}
        )
        ledger = BudgetLedger(total=float(budget))
        result = TuningResult(
            method=self.strategy.name, lam=self.oneshot.lam, budget=float(budget)
        )
        result.total_acquired = {name: 0 for name in sliced.names}

        limit = self.strategy.initial()
        self._ensure_minimum_sizes(sliced, source, cost_model, ledger, result)
        current_ratio = imbalance_ratio(sliced.sizes())

        for iteration in range(1, self.max_iterations + 1):
            if ledger.exhausted:
                break
            cheapest = min(cost_model.cost(name) for name in sliced.names)
            if ledger.remaining < cheapest:
                break

            plan, curves = self.oneshot.plan(
                sliced, ledger.remaining, cost_model=cost_model
            )
            requested = dict(plan.counts)
            if plan.is_empty():
                break

            # Cap the change of the imbalance ratio at the current limit T.
            sizes = sliced.sizes().astype(np.float64)
            order = sliced.names
            num = np.array([requested[name] for name in order], dtype=np.float64)
            after_ratio = imbalance_ratio(sizes + num)
            if abs(after_ratio - current_ratio) > limit:
                target = current_ratio + limit * np.sign(after_ratio - current_ratio)
                try:
                    change_ratio = get_change_ratio(sizes, num, target)
                except OptimizationError:
                    change_ratio = 1.0
                num = np.floor(change_ratio * num)
                requested = {
                    name: int(count) for name, count in zip(order, num)
                }
                after_ratio = imbalance_ratio(sizes + num)

            record = IterationRecord(
                iteration=iteration,
                requested=dict(requested),
                limit=limit,
                imbalance_before=current_ratio,
                imbalance_after=after_ratio,
                curve_parameters={
                    name: (curve.b, curve.a) for name, curve in curves.items()
                },
            )

            acquired_total = self._acquire(
                sliced, source, cost_model, ledger, requested, record, result
            )
            result.iterations.append(record)
            if on_iteration is not None:
                on_iteration(record)
            if acquired_total == 0:
                # The capped plan bought nothing (e.g. rounding to zero);
                # growing T may unblock the next iteration, otherwise stop.
                next_limit = self.strategy.increase(limit)
                if next_limit <= limit:
                    break
                limit = next_limit
                continue

            limit = self.strategy.increase(limit)
            current_ratio = imbalance_ratio(sliced.sizes())

        result.spent = ledger.spent
        return result

    # -- helpers --------------------------------------------------------------------
    def _ensure_minimum_sizes(
        self,
        sliced: SlicedDataset,
        source: DataSource,
        cost_model: CostModel,
        ledger: BudgetLedger,
        result: TuningResult,
    ) -> None:
        """Steps 3-6 of Algorithm 1: top every slice up to the minimum size L."""
        if self.min_slice_size <= 0:
            return
        record = IterationRecord(iteration=0, limit=self.strategy.initial())
        record.imbalance_before = imbalance_ratio(sliced.sizes())
        spent_before = ledger.spent
        any_topup = False
        for name in sliced.names:
            deficit = self.min_slice_size - sliced[name].size
            if deficit <= 0:
                continue
            unit_cost = cost_model.cost(name)
            affordable = min(deficit, ledger.affordable_count(unit_cost))
            if affordable <= 0:
                continue
            any_topup = True
            record.requested[name] = affordable
            self._acquire_one(
                sliced, source, cost_model, ledger, name, affordable, record, result
            )
        record.imbalance_after = imbalance_ratio(sliced.sizes())
        record.spent = ledger.spent - spent_before
        if any_topup:
            result.iterations.append(record)

    def _acquire(
        self,
        sliced: SlicedDataset,
        source: DataSource,
        cost_model: CostModel,
        ledger: BudgetLedger,
        requested: dict[str, int],
        record: IterationRecord,
        result: TuningResult,
    ) -> int:
        """Acquire one batch; returns the total number of delivered examples."""
        spent_before = ledger.spent
        total = 0
        for name, count in requested.items():
            if count <= 0:
                continue
            unit_cost = cost_model.cost(name)
            affordable = min(count, ledger.affordable_count(unit_cost))
            if affordable <= 0:
                continue
            total += self._acquire_one(
                sliced, source, cost_model, ledger, name, affordable, record, result
            )
        record.spent = ledger.spent - spent_before
        return total

    def _acquire_one(
        self,
        sliced: SlicedDataset,
        source: DataSource,
        cost_model: CostModel,
        ledger: BudgetLedger,
        name: str,
        count: int,
        record: IterationRecord,
        result: TuningResult,
    ) -> int:
        """Acquire ``count`` examples for one slice, updating all bookkeeping."""
        unit_cost = cost_model.cost(name)
        delivered = source.acquire(name, count)
        ledger.charge(name, count, unit_cost)
        cost_model.record_acquisition(name, count)
        sliced.add_examples(name, delivered)
        record.acquired[name] = record.acquired.get(name, 0) + len(delivered)
        result.total_acquired[name] = result.total_acquired.get(name, 0) + len(
            delivered
        )
        return len(delivered)
