"""The Iterative algorithm — Algorithm 1 of the paper (Section 5.2).

The Iterative algorithm repeatedly:

1. re-estimates the learning curves on the current data,
2. runs One-shot with the *entire remaining budget*,
3. caps the resulting acquisition so the imbalance ratio changes by at most
   ``T`` (scaling the allocation by the ``GetChangeRatio`` factor),
4. acquires the capped allocation, charges the budget, and
5. grows ``T`` according to the chosen strategy.

It also enforces the minimum slice size ``L`` up front.  The iterative
updates keep the learning curves reliable and account for cross-slice
influence, which is why the paper's Conservative/Moderate/Aggressive variants
beat One-shot.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.acquisition.budget import BudgetLedger
from repro.acquisition.cost import CostModel, TableCost
from repro.acquisition.source import DataSource
from repro.core.imbalance import get_change_ratio, imbalance_ratio
from repro.core.oneshot import OneShotAlgorithm
from repro.core.plan import AcquisitionPlan, IterationRecord, TuningResult
from repro.core.registry import register_strategy
from repro.core.strategies import LimitStrategy, make_strategy
from repro.core.strategy_api import (
    AcquisitionStrategy,
    TunerState,
    acquire_batch,
    top_up_minimum_sizes,
)
from repro.slices.sliced_dataset import SlicedDataset
from repro.utils.exceptions import OptimizationError
from repro.utils.validation import check_non_negative_int, check_positive_int


def cap_change_by_limit(
    sizes: np.ndarray,
    order: tuple[str, ...],
    requested: dict[str, int],
    current_ratio: float,
    limit: float,
) -> tuple[dict[str, int], float]:
    """Cap ``requested`` so the imbalance ratio changes by at most ``limit``.

    Returns the (possibly scaled-down) integer allocation and the imbalance
    ratio it would produce.  This is the ``GetChangeRatio`` step of
    Algorithm 1, shared by :class:`IterativeAlgorithm` and
    :class:`ScheduledIterativeStrategy`.
    """
    sizes = sizes.astype(np.float64)
    num = np.array([requested[name] for name in order], dtype=np.float64)
    after_ratio = imbalance_ratio(sizes + num)
    if abs(after_ratio - current_ratio) <= limit:
        return dict(requested), float(after_ratio)
    target = current_ratio + limit * np.sign(after_ratio - current_ratio)
    try:
        change_ratio = get_change_ratio(sizes, num, target)
    except OptimizationError:
        change_ratio = 1.0
    num = np.floor(change_ratio * num)
    capped = {name: int(count) for name, count in zip(order, num)}
    return capped, float(imbalance_ratio(sizes + num))


class IterativeAlgorithm:
    """Algorithm 1: iterative selective data acquisition.

    .. note::
       This is the standalone, tuner-free driver of Algorithm 1.  The
       orchestrator (:meth:`repro.core.tuner.SliceTuner.run`) now runs the
       same algorithm through :class:`ScheduledIterativeStrategy` inside a
       :class:`~repro.core.session.TunerSession`; both charge the budget for
       delivered (not merely requested) examples.

    Parameters
    ----------
    oneshot:
        The One-shot planner invoked each iteration with the remaining budget.
    strategy:
        Schedule for the imbalance-ratio change limit ``T``
        (Conservative / Moderate / Aggressive).
    min_slice_size:
        The paper's ``L``: every slice is topped up to at least this size
        before the main loop (0 disables the step).
    max_iterations:
        Safety cap on the number of iterations.
    """

    def __init__(
        self,
        oneshot: OneShotAlgorithm,
        strategy: LimitStrategy,
        min_slice_size: int = 0,
        max_iterations: int = 30,
    ) -> None:
        self.oneshot = oneshot
        self.strategy = strategy
        self.min_slice_size = check_non_negative_int(min_slice_size, "min_slice_size")
        self.max_iterations = check_positive_int(max_iterations, "max_iterations")

    # -- the algorithm -----------------------------------------------------------
    def run(
        self,
        sliced: SlicedDataset,
        budget: float,
        source: DataSource,
        cost_model: CostModel | None = None,
        on_iteration: Callable[[IterationRecord], None] | None = None,
    ) -> TuningResult:
        """Run Algorithm 1, mutating ``sliced`` as data is acquired.

        Parameters
        ----------
        sliced:
            The slices and their data; acquired examples are appended to it.
        budget:
            The total data acquisition budget ``B``.
        source:
            Where acquired examples come from.
        cost_model:
            Per-slice cost model; defaults to the costs on the slices.
            Only delivered examples are charged, so an exhausted pool or a
            lossy crowdsourcing campaign never debits phantom examples.
        on_iteration:
            Optional callback invoked with each :class:`IterationRecord`.
        """
        cost_model = cost_model or TableCost(
            {name: sliced[name].cost for name in sliced.names}
        )
        ledger = BudgetLedger(total=float(budget))
        result = TuningResult(
            method=self.strategy.name, lam=self.oneshot.lam, budget=float(budget)
        )
        result.total_acquired = {name: 0 for name in sliced.names}

        limit = self.strategy.initial()
        self._ensure_minimum_sizes(sliced, source, cost_model, ledger, result)
        current_ratio = imbalance_ratio(sliced.sizes())

        for iteration in range(1, self.max_iterations + 1):
            if ledger.exhausted:
                break
            cheapest = min(cost_model.cost(name) for name in sliced.names)
            if ledger.remaining < cheapest:
                break

            plan, curves = self.oneshot.plan(
                sliced, ledger.remaining, cost_model=cost_model
            )
            requested = dict(plan.counts)
            if plan.is_empty():
                break

            # Cap the change of the imbalance ratio at the current limit T.
            requested, after_ratio = cap_change_by_limit(
                sliced.sizes(), sliced.names, requested, current_ratio, limit
            )

            record = IterationRecord(
                iteration=iteration,
                requested=dict(requested),
                limit=limit,
                imbalance_before=current_ratio,
                imbalance_after=after_ratio,
                curve_parameters={
                    name: (curve.b, curve.a) for name, curve in curves.items()
                },
            )

            acquired_total = self._acquire(
                sliced, source, cost_model, ledger, requested, record, result
            )
            result.iterations.append(record)
            if on_iteration is not None:
                on_iteration(record)
            if acquired_total == 0:
                # The capped plan bought nothing (e.g. rounding to zero);
                # growing T may unblock the next iteration, otherwise stop.
                next_limit = self.strategy.increase(limit)
                if next_limit <= limit:
                    break
                limit = next_limit
                continue

            limit = self.strategy.increase(limit)
            current_ratio = imbalance_ratio(sliced.sizes())

        result.spent = ledger.spent
        return result

    # -- helpers --------------------------------------------------------------------
    def _ensure_minimum_sizes(
        self,
        sliced: SlicedDataset,
        source: DataSource,
        cost_model: CostModel,
        ledger: BudgetLedger,
        result: TuningResult,
    ) -> None:
        """Steps 3-6 of Algorithm 1: top every slice up to the minimum size L."""
        if self.min_slice_size <= 0:
            return
        record = IterationRecord(iteration=0, limit=self.strategy.initial())
        record.imbalance_before = imbalance_ratio(sliced.sizes())
        spent_before = ledger.spent
        delivered_by_slice = top_up_minimum_sizes(
            sliced, source, cost_model, ledger, self.min_slice_size, record
        )
        for name, delivered in delivered_by_slice.items():
            result.total_acquired[name] = (
                result.total_acquired.get(name, 0) + delivered
            )
        record.imbalance_after = imbalance_ratio(sliced.sizes())
        record.spent = ledger.spent - spent_before
        if delivered_by_slice:
            result.iterations.append(record)

    def _acquire(
        self,
        sliced: SlicedDataset,
        source: DataSource,
        cost_model: CostModel,
        ledger: BudgetLedger,
        requested: dict[str, int],
        record: IterationRecord,
        result: TuningResult,
    ) -> int:
        """Acquire one batch; returns the total number of delivered examples."""
        spent_before = ledger.spent
        total = 0
        for name, count in requested.items():
            if count <= 0:
                continue
            unit_cost = cost_model.cost(name)
            affordable = min(count, ledger.affordable_count(unit_cost))
            if affordable <= 0:
                continue
            total += self._acquire_one(
                sliced, source, cost_model, ledger, name, affordable, record, result
            )
        record.spent = ledger.spent - spent_before
        return total

    def _acquire_one(
        self,
        sliced: SlicedDataset,
        source: DataSource,
        cost_model: CostModel,
        ledger: BudgetLedger,
        name: str,
        count: int,
        record: IterationRecord,
        result: TuningResult,
    ) -> int:
        """Acquire ``count`` examples for one slice, updating all bookkeeping."""
        delivered = acquire_batch(sliced, source, cost_model, ledger, name, count)
        record.acquired[name] = record.acquired.get(name, 0) + delivered
        result.total_acquired[name] = (
            result.total_acquired.get(name, 0) + delivered
        )
        return delivered


class ScheduledIterativeStrategy(AcquisitionStrategy):
    """Algorithm 1 as a pluggable strategy.

    Each proposal re-runs One-shot with the remaining budget and caps the
    allocation so the imbalance ratio changes by at most the current limit
    ``T``; :meth:`observe` then grows ``T`` according to the wrapped
    Conservative / Moderate / Aggressive schedule.

    Parameters
    ----------
    schedule:
        The :class:`~repro.core.strategies.LimitStrategy` growing ``T``.
    """

    is_iterative = True
    uses_lam = True
    enforce_min_slice_size = True

    def __init__(self, schedule: LimitStrategy) -> None:
        self.schedule = schedule
        self.name = schedule.name
        self._limit = schedule.initial()
        self._current_ratio: float | None = None

    # -- lifecycle ---------------------------------------------------------------
    def begin(self, state: TunerState) -> None:
        self._limit = self.schedule.initial()
        self._current_ratio = None

    def propose(
        self, state: TunerState, budget: float, lam: float
    ) -> AcquisitionPlan | None:
        if self._current_ratio is None:
            # First proposal: measure the post-top-up imbalance ratio.
            self._current_ratio = imbalance_ratio(state.sliced.sizes())

        algorithm = OneShotAlgorithm(state.estimator, lam=lam)
        plan, curves = algorithm.plan(
            state.sliced, budget, cost_model=state.cost_model
        )
        if plan.is_empty():
            return None

        # Cap the change of the imbalance ratio at the current limit T.
        order = state.sliced.names
        requested, after_ratio = cap_change_by_limit(
            state.sliced.sizes(),
            order,
            dict(plan.counts),
            self._current_ratio,
            self._limit,
        )

        costs = np.array([state.cost_model.cost(name) for name in order])
        return AcquisitionPlan(
            counts=requested,
            expected_cost=float(
                np.dot(costs, [requested[name] for name in order])
            ),
            solver=plan.solver,
            limit=self._limit,
            curve_parameters={
                name: (curve.b, curve.a) for name, curve in curves.items()
            },
            imbalance_before=self._current_ratio,
            imbalance_after=float(after_ratio),
        )

    def observe(self, state: TunerState, record: IterationRecord) -> bool:
        if sum(record.acquired.values()) == 0:
            # The capped plan bought nothing (e.g. rounding to zero);
            # growing T may unblock the next iteration, otherwise stop.
            next_limit = self.schedule.increase(self._limit)
            if next_limit <= self._limit:
                return False
            self._limit = next_limit
            return True
        self._limit = self.schedule.increase(self._limit)
        self._current_ratio = imbalance_ratio(state.sliced.sizes())
        return True

    @property
    def current_limit(self) -> float:
        return self._limit

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "limit": self._limit,
            "current_ratio": self._current_ratio,
            "schedule": {
                "initial_limit": self.schedule.initial_limit,
                "step": getattr(self.schedule, "step", None),
                "factor": getattr(self.schedule, "factor", None),
            },
        }

    def load_state_dict(self, state) -> None:
        self._limit = float(state["limit"])
        ratio = state.get("current_ratio")
        self._current_ratio = None if ratio is None else float(ratio)
        schedule = state.get("schedule", {})
        self.schedule.initial_limit = float(
            schedule.get("initial_limit", self.schedule.initial_limit)
        )
        for knob in ("step", "factor"):
            if schedule.get(knob) is not None and hasattr(self.schedule, knob):
                setattr(self.schedule, knob, float(schedule[knob]))


@register_strategy(
    "conservative",
    description="iterative updates; T stays constant (most iterations)",
)
def _conservative_strategy(initial_limit: float = 1.0) -> ScheduledIterativeStrategy:
    return ScheduledIterativeStrategy(make_strategy("conservative", initial_limit))


@register_strategy(
    "moderate",
    description="iterative updates; T grows by a constant per iteration",
)
def _moderate_strategy(initial_limit: float = 1.0) -> ScheduledIterativeStrategy:
    return ScheduledIterativeStrategy(make_strategy("moderate", initial_limit))


@register_strategy(
    "aggressive",
    description="iterative updates; T doubles per iteration (fewest iterations)",
)
def _aggressive_strategy(initial_limit: float = 1.0) -> ScheduledIterativeStrategy:
    return ScheduledIterativeStrategy(make_strategy("aggressive", initial_limit))
