"""The One-shot algorithm (Section 5.1 of the paper).

One-shot estimates the learning curves once, solves the convex optimization
once using the entire budget, and returns the resulting acquisition plan.  It
assumes the learning curves are perfect and the slices independent; the
Iterative algorithm (Section 5.2) relaxes both assumptions.
"""

from __future__ import annotations

from typing import Mapping

from repro.acquisition.cost import CostModel
from repro.core.optimizer import optimize_allocation
from repro.core.plan import AcquisitionPlan
from repro.core.problem import SelectiveAcquisitionProblem
from repro.core.registry import register_strategy
from repro.core.strategy_api import AcquisitionStrategy, TunerState, annotate_plan
from repro.curves.estimator import LearningCurveEstimator
from repro.curves.power_law import FittedCurve
from repro.slices.sliced_dataset import SlicedDataset
from repro.utils.validation import check_non_negative


class OneShotAlgorithm:
    """Estimate curves once, optimize once, spend the whole budget.

    Parameters
    ----------
    estimator:
        The learning-curve estimator to use.
    lam:
        Loss/unfairness trade-off weight passed to the optimizer.
    """

    def __init__(self, estimator: LearningCurveEstimator, lam: float = 1.0) -> None:
        self.estimator = estimator
        self.lam = check_non_negative(lam, "lam")

    def plan(
        self,
        sliced: SlicedDataset,
        budget: float,
        curves: Mapping[str, FittedCurve] | None = None,
        cost_model: CostModel | None = None,
    ) -> tuple[AcquisitionPlan, dict[str, FittedCurve]]:
        """Compute the acquisition plan for ``budget``.

        Parameters
        ----------
        sliced:
            The current slices and their data.
        budget:
            Budget for this plan (One-shot always plans to spend all of it).
        curves:
            Previously estimated curves to reuse; when omitted the estimator
            is run on the current data.
        cost_model:
            Per-slice cost model; defaults to the costs stored on the slices.

        Returns
        -------
        ``(plan, curves)`` — the integer acquisition plan and the learning
        curves it was computed from.
        """
        budget = check_non_negative(budget, "budget")
        if curves is None:
            curves = self.estimator.estimate(sliced)
        else:
            curves = dict(curves)

        if cost_model is not None:
            costs = {name: cost_model.cost(name) for name in sliced.names}
        else:
            costs = {name: sliced[name].cost for name in sliced.names}

        problem = SelectiveAcquisitionProblem.from_curves(
            curves=curves,
            sizes={name: sliced[name].size for name in sliced.names},
            costs=costs,
            budget=budget,
            lam=self.lam,
            order=sliced.names,
        )
        result = optimize_allocation(problem)
        plan = AcquisitionPlan(
            counts=result.as_dict(problem.slice_names),
            expected_cost=result.spent,
            solver=f"oneshot/{result.solver}",
        )
        return plan, dict(curves)


@register_strategy(
    "oneshot",
    description="estimate curves once, optimize once, spend the whole budget",
)
class OneShotStrategy(AcquisitionStrategy):
    """Section 5.1 as a pluggable strategy: one proposal, one batch."""

    name = "oneshot"
    is_iterative = False
    uses_lam = True

    def propose(
        self, state: TunerState, budget: float, lam: float
    ) -> AcquisitionPlan:
        algorithm = OneShotAlgorithm(state.estimator, lam=lam)
        plan, curves = algorithm.plan(
            state.sliced, budget, cost_model=state.cost_model
        )
        return annotate_plan(
            plan,
            curve_parameters={
                name: (curve.b, curve.a) for name, curve in curves.items()
            },
        )
