"""String-keyed registry of acquisition strategies.

Every acquisition policy — the paper's One-shot and Iterative variants, the
allocation baselines, the rotting-bandit comparator, and any user-defined
policy — is registered here under one or more names.  The registry is what
:meth:`repro.core.tuner.SliceTuner.run`, the
:class:`~repro.core.session.TunerSession` streaming API, the CLI
(``--methods`` and the ``strategies`` subcommand), and the experiment runner
resolve method strings against.

Registering a custom strategy::

    from repro.core.registry import register_strategy
    from repro.core.strategy_api import AcquisitionStrategy

    @register_strategy("greedy_worst", description="all budget to the worst slice")
    class GreedyWorstSlice(AcquisitionStrategy):
        name = "greedy_worst"

        def propose(self, state, budget, lam):
            ...

After which ``tuner.run(budget, method="greedy_worst")`` and
``python -m repro.cli compare --methods greedy_worst ...`` just work.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.strategy_api import AcquisitionStrategy
from repro.utils.exceptions import ConfigurationError

#: A callable building a fresh strategy instance (a class or a factory).
StrategyFactory = Callable[..., AcquisitionStrategy]

_REGISTRY: dict[str, StrategyFactory] = {}
_PRIMARY: dict[str, str] = {}  # registry key -> primary name
_DESCRIPTIONS: dict[str, str] = {}  # primary name -> one-line description
_BUILTINS_LOADED = False


def _normalize(name: str) -> str:
    return name.strip().lower()


def register_strategy(
    name: str,
    *,
    aliases: Iterable[str] = (),
    description: str = "",
    overwrite: bool = False,
) -> Callable[[StrategyFactory], StrategyFactory]:
    """Class/function decorator registering an acquisition strategy.

    Parameters
    ----------
    name:
        Primary registry key (case-insensitive).
    aliases:
        Additional keys resolving to the same factory.
    description:
        One-line summary shown by ``available_strategies`` listings and the
        CLI ``strategies`` subcommand; defaults to the factory's first
        docstring line.
    overwrite:
        Allow replacing an existing registration (off by default so typos
        don't silently shadow built-ins).
    """
    keys = [_normalize(name), *(_normalize(alias) for alias in aliases)]

    def decorator(factory: StrategyFactory) -> StrategyFactory:
        for key in keys:
            if not overwrite and key in _REGISTRY:
                raise ConfigurationError(
                    f"strategy {key!r} is already registered; pass "
                    f"overwrite=True to replace it"
                )
        doc = description or (factory.__doc__ or "").strip().splitlines()[0:1]
        if isinstance(doc, list):
            doc = doc[0] if doc else ""
        for key in keys:
            _REGISTRY[key] = factory
            _PRIMARY[key] = keys[0]
        _DESCRIPTIONS[keys[0]] = doc
        return factory

    return decorator


def unregister_strategy(name: str) -> None:
    """Remove a registration (primarily for tests tearing down fixtures)."""
    key = _normalize(name)
    primary = _PRIMARY.get(key)
    for alias in [k for k, p in _PRIMARY.items() if p == primary]:
        _REGISTRY.pop(alias, None)
        _PRIMARY.pop(alias, None)
    _DESCRIPTIONS.pop(primary, None)


def _ensure_builtins() -> None:
    """Import the modules whose import side effects register the built-ins."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    # Imported lazily so the registry module itself stays cycle-free.
    import repro.bandit.rotting  # noqa: F401
    import repro.core.baselines  # noqa: F401
    import repro.core.iterative  # noqa: F401
    import repro.core.oneshot  # noqa: F401


def get_strategy(name: str, **kwargs) -> AcquisitionStrategy:
    """Instantiate the strategy registered under ``name``.

    Extra keyword arguments are forwarded to the strategy factory (e.g.
    ``get_strategy("bandit", batch_size=25)``).  Raises
    :class:`~repro.utils.exceptions.ConfigurationError` for unknown names.
    """
    _ensure_builtins()
    key = _normalize(name)
    factory = _REGISTRY.get(key)
    if factory is None:
        raise ConfigurationError(
            f"unknown strategy {name!r}; registered strategies: "
            f"{', '.join(available_strategies())}"
        )
    strategy = factory(**kwargs)
    if not isinstance(strategy, AcquisitionStrategy):
        raise ConfigurationError(
            f"factory for strategy {name!r} returned "
            f"{type(strategy).__name__}, not an AcquisitionStrategy"
        )
    return strategy


def available_strategies() -> tuple[str, ...]:
    """Sorted primary names of every registered strategy."""
    _ensure_builtins()
    return tuple(sorted(set(_PRIMARY.values())))


def strategy_descriptions() -> dict[str, str]:
    """Mapping of primary strategy name to its one-line description."""
    _ensure_builtins()
    return {name: _DESCRIPTIONS.get(name, "") for name in available_strategies()}


def is_registered(name: str) -> bool:
    """Whether ``name`` resolves to a registered strategy."""
    _ensure_builtins()
    return _normalize(name) in _REGISTRY
