"""The :class:`SliceTuner` orchestrator (Figure 4 of the paper).

SliceTuner ties everything together: it owns the sliced dataset, the data
source, the learning-curve estimator, and the cost model, and exposes a small
API:

* :meth:`SliceTuner.estimate_curves` — fit the current learning curves.
* :meth:`SliceTuner.plan` — compute a One-shot acquisition plan without
  acquiring anything (the "concrete action items" the paper advertises).
* :meth:`SliceTuner.run` — execute a full acquisition strategy (One-shot,
  one of the Iterative variants, or one of the baselines) and optionally
  evaluate the model before and after.
* :meth:`SliceTuner.evaluate` — train the model on the current data and
  report loss, per-slice losses, and unfairness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.acquisition.budget import BudgetLedger
from repro.acquisition.cost import CostModel, TableCost
from repro.acquisition.source import DataSource
from repro.core.baselines import (
    proportional_allocation,
    uniform_allocation,
    water_filling_allocation,
)
from repro.core.iterative import IterativeAlgorithm
from repro.core.oneshot import OneShotAlgorithm
from repro.core.plan import AcquisitionPlan, IterationRecord, TuningResult
from repro.core.strategies import make_strategy
from repro.curves.estimator import (
    CurveEstimationConfig,
    LearningCurveEstimator,
    ModelFactory,
    default_model_factory,
)
from repro.curves.power_law import FittedCurve
from repro.fairness.report import FairnessReport, evaluate_fairness
from repro.ml.train import Trainer, TrainingConfig
from repro.slices.sliced_dataset import SlicedDataset
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RandomState, as_generator

#: Methods implemented by :meth:`SliceTuner.run`.
SLICE_TUNER_METHODS = ("oneshot", "conservative", "moderate", "aggressive")
BASELINE_METHODS = ("uniform", "water_filling", "proportional")


@dataclass(frozen=True)
class SliceTunerConfig:
    """Behavioural knobs of the orchestrator.

    Attributes
    ----------
    lam:
        Default loss/unfairness trade-off weight (the paper's default is 1).
    min_slice_size:
        The paper's ``L``: minimum slice size enforced before iterating.
    max_iterations:
        Safety cap for the iterative algorithms.
    evaluation_trials:
        How many independently-seeded models are trained and averaged by
        :meth:`SliceTuner.evaluate`.
    """

    lam: float = 1.0
    min_slice_size: int = 0
    max_iterations: int = 30
    evaluation_trials: int = 1

    def __post_init__(self) -> None:
        if self.lam < 0:
            raise ConfigurationError(f"lam must be >= 0, got {self.lam}")
        if self.min_slice_size < 0:
            raise ConfigurationError(
                f"min_slice_size must be >= 0, got {self.min_slice_size}"
            )
        if self.max_iterations <= 0:
            raise ConfigurationError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        if self.evaluation_trials <= 0:
            raise ConfigurationError(
                f"evaluation_trials must be positive, got {self.evaluation_trials}"
            )


class SliceTuner:
    """End-to-end selective data acquisition for one sliced dataset.

    Parameters
    ----------
    sliced:
        The slices and their current data.  The tuner mutates this object as
        data is acquired.
    source:
        Where new examples come from (simulator, pool, or crowdsourcing
        simulator).
    model_factory:
        Callable ``n_classes -> model``; defaults to softmax regression.
    trainer_config:
        Hyperparameters used for every model training.
    curve_config:
        Learning-curve estimation configuration.
    cost_model:
        Per-slice acquisition costs; defaults to the costs on the slices.
    config:
        Orchestrator configuration.
    random_state:
        Seed or generator controlling sampling, training, and evaluation.
    """

    def __init__(
        self,
        sliced: SlicedDataset,
        source: DataSource,
        model_factory: ModelFactory | None = None,
        trainer_config: TrainingConfig | None = None,
        curve_config: CurveEstimationConfig | None = None,
        cost_model: CostModel | None = None,
        config: SliceTunerConfig | None = None,
        random_state: RandomState = None,
    ) -> None:
        self.sliced = sliced
        self.source = source
        self.model_factory = model_factory or default_model_factory
        self.trainer_config = trainer_config or TrainingConfig()
        self.curve_config = curve_config or CurveEstimationConfig()
        self.cost_model = cost_model or TableCost(
            {name: sliced[name].cost for name in sliced.names}
        )
        self.config = config or SliceTunerConfig()
        self._rng = as_generator(random_state)
        self.estimator = LearningCurveEstimator(
            model_factory=self.model_factory,
            trainer_config=self.trainer_config,
            config=self.curve_config,
            random_state=self._rng,
        )

    # -- curves and plans ---------------------------------------------------------
    def estimate_curves(self) -> dict[str, FittedCurve]:
        """Fit the current learning curves of all slices."""
        return self.estimator.estimate(self.sliced)

    def plan(
        self,
        budget: float,
        lam: float | None = None,
        curves: Mapping[str, FittedCurve] | None = None,
    ) -> AcquisitionPlan:
        """Compute a One-shot acquisition plan without acquiring anything."""
        oneshot = OneShotAlgorithm(
            self.estimator, lam=self.config.lam if lam is None else lam
        )
        plan, _ = oneshot.plan(
            self.sliced, budget, curves=curves, cost_model=self.cost_model
        )
        return plan

    # -- evaluation -----------------------------------------------------------------
    def evaluate(self, n_trials: int | None = None) -> FairnessReport:
        """Train the model on the current data and measure loss/unfairness.

        ``n_trials`` independently-seeded models are trained and their
        reports averaged, mirroring the paper's mean-over-trials protocol.
        """
        n_trials = n_trials or self.config.evaluation_trials
        train = self.sliced.combined_train()
        reports: list[FairnessReport] = []
        for _ in range(n_trials):
            model = self.model_factory(self.sliced.n_classes)
            trainer = Trainer(config=self.trainer_config, random_state=self._rng)
            trainer.fit(model, train)
            reports.append(evaluate_fairness(model, self.sliced))
        return _average_reports(reports)

    # -- the main entry point ----------------------------------------------------------
    def run(
        self,
        budget: float,
        method: str = "moderate",
        lam: float | None = None,
        evaluate: bool = True,
    ) -> TuningResult:
        """Acquire data with the chosen method and (optionally) evaluate.

        Parameters
        ----------
        budget:
            Total data acquisition budget ``B``.
        method:
            One of ``"oneshot"``, ``"conservative"``, ``"moderate"``,
            ``"aggressive"`` (Slice Tuner methods) or ``"uniform"``,
            ``"water_filling"``, ``"proportional"`` (baselines).
        lam:
            Loss/unfairness weight; defaults to the configured value.
        evaluate:
            When True, the model is trained and evaluated before and after
            acquisition and the reports attached to the result.
        """
        method = method.strip().lower()
        lam = self.config.lam if lam is None else float(lam)
        initial_report = self.evaluate() if evaluate else None

        if method in BASELINE_METHODS:
            result = self._run_baseline(method, budget)
        elif method == "oneshot":
            result = self._run_oneshot(budget, lam)
        elif method in ("conservative", "moderate", "aggressive"):
            result = self._run_iterative(method, budget, lam)
        else:
            raise ConfigurationError(
                f"unknown method {method!r}; expected one of "
                f"{SLICE_TUNER_METHODS + BASELINE_METHODS}"
            )

        result.initial_report = initial_report
        if evaluate:
            result.final_report = self.evaluate()
        return result

    # -- method implementations ------------------------------------------------------------
    def _run_oneshot(self, budget: float, lam: float) -> TuningResult:
        oneshot = OneShotAlgorithm(self.estimator, lam=lam)
        plan, curves = oneshot.plan(self.sliced, budget, cost_model=self.cost_model)
        result = TuningResult(method="oneshot", lam=lam, budget=float(budget))
        record = self._acquire_plan(plan.counts, budget, iteration=1)
        record.curve_parameters = {
            name: (curve.b, curve.a) for name, curve in curves.items()
        }
        result.iterations.append(record)
        result.total_acquired = {
            name: record.acquired.get(name, 0) for name in self.sliced.names
        }
        result.spent = record.spent
        return result

    def _run_iterative(self, method: str, budget: float, lam: float) -> TuningResult:
        oneshot = OneShotAlgorithm(self.estimator, lam=lam)
        algorithm = IterativeAlgorithm(
            oneshot=oneshot,
            strategy=make_strategy(method),
            min_slice_size=self.config.min_slice_size,
            max_iterations=self.config.max_iterations,
        )
        return algorithm.run(
            self.sliced, budget, self.source, cost_model=self.cost_model
        )

    def _run_baseline(self, method: str, budget: float) -> TuningResult:
        sizes = self.sliced.sizes()
        costs = np.array(
            [self.cost_model.cost(name) for name in self.sliced.names]
        )
        if method == "uniform":
            allocation = uniform_allocation(sizes, budget, costs)
        elif method == "water_filling":
            allocation = water_filling_allocation(sizes, budget, costs)
        else:
            allocation = proportional_allocation(sizes, budget, costs)
        counts = {
            name: int(count) for name, count in zip(self.sliced.names, allocation)
        }
        result = TuningResult(method=method, lam=0.0, budget=float(budget))
        record = self._acquire_plan(counts, budget, iteration=1)
        result.iterations.append(record)
        result.total_acquired = {
            name: record.acquired.get(name, 0) for name in self.sliced.names
        }
        result.spent = record.spent
        return result

    # -- acquisition plumbing ----------------------------------------------------------------
    def _acquire_plan(
        self, counts: Mapping[str, int], budget: float, iteration: int
    ) -> IterationRecord:
        """Acquire a single batch described by ``counts`` within ``budget``."""
        ledger = BudgetLedger(total=float(budget))
        record = IterationRecord(iteration=iteration, requested=dict(counts))
        record.imbalance_before = self.sliced.imbalance_ratio()
        for name, count in counts.items():
            if count <= 0:
                continue
            unit_cost = self.cost_model.cost(name)
            affordable = min(int(count), ledger.affordable_count(unit_cost))
            if affordable <= 0:
                continue
            delivered = self.source.acquire(name, affordable)
            ledger.charge(name, affordable, unit_cost)
            self.cost_model.record_acquisition(name, affordable)
            self.sliced.add_examples(name, delivered)
            record.acquired[name] = len(delivered)
        record.spent = ledger.spent
        record.imbalance_after = self.sliced.imbalance_ratio()
        return record


def _average_reports(reports: list[FairnessReport]) -> FairnessReport:
    """Average several fairness reports field-by-field."""
    if len(reports) == 1:
        return reports[0]
    slice_names = reports[0].slice_losses.keys()
    slice_losses = {
        name: float(np.mean([r.slice_losses[name] for r in reports]))
        for name in slice_names
    }
    return FairnessReport(
        loss=float(np.mean([r.loss for r in reports])),
        slice_losses=slice_losses,
        avg_eer=float(np.mean([r.avg_eer for r in reports])),
        max_eer=float(np.mean([r.max_eer for r in reports])),
        slice_sizes=dict(reports[0].slice_sizes),
    )
