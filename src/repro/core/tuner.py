"""The :class:`SliceTuner` orchestrator (Figure 4 of the paper).

SliceTuner ties everything together: it owns the sliced dataset, the data
source, the learning-curve estimator, and the cost model, and exposes a small
API:

* :meth:`SliceTuner.estimate_curves` — fit the current learning curves.
* :meth:`SliceTuner.plan` — compute a One-shot acquisition plan without
  acquiring anything (the "concrete action items" the paper advertises).
* :meth:`SliceTuner.run` — execute a full acquisition strategy by registry
  name (One-shot, an Iterative variant, a baseline, the bandit, or any
  custom registration) and optionally evaluate before and after.
* :meth:`SliceTuner.session` — a :class:`~repro.core.session.TunerSession`
  for step-wise streaming runs with hooks, early stops, and checkpoints.
* :meth:`SliceTuner.evaluate` — train the model on the current data and
  report loss, per-slice losses, and unfairness.

``run`` is a thin facade over ``session().run(...)``; the propose-acquire-
refit loop itself lives in :mod:`repro.core.session` and the acquisition
policies in :mod:`repro.core.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.acquisition.cost import CostModel, TableCost
from repro.acquisition.providers import CompositeSource
from repro.acquisition.service import DEFAULT_PROVIDER
from repro.acquisition.source import DataSource
from repro.core.oneshot import OneShotAlgorithm
from repro.core.plan import AcquisitionPlan, TuningResult
from repro.core.registry import available_strategies
from repro.core.session import TunerSession
from repro.engine.cache import ResultCache
from repro.engine.executor import Executor, SerialExecutor
from repro.engine.factories import describe_factory
from repro.engine.job import TrainingJob
from repro.curves.estimator import (
    CurveEstimationConfig,
    LearningCurveEstimator,
    ModelFactory,
    default_model_factory,
)
from repro.curves.power_law import FittedCurve
from repro.fairness.report import FairnessReport, evaluate_fairness
from repro.ml.train import TrainingConfig
from repro.slices.sliced_dataset import SlicedDataset
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RandomState, as_generator, spawn_seeds

#: Legacy method groups, kept for backward compatibility; the authoritative
#: list is :func:`repro.core.registry.available_strategies`.
SLICE_TUNER_METHODS = ("oneshot", "conservative", "moderate", "aggressive")
BASELINE_METHODS = ("uniform", "water_filling", "proportional")


@dataclass(frozen=True)
class SliceTunerConfig:
    """Behavioural knobs of the orchestrator.

    Attributes
    ----------
    lam:
        Default loss/unfairness trade-off weight (the paper's default is 1).
    min_slice_size:
        The paper's ``L``: minimum slice size enforced before iterating.
    max_iterations:
        Safety cap for the iterative algorithms.
    evaluation_trials:
        How many independently-seeded models are trained and averaged by
        :meth:`SliceTuner.evaluate`.
    acquisition_rounds:
        Deadline (in routing rounds) given to every acquisition request the
        session emits.  One round walks each routed provider once; more
        rounds let throttled or partially-delivering providers be retried
        within the same batch.  The default of 1 reproduces the classic
        single-shot ``acquire`` semantics.
    incremental_curves:
        When True, the estimator keeps a per-slice
        :class:`~repro.engine.cache.CurveCache`: refits skip entirely when
        no slice pool changed, and the exhaustive protocol re-measures only
        the slices whose pools did change (the amortized protocol's
        trainings each cover every slice, so any change refreshes all
        curves at unchanged cost).  Off by default: it trades curve
        freshness for fewer trainings under the exhaustive protocol, which
        also changes the Table 8 training counts.
    discover:
        Name of a registered slice discovery method (see
        :mod:`repro.slices.discovery`).  When set, the session re-runs
        discovery every ``reslice_every`` iterations as acquired data
        shifts the error surface, re-partitioning the sliced dataset and
        re-initializing the strategy (*dynamic slices* mode).
    reslice_every:
        Re-discovery cadence in iterations; required (>= 1) when
        ``discover`` is set, and only meaningful with it.
    """

    lam: float = 1.0
    min_slice_size: int = 0
    max_iterations: int = 30
    evaluation_trials: int = 1
    acquisition_rounds: int = 1
    incremental_curves: bool = False
    discover: str | None = None
    reslice_every: int = 0

    def __post_init__(self) -> None:
        if self.discover is not None:
            from repro.slices.discovery import is_discovery_method

            if not is_discovery_method(self.discover):
                raise ConfigurationError(
                    f"unknown discovery method {self.discover!r}"
                )
            if self.reslice_every < 1:
                raise ConfigurationError(
                    "discover requires reslice_every >= 1, "
                    f"got {self.reslice_every}"
                )
        elif self.reslice_every != 0:
            raise ConfigurationError(
                "reslice_every requires a discover method to be set"
            )
        if self.lam < 0:
            raise ConfigurationError(f"lam must be >= 0, got {self.lam}")
        if self.min_slice_size < 0:
            raise ConfigurationError(
                f"min_slice_size must be >= 0, got {self.min_slice_size}"
            )
        if self.max_iterations <= 0:
            raise ConfigurationError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        if self.evaluation_trials <= 0:
            raise ConfigurationError(
                f"evaluation_trials must be positive, got {self.evaluation_trials}"
            )
        if self.acquisition_rounds < 1:
            raise ConfigurationError(
                f"acquisition_rounds must be >= 1, got {self.acquisition_rounds}"
            )


class SliceTuner:
    """End-to-end selective data acquisition for one sliced dataset.

    Parameters
    ----------
    sliced:
        The slices and their current data.  The tuner mutates this object as
        data is acquired.
    source:
        Which provider leads the acquisition routing: the name of an entry
        in ``sources``, or (deprecation shim for the pre-service API) a bare
        :class:`~repro.acquisition.source.DataSource` instance, registered
        as the single provider ``"default"``.  When ``sources`` holds
        several providers the selected one is tried first and the rest serve
        as failover, in table order; omitted, the table order itself is the
        priority order.
    sources:
        Named provider table for the run — a mapping of provider name to
        :class:`~repro.acquisition.source.DataSource` (insertion order =
        priority order), e.g. ``{"pool": pool, "generator": simulator}``.
        Every session acquisition is routed across this table through an
        :class:`~repro.acquisition.router.AcquisitionRouter`, so a dry pool
        fails over to the next provider instead of ending the run.
    model_factory:
        Callable ``n_classes -> model``; defaults to softmax regression.
    trainer_config:
        Hyperparameters used for every model training.
    curve_config:
        Learning-curve estimation configuration.
    cost_model:
        Per-slice acquisition costs; defaults to the costs on the slices.
    config:
        Orchestrator configuration.
    random_state:
        Seed or generator controlling sampling, training, and evaluation.
    executor:
        Execution backend for every model training the tuner performs
        (curve estimation and evaluation trials).  Defaults to a
        :class:`~repro.engine.executor.SerialExecutor`; pass a
        :class:`~repro.engine.executor.ProcessPoolExecutor` to parallelize.
        Per-job seeds are spawned up-front, so the backend never changes the
        numbers — parallelism is purely a deployment choice.
    result_cache:
        Optional content-addressed :class:`~repro.engine.cache.ResultCache`
        attached to the executor, so a training repeated on identical data
        with an identical seed is served from cache instead of re-run.
        When you pass your own ``executor``, the cache is attached to it —
        and therefore shared by everything using that executor (safe,
        because entries are keyed by content, but visible in its stats).
        Passing a *different* ``result_cache`` for an executor that already
        has one is a configuration error rather than a silent override.
    """

    def __init__(
        self,
        sliced: SlicedDataset,
        source: DataSource | str | None = None,
        model_factory: ModelFactory | None = None,
        trainer_config: TrainingConfig | None = None,
        curve_config: CurveEstimationConfig | None = None,
        cost_model: CostModel | None = None,
        config: SliceTunerConfig | None = None,
        random_state: RandomState = None,
        executor: Executor | None = None,
        result_cache: ResultCache | None = None,
        sources: Mapping[str, DataSource] | None = None,
    ) -> None:
        self.sliced = sliced
        self.sources, self.provider_order, self.source = _resolve_sources(
            source, sources
        )
        self.model_factory = model_factory or default_model_factory
        self.trainer_config = trainer_config or TrainingConfig()
        self.curve_config = curve_config or CurveEstimationConfig()
        self.cost_model = cost_model or TableCost(
            {name: sliced[name].cost for name in sliced.names}
        )
        self.config = config or SliceTunerConfig()
        if executor is None:
            executor = SerialExecutor(cache=result_cache)
        elif result_cache is not None:
            if executor.cache is None:
                executor.cache = result_cache
            elif executor.cache is not result_cache:
                raise ConfigurationError(
                    "the supplied executor already has a result cache "
                    "attached; pass result_cache only together with a "
                    "cache-less executor (or let the tuner build one)"
                )
        self.executor = executor
        self._rng = as_generator(random_state)
        # A fixed evaluation seed drawn once, so repeated evaluate() calls on
        # the same data agree regardless of how much of the main stream the
        # acquisition loop has consumed in between.
        self._eval_seed = int(self._rng.integers(0, 2**63 - 1))
        # A disk-backed result cache doubles as the curve store (duck-typed
        # on its curve tier), so incremental curves survive restarts too.
        curve_store = (
            self.executor.cache
            if self.config.incremental_curves
            and hasattr(self.executor.cache, "store_curve")
            else None
        )
        self.estimator = LearningCurveEstimator(
            model_factory=self.model_factory,
            trainer_config=self.trainer_config,
            config=self.curve_config,
            random_state=self._rng,
            executor=self.executor,
            incremental=self.config.incremental_curves,
            curve_store=curve_store,
        )

    # -- curves and plans ---------------------------------------------------------
    def estimate_curves(self) -> dict[str, FittedCurve]:
        """Fit the current learning curves of all slices."""
        return self.estimator.estimate(self.sliced)

    def plan(
        self,
        budget: float,
        lam: float | None = None,
        curves: Mapping[str, FittedCurve] | None = None,
    ) -> AcquisitionPlan:
        """Compute a One-shot acquisition plan without acquiring anything."""
        oneshot = OneShotAlgorithm(
            self.estimator, lam=self.config.lam if lam is None else lam
        )
        plan, _ = oneshot.plan(
            self.sliced, budget, curves=curves, cost_model=self.cost_model
        )
        return plan

    # -- evaluation -----------------------------------------------------------------
    def evaluate(self, n_trials: int | None = None) -> FairnessReport:
        """Train the model on the current data and measure loss/unfairness.

        ``n_trials`` independently-seeded models are trained and their
        reports averaged, mirroring the paper's mean-over-trials protocol.
        Trial seeds are spawned from a dedicated evaluation stream, so two
        ``evaluate()`` calls on the same data return identical reports no
        matter how much randomness the acquisition loop consumed in between.

        The trials are submitted to the tuner's executor as one job batch —
        they parallelize across workers, and with a result cache attached a
        re-evaluation on unchanged data trains nothing at all.
        """
        n_trials = n_trials or self.config.evaluation_trials
        train = self.sliced.combined_train()
        factory_name = describe_factory(self.model_factory)
        jobs = [
            TrainingJob(
                train=train,
                n_classes=self.sliced.n_classes,
                seed=seed,
                trainer_config=self.trainer_config,
                model_factory=self.model_factory,
                factory_name=factory_name,
                tag=("evaluate", trial),
            )
            for trial, seed in enumerate(spawn_seeds(self._eval_seed, n_trials))
        ]
        results = self.executor.submit(jobs)
        reports = [
            evaluate_fairness(result.model, self.sliced) for result in results
        ]
        return _average_reports(reports)

    # -- runtime state (campaign snapshots) ----------------------------------------
    def runtime_state(self) -> dict:
        """The tuner's mutable runtime state, as one picklable bundle.

        Everything a faithful mid-run restore needs *besides* the session
        checkpoint (:meth:`TunerSession.state_dict
        <repro.core.session.TunerSession.state_dict>`): the sliced dataset,
        the named provider table (each provider carries its own RNG and
        remaining reserves), the cost model, the main RNG stream position,
        and the fixed evaluation seed.  The returned dict *aliases* the live
        objects — serialize it immediately (e.g. ``pickle.dumps``) to get a
        point-in-time copy; the campaign subsystem does exactly that.
        """
        return {
            "sliced": self.sliced,
            "sources": self.sources,
            "provider_order": self.provider_order,
            "cost_model": self.cost_model,
            "rng_state": self._rng.bit_generator.state,
            "eval_seed": self._eval_seed,
        }

    def restore_runtime_state(self, state: Mapping) -> None:
        """Restore a bundle captured by :meth:`runtime_state`.

        Must be called on a tuner *constructed identically* to the one the
        bundle was captured from (same constructor arguments and seed):
        construction-time derivations — the estimator's content-derived root
        seed, configs, the model factory — are not part of the bundle, only
        the state that mutates as a run progresses.  The main RNG is
        restored *in place* so components sharing the generator object (the
        curve estimator) see the restored stream position.  After the
        restore, a continued run is byte-identical to one that was never
        interrupted.
        """
        self.sliced = state["sliced"]
        self.sources = dict(state["sources"])
        self.provider_order = tuple(state["provider_order"])
        if len(self.provider_order) == 1:
            self.source = self.sources[self.provider_order[0]]
        else:
            self.source = CompositeSource(
                [(name, self.sources[name]) for name in self.provider_order]
            )
        self.cost_model = state["cost_model"]
        self._rng.bit_generator.state = state["rng_state"]
        self._eval_seed = int(state["eval_seed"])

    # -- the main entry points ----------------------------------------------------------
    def session(self, **hooks) -> TunerSession:
        """Create a streaming :class:`~repro.core.session.TunerSession`.

        Keyword arguments (``on_iteration``, ``on_acquire``, ``on_evaluate``)
        are forwarded to the session constructor.
        """
        return TunerSession(self, **hooks)

    def run(
        self,
        budget: float,
        method: str = "moderate",
        lam: float | None = None,
        evaluate: bool = True,
    ) -> TuningResult:
        """Acquire data with the chosen strategy and (optionally) evaluate.

        This is a thin facade over :meth:`session`: it drains
        ``session().run(...)`` and returns the complete
        :class:`~repro.core.plan.TuningResult`.

        Parameters
        ----------
        budget:
            Total data acquisition budget ``B``.
        method:
            Any registered strategy name — the paper's ``"oneshot"``,
            ``"conservative"``, ``"moderate"``, ``"aggressive"``, the
            baselines ``"uniform"``, ``"water_filling"``,
            ``"proportional"``, the ``"bandit"`` comparator, or a custom
            registration (see :func:`repro.core.registry.register_strategy`).
        lam:
            Loss/unfairness weight; defaults to the configured value.
        evaluate:
            When True, the model is trained and evaluated before and after
            acquisition and the reports attached to the result.
        """
        return self.session().run(
            budget=budget, strategy=method, lam=lam, evaluate=evaluate
        )

    @staticmethod
    def available_methods() -> tuple[str, ...]:
        """Every strategy name :meth:`run` currently accepts."""
        return available_strategies()


def _resolve_sources(
    source: DataSource | str | None,
    sources: Mapping[str, DataSource] | None,
) -> tuple[dict[str, DataSource], tuple[str, ...], DataSource]:
    """Resolve the ``(source=, sources=)`` constructor surface.

    Returns ``(provider table, priority order, primary source view)``.  The
    primary view is the single :class:`DataSource` legacy readers (e.g.
    ``TunerState.source``) see: the provider itself for a one-entry table,
    or a :class:`~repro.acquisition.providers.CompositeSource` over the
    priority order when several providers are configured.
    """
    if sources:
        table = dict(sources)
        for name, provider in table.items():
            if not isinstance(provider, DataSource):
                raise ConfigurationError(
                    f"sources[{name!r}] does not implement DataSource "
                    f"(got {type(provider).__name__})"
                )
        if source is None:
            order = tuple(table)
        elif isinstance(source, str):
            if source not in table:
                raise ConfigurationError(
                    f"source {source!r} is not in the sources table; "
                    f"available: {sorted(table)}"
                )
            order = (source, *(name for name in table if name != source))
        else:
            raise ConfigurationError(
                "when sources= is given, select the lead provider by name "
                "(source=\"name\"), not by instance"
            )
        if len(order) == 1:
            return table, order, table[order[0]]
        view = CompositeSource([(name, table[name]) for name in order])
        return table, order, view
    if source is None:
        raise ConfigurationError(
            "SliceTuner needs a data source: pass sources={name: DataSource, ...} "
            "(optionally selecting a lead with source=\"name\") or a bare "
            "DataSource instance"
        )
    if isinstance(source, str):
        raise ConfigurationError(
            f"source {source!r} names a provider but no sources= table was given"
        )
    # Deprecation shim: the pre-service API passed a bare DataSource; it
    # becomes the single provider "default" in the routing table.
    return {DEFAULT_PROVIDER: source}, (DEFAULT_PROVIDER,), source


def _average_reports(reports: list[FairnessReport]) -> FairnessReport:
    """Average several fairness reports field-by-field."""
    if len(reports) == 1:
        return reports[0]
    slice_names = reports[0].slice_losses.keys()
    slice_losses = {
        name: float(np.mean([r.slice_losses[name] for r in reports]))
        for name in slice_names
    }
    return FairnessReport(
        loss=float(np.mean([r.loss for r in reports])),
        slice_losses=slice_losses,
        avg_eer=float(np.mean([r.avg_eer for r in reports])),
        max_eer=float(np.mean([r.max_eer for r in reports])),
        slice_sizes=dict(reports[0].slice_sizes),
    )
