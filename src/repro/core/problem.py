"""The selective data acquisition problem (Definition 2 of the paper).

A :class:`SelectiveAcquisitionProblem` bundles everything the optimizer
needs: slice names and current sizes, per-example acquisition costs, the
fitted power-law learning-curve parameters, the budget, and the
loss/unfairness trade-off weight ``lambda``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.curves.power_law import FittedCurve, PowerLawCurve
from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class SelectiveAcquisitionProblem:
    """An instance of the selective data acquisition optimization.

    Attributes
    ----------
    slice_names:
        Slice names, fixing the order of all arrays.
    sizes:
        Current number of training examples per slice (``|s_i|``).
    costs:
        Per-example acquisition cost per slice (``C(s_i)``).
    b / a:
        Power-law parameters of each slice's learning curve
        (``loss_i(x) = b_i * x^-a_i``).
    budget:
        Total data acquisition budget ``B``.
    lam:
        Weight of the unfairness penalty (the paper's ``lambda``; 0 optimizes
        loss only, larger values emphasize equalized error rates).
    """

    slice_names: tuple[str, ...]
    sizes: np.ndarray
    costs: np.ndarray
    b: np.ndarray
    a: np.ndarray
    budget: float
    lam: float = 1.0

    def __post_init__(self) -> None:
        names = tuple(self.slice_names)
        object.__setattr__(self, "slice_names", names)
        n = len(names)
        if n == 0:
            raise ConfigurationError("the problem needs at least one slice")

        def as_array(value: object, label: str) -> np.ndarray:
            array = np.asarray(value, dtype=np.float64).ravel()
            if array.shape[0] != n:
                raise ConfigurationError(
                    f"{label} has {array.shape[0]} entries but there are {n} slices"
                )
            return array

        sizes = as_array(self.sizes, "sizes")
        costs = as_array(self.costs, "costs")
        b = as_array(self.b, "b")
        a = as_array(self.a, "a")
        if np.any(sizes < 0):
            raise ConfigurationError("slice sizes must be non-negative")
        if np.any(costs <= 0):
            raise ConfigurationError("acquisition costs must be positive")
        if np.any(b <= 0) or np.any(a <= 0):
            raise ConfigurationError("power-law parameters b and a must be positive")
        object.__setattr__(self, "sizes", sizes)
        object.__setattr__(self, "costs", costs)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "a", a)
        check_non_negative(self.budget, "budget")
        check_non_negative(self.lam, "lam")

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_curves(
        cls,
        curves: Mapping[str, FittedCurve | PowerLawCurve],
        sizes: Mapping[str, int],
        costs: Mapping[str, float],
        budget: float,
        lam: float = 1.0,
        order: Sequence[str] | None = None,
    ) -> "SelectiveAcquisitionProblem":
        """Build a problem from per-slice curves, sizes, and costs."""
        names = tuple(order) if order is not None else tuple(curves.keys())
        missing = [n for n in names if n not in curves or n not in sizes]
        if missing:
            raise ConfigurationError(f"missing curves or sizes for slices {missing}")
        b = [
            curves[n].curve.b if isinstance(curves[n], FittedCurve) else curves[n].b
            for n in names
        ]
        a = [
            curves[n].curve.a if isinstance(curves[n], FittedCurve) else curves[n].a
            for n in names
        ]
        return cls(
            slice_names=names,
            sizes=np.array([sizes[n] for n in names], dtype=np.float64),
            costs=np.array([float(costs.get(n, 1.0)) for n in names], dtype=np.float64),
            b=np.array(b, dtype=np.float64),
            a=np.array(a, dtype=np.float64),
            budget=float(budget),
            lam=float(lam),
        )

    # -- derived quantities --------------------------------------------------------
    @property
    def n_slices(self) -> int:
        """Number of slices."""
        return len(self.slice_names)

    def predicted_losses(self, additional: np.ndarray | None = None) -> np.ndarray:
        """Predicted per-slice losses after acquiring ``additional`` examples."""
        additional = (
            np.zeros(self.n_slices)
            if additional is None
            else np.asarray(additional, dtype=np.float64)
        )
        effective = np.maximum(self.sizes + additional, 1.0)
        return self.b * np.power(effective, -self.a)

    def average_current_loss(self) -> float:
        """The constant ``A``: the average predicted loss over slices at the
        current sizes."""
        return float(self.predicted_losses().mean())

    def objective(self, additional: np.ndarray) -> float:
        """The paper's objective: total predicted loss + lambda * unfairness penalty."""
        losses = self.predicted_losses(additional)
        average = self.average_current_loss()
        penalty = np.maximum(0.0, losses / average - 1.0)
        return float(losses.sum() + self.lam * penalty.sum())

    def total_cost(self, additional: np.ndarray) -> float:
        """Cost of acquiring ``additional`` examples per slice."""
        return float(np.dot(self.costs, np.asarray(additional, dtype=np.float64)))
