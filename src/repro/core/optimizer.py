"""The selective data acquisition optimization (Section 5.1 of the paper).

Given per-slice power-law learning curves, the optimizer finds how many
examples to acquire per slice to minimize

    sum_i  b_i (|s_i| + d_i)^{-a_i}
  + lambda * sum_i  max(0, b_i (|s_i| + d_i)^{-a_i} / A - 1)

subject to ``sum_i C(s_i) * d_i = B`` and ``d_i >= 0``, where ``A`` is the
average predicted loss at the current sizes.  The problem is convex (a sum of
power-law terms, a hinge of a convex function, and a linear constraint).

Two solvers are provided:

* ``solve_slsqp`` — SciPy's SLSQP on the continuous relaxation (the "any
  off-the-shelf convex optimization solver" of the paper).
* ``solve_greedy`` — a marginal-gain-per-cost greedy allocator that is used
  as a fallback when SLSQP fails and as an ablation baseline; for separable
  convex objectives greedy chunk allocation approaches the optimum as the
  chunk size shrinks.

``optimize_allocation`` runs SLSQP, falls back to greedy if needed, and
finally rounds the continuous solution to integer example counts that respect
the budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.core.problem import SelectiveAcquisitionProblem
from repro.utils.exceptions import OptimizationError


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of the allocation optimization.

    Attributes
    ----------
    allocation:
        Integer number of examples to acquire per slice (ordered like the
        problem's ``slice_names``).
    continuous_allocation:
        The continuous solution before integer rounding.
    objective_value:
        Objective at the continuous solution.
    spent:
        Cost of the integer allocation.
    solver:
        Which solver produced the continuous solution (``"slsqp"`` or
        ``"greedy"``).
    """

    allocation: np.ndarray
    continuous_allocation: np.ndarray
    objective_value: float
    spent: float
    solver: str

    def as_dict(self, slice_names: tuple[str, ...]) -> dict[str, int]:
        """Return the integer allocation keyed by slice name."""
        return {
            name: int(count) for name, count in zip(slice_names, self.allocation)
        }


# ---------------------------------------------------------------------------
# continuous solvers
# ---------------------------------------------------------------------------

def _objective_and_gradient(
    problem: SelectiveAcquisitionProblem, average_loss: float
) -> tuple[callable, callable]:
    """Build objective and (sub)gradient callables for the continuous problem."""
    sizes, b, a, lam = problem.sizes, problem.b, problem.a, problem.lam

    def objective(d: np.ndarray) -> float:
        effective = np.maximum(sizes + d, 1.0)
        losses = b * np.power(effective, -a)
        penalty = np.maximum(0.0, losses / average_loss - 1.0)
        return float(losses.sum() + lam * penalty.sum())

    def gradient(d: np.ndarray) -> np.ndarray:
        effective = np.maximum(sizes + d, 1.0)
        losses = b * np.power(effective, -a)
        dloss = -a * b * np.power(effective, -a - 1.0)
        active = (losses / average_loss - 1.0) > 0.0
        return dloss * (1.0 + lam * active.astype(np.float64) / average_loss)

    return objective, gradient


def solve_slsqp(problem: SelectiveAcquisitionProblem) -> np.ndarray:
    """Solve the continuous relaxation with SciPy's SLSQP.

    Returns the continuous per-slice allocation; raises
    :class:`~repro.utils.exceptions.OptimizationError` when the solver does
    not converge to a feasible point.
    """
    n = problem.n_slices
    budget = problem.budget
    if budget <= 0:
        return np.zeros(n)
    average_loss = problem.average_current_loss()
    objective, gradient = _objective_and_gradient(problem, average_loss)

    costs = problem.costs
    # Start from the budget spread uniformly over slices (cost-weighted).
    start = np.full(n, budget / costs.sum())

    constraints = [
        {
            "type": "eq",
            "fun": lambda d: np.dot(costs, d) - budget,
            "jac": lambda d: costs,
        }
    ]
    bounds = [(0.0, budget / c) for c in costs]
    result = optimize.minimize(
        objective,
        start,
        jac=gradient,
        bounds=bounds,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": 300, "ftol": 1e-9},
    )
    if not result.success:
        raise OptimizationError(f"SLSQP failed: {result.message}")
    allocation = np.clip(result.x, 0.0, None)
    spent = float(np.dot(costs, allocation))
    if spent > 0:
        allocation *= budget / spent  # repair small constraint violations
    return allocation


def solve_greedy(
    problem: SelectiveAcquisitionProblem, n_chunks: int = 200
) -> np.ndarray:
    """Greedy chunk allocation by marginal objective improvement per cost.

    The budget is split into ``n_chunks`` equal chunks; each chunk goes to the
    slice whose predicted objective decrease per unit cost is largest given
    the allocation so far.  Used as a fallback solver and as an ablation
    baseline ("greedy" in the benchmarks).
    """
    n = problem.n_slices
    budget = problem.budget
    if budget <= 0:
        return np.zeros(n)
    average_loss = problem.average_current_loss()
    objective, _ = _objective_and_gradient(problem, average_loss)

    chunk = budget / n_chunks
    allocation = np.zeros(n)
    remaining = budget
    while remaining > 1e-9:
        spend = min(chunk, remaining)
        best_gain, best_index = -np.inf, -1
        current_value = objective(allocation)
        for i in range(n):
            extra = spend / problem.costs[i]
            trial = allocation.copy()
            trial[i] += extra
            gain = (current_value - objective(trial)) / spend
            if gain > best_gain:
                best_gain, best_index = gain, i
        allocation[best_index] += spend / problem.costs[best_index]
        remaining -= spend
    return allocation


# ---------------------------------------------------------------------------
# integer rounding
# ---------------------------------------------------------------------------

def round_allocation(
    problem: SelectiveAcquisitionProblem, continuous: np.ndarray
) -> np.ndarray:
    """Round a continuous allocation to integers without exceeding the budget.

    The allocation is floored, then the leftover budget is assigned one
    example at a time to the slice with the largest predicted objective
    improvement per cost, until no further example is affordable.
    """
    continuous = np.clip(np.asarray(continuous, dtype=np.float64), 0.0, None)
    allocation = np.floor(continuous).astype(np.int64)
    costs = problem.costs
    spent = float(np.dot(costs, allocation))
    if spent > problem.budget + 1e-9:
        # Defensive: remove examples from the cheapest-gain slices until
        # feasible.  This can only happen if the continuous solution itself
        # overspends slightly.
        order = np.argsort(problem.a * problem.b)  # least useful first
        for i in order:
            while allocation[i] > 0 and spent > problem.budget + 1e-9:
                allocation[i] -= 1
                spent -= costs[i]

    average_loss = problem.average_current_loss()
    objective, _ = _objective_and_gradient(problem, average_loss)
    remaining = problem.budget - spent
    # Assign leftover budget example-by-example by best marginal gain/cost.
    while True:
        affordable = np.nonzero(costs <= remaining + 1e-9)[0]
        if affordable.size == 0:
            break
        current_value = objective(allocation.astype(np.float64))
        gains = np.empty(affordable.size)
        for j, i in enumerate(affordable):
            trial = allocation.astype(np.float64)
            trial[i] += 1.0
            gains[j] = (current_value - objective(trial)) / costs[i]
        best = affordable[int(np.argmax(gains))]
        allocation[best] += 1
        remaining -= costs[best]
    return allocation


# ---------------------------------------------------------------------------
# public entry point
# ---------------------------------------------------------------------------

def optimize_allocation(problem: SelectiveAcquisitionProblem) -> OptimizationResult:
    """Solve the selective data acquisition problem.

    Runs SLSQP on the continuous relaxation, falls back to the greedy solver
    if SLSQP fails, and rounds the result to an integer allocation that
    respects the budget.
    """
    if problem.budget <= 0:
        zeros = np.zeros(problem.n_slices)
        return OptimizationResult(
            allocation=zeros.astype(np.int64),
            continuous_allocation=zeros,
            objective_value=problem.objective(zeros),
            spent=0.0,
            solver="none",
        )
    solver = "slsqp"
    try:
        continuous = solve_slsqp(problem)
    except OptimizationError:
        continuous = solve_greedy(problem)
        solver = "greedy"
    allocation = round_allocation(problem, continuous)
    return OptimizationResult(
        allocation=allocation,
        continuous_allocation=continuous,
        objective_value=problem.objective(continuous),
        spent=float(np.dot(problem.costs, allocation)),
        solver=solver,
    )
