"""Strategies for growing the imbalance-ratio change limit ``T`` (Section 5.2).

Algorithm 1 caps each iteration's change of the imbalance ratio at ``T`` and
enlarges ``T`` between iterations.  The paper proposes three schedules:

* **Conservative** — ``T`` stays constant (1 by default): most iterations,
  most reliable curves.
* **Moderate** — ``T`` grows by a constant each iteration.
* **Aggressive** — ``T`` is multiplied by a constant (> 1) each iteration:
  fewest iterations, data acquired most aggressively.
"""

from __future__ import annotations

from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_positive


class LimitStrategy:
    """Base class: a schedule for the imbalance-ratio change limit ``T``."""

    #: Name used in reports and for `make_strategy` lookups.
    name: str = "base"

    def __init__(self, initial_limit: float = 1.0) -> None:
        self.initial_limit = check_positive(initial_limit, "initial_limit")

    def initial(self) -> float:
        """The limit used in the first iteration."""
        return self.initial_limit

    def increase(self, current_limit: float) -> float:
        """Return the limit to use in the next iteration."""
        raise NotImplementedError


class ConservativeStrategy(LimitStrategy):
    """Keep ``T`` constant: the imbalance ratio may only change linearly."""

    name = "conservative"

    def increase(self, current_limit: float) -> float:
        return current_limit


class ModerateStrategy(LimitStrategy):
    """Increase ``T`` by a constant ``step`` per iteration (default 1)."""

    name = "moderate"

    def __init__(self, initial_limit: float = 1.0, step: float = 1.0) -> None:
        super().__init__(initial_limit)
        self.step = check_positive(step, "step")

    def increase(self, current_limit: float) -> float:
        return current_limit + self.step


class AggressiveStrategy(LimitStrategy):
    """Multiply ``T`` by a constant ``factor`` (> 1) per iteration (default 2)."""

    name = "aggressive"

    def __init__(self, initial_limit: float = 1.0, factor: float = 2.0) -> None:
        super().__init__(initial_limit)
        if factor <= 1.0:
            raise ConfigurationError(
                f"the aggressive factor must be > 1, got {factor}"
            )
        self.factor = float(factor)

    def increase(self, current_limit: float) -> float:
        return current_limit * self.factor


def make_strategy(name: str, initial_limit: float = 1.0) -> LimitStrategy:
    """Build a limit strategy by name (case-insensitive)."""
    key = name.strip().lower()
    if key == "conservative":
        return ConservativeStrategy(initial_limit)
    if key == "moderate":
        return ModerateStrategy(initial_limit)
    if key == "aggressive":
        return AggressiveStrategy(initial_limit)
    raise ConfigurationError(
        f"unknown strategy {name!r}; expected conservative, moderate, or aggressive"
    )
