"""Result records: acquisition plans, iteration records, and tuning results.

These dataclasses are the externally visible artefacts of running Slice
Tuner: what was acquired for whom, at what cost, over how many iterations,
and how loss/unfairness changed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.fairness.report import FairnessReport
from repro.utils.tables import format_table


@dataclass(frozen=True)
class AcquisitionPlan:
    """How many examples to acquire per slice in one batch.

    Attributes
    ----------
    counts:
        Examples to acquire per slice name.
    expected_cost:
        Cost of the plan under the costs used to compute it.
    solver:
        Which solver/strategy produced the plan (for reporting).
    limit:
        The imbalance-ratio change limit ``T`` in force when the plan was
        proposed (0 when the strategy has no such limit).
    curve_parameters:
        The fitted ``(b, a)`` per slice the plan was computed from (empty for
        curve-free strategies).
    imbalance_before / imbalance_after:
        The proposing strategy's imbalance-ratio prediction for this batch;
        ``None`` when the strategy makes no prediction (the session then
        measures the actual ratios).
    """

    counts: Mapping[str, int]
    expected_cost: float
    solver: str = ""
    limit: float = 0.0
    curve_parameters: Mapping[str, tuple[float, float]] = field(
        default_factory=dict
    )
    imbalance_before: float | None = None
    imbalance_after: float | None = None

    @property
    def total_examples(self) -> int:
        """Total number of examples across all slices."""
        return int(sum(self.counts.values()))

    def is_empty(self) -> bool:
        """True when the plan acquires nothing."""
        return self.total_examples == 0

    def to_text(self) -> str:
        """Render the plan as an aligned text table."""
        rows = [[name, count] for name, count in self.counts.items()]
        return format_table(
            headers=["slice", "examples to acquire"],
            rows=rows,
            title=f"total = {self.total_examples} examples, "
            f"cost = {self.expected_cost:.2f} ({self.solver})",
        )


@dataclass
class IterationRecord:
    """One iteration of the Iterative algorithm (or the single One-shot step).

    Attributes
    ----------
    iteration:
        1-based iteration index.
    requested / acquired:
        Examples requested per slice and actually delivered (crowdsourcing
        may deliver fewer after filtering mistakes and duplicates).
    spent:
        Budget spent this iteration.
    limit:
        The imbalance-ratio change limit ``T`` in force.
    imbalance_before / imbalance_after:
        Imbalance ratio before and after the acquisition.
    curve_parameters:
        The fitted ``(b, a)`` per slice used by the optimization, for
        inspection and for the Figure 9 style drift analyses.
    fulfillments:
        JSON-compatible :meth:`~repro.acquisition.requests.Fulfillment.summary`
        dicts of every fulfillment behind this record — per-provider
        provenance, shortfall, and routing rounds — populated when the
        record was produced through the
        :class:`~repro.acquisition.service.AcquisitionService`.
    """

    iteration: int
    requested: dict[str, int] = field(default_factory=dict)
    acquired: dict[str, int] = field(default_factory=dict)
    spent: float = 0.0
    limit: float = 0.0
    imbalance_before: float = 0.0
    imbalance_after: float = 0.0
    curve_parameters: dict[str, tuple[float, float]] = field(default_factory=dict)
    fulfillments: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation of this record."""
        return {
            "iteration": self.iteration,
            "requested": dict(self.requested),
            "acquired": dict(self.acquired),
            "spent": self.spent,
            "limit": self.limit,
            "imbalance_before": self.imbalance_before,
            "imbalance_after": self.imbalance_after,
            "curve_parameters": {
                name: list(params) for name, params in self.curve_parameters.items()
            },
            "fulfillments": [dict(entry) for entry in self.fulfillments],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IterationRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            iteration=int(data["iteration"]),
            requested={k: int(v) for k, v in data.get("requested", {}).items()},
            acquired={k: int(v) for k, v in data.get("acquired", {}).items()},
            spent=float(data.get("spent", 0.0)),
            limit=float(data.get("limit", 0.0)),
            imbalance_before=float(data.get("imbalance_before", 0.0)),
            imbalance_after=float(data.get("imbalance_after", 0.0)),
            curve_parameters={
                name: (float(params[0]), float(params[1]))
                for name, params in data.get("curve_parameters", {}).items()
            },
            fulfillments=[dict(entry) for entry in data.get("fulfillments", [])],
        )


@dataclass
class TuningResult:
    """Complete outcome of one Slice Tuner run.

    Attributes
    ----------
    method:
        ``"oneshot"``, ``"conservative"``, ``"moderate"``, ``"aggressive"``,
        or one of the baselines (``"uniform"``, ``"water_filling"``,
        ``"proportional"``).
    lam:
        The loss/unfairness trade-off weight used.
    budget:
        Total budget given.
    spent:
        Total budget actually spent.
    iterations:
        Per-iteration records (baselines and One-shot have a single record).
    total_acquired:
        Total examples acquired per slice over all iterations.
    initial_report / final_report:
        Fairness/accuracy evaluation before and after acquisition (populated
        when the caller asks for evaluation).
    """

    method: str
    lam: float
    budget: float
    spent: float = 0.0
    iterations: list[IterationRecord] = field(default_factory=list)
    total_acquired: dict[str, int] = field(default_factory=dict)
    initial_report: FairnessReport | None = None
    final_report: FairnessReport | None = None

    @property
    def n_iterations(self) -> int:
        """Number of acquisition iterations performed."""
        return len(self.iterations)

    def acquisitions_table(self) -> str:
        """Text table of total acquired examples per slice (Table 3 style)."""
        rows = [[name, count] for name, count in self.total_acquired.items()]
        return format_table(
            headers=["slice", "acquired"],
            rows=rows,
            title=(
                f"method={self.method} budget={self.budget:.0f} "
                f"spent={self.spent:.2f} iterations={self.n_iterations}"
            ),
        )

    # -- serialization (session checkpoints, CI artifacts) -------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation of the full result."""
        return {
            "method": self.method,
            "lam": self.lam,
            "budget": self.budget,
            "spent": self.spent,
            "iterations": [record.to_dict() for record in self.iterations],
            "total_acquired": dict(self.total_acquired),
            "initial_report": (
                None if self.initial_report is None else self.initial_report.to_dict()
            ),
            "final_report": (
                None if self.final_report is None else self.final_report.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TuningResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            method=str(data["method"]),
            lam=float(data["lam"]),
            budget=float(data["budget"]),
            spent=float(data.get("spent", 0.0)),
            iterations=[
                IterationRecord.from_dict(record)
                for record in data.get("iterations", [])
            ],
            total_acquired={
                k: int(v) for k, v in data.get("total_acquired", {}).items()
            },
            initial_report=(
                None
                if data.get("initial_report") is None
                else FairnessReport.from_dict(data["initial_report"])
            ),
            final_report=(
                None
                if data.get("final_report") is None
                else FairnessReport.from_dict(data["final_report"])
            ),
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialize the result to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "TuningResult":
        """Deserialize a result produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(payload))
