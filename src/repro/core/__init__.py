"""Slice Tuner core: selective data acquisition (Sections 3 and 5 of the paper).

The pieces, bottom-up:

* :mod:`~repro.core.problem` — the selective data acquisition problem
  (Definition 2): slices, sizes, costs, fitted learning curves, budget, and
  the loss/unfairness trade-off weight ``lambda``.
* :mod:`~repro.core.optimizer` — the convex optimization that decides how
  many examples to acquire per slice (Section 5.1), plus integer rounding.
* :mod:`~repro.core.baselines` — Uniform, Water filling, and Proportional
  allocation baselines (Section 2.2).
* :mod:`~repro.core.imbalance` — imbalance ratio and the ``GetChangeRatio``
  solver used by Algorithm 1.
* :mod:`~repro.core.strategies` — Conservative / Moderate / Aggressive
  schedules for the imbalance-ratio change limit ``T``.
* :mod:`~repro.core.oneshot` / :mod:`~repro.core.iterative` — the One-shot
  algorithm and Algorithm 1 (iterative updates).
* :mod:`~repro.core.strategy_api` / :mod:`~repro.core.registry` — the
  pluggable :class:`AcquisitionStrategy` protocol and the string-keyed
  registry every method resolves through.
* :mod:`~repro.core.session` — :class:`TunerSession`, the streaming
  propose-acquire-refit loop with hooks, early stops, and checkpoints.
* :mod:`~repro.core.tuner` — :class:`SliceTuner`, the end-to-end orchestrator
  of Figure 4: estimate curves, optimize, acquire, repeat, evaluate.
"""

from repro.core.baselines import (
    AllocationBaselineStrategy,
    proportional_allocation,
    uniform_allocation,
    water_filling_allocation,
)
from repro.core.imbalance import get_change_ratio, imbalance_ratio
from repro.core.iterative import IterativeAlgorithm, ScheduledIterativeStrategy
from repro.core.oneshot import OneShotAlgorithm, OneShotStrategy
from repro.core.optimizer import (
    OptimizationResult,
    optimize_allocation,
    round_allocation,
)
from repro.core.plan import AcquisitionPlan, IterationRecord, TuningResult
from repro.core.problem import SelectiveAcquisitionProblem
from repro.core.registry import (
    available_strategies,
    get_strategy,
    is_registered,
    register_strategy,
    strategy_descriptions,
)
from repro.core.session import (
    FulfillmentEvent,
    IterationEvent,
    SessionEvent,
    TunerSession,
)
from repro.core.strategies import (
    AggressiveStrategy,
    ConservativeStrategy,
    LimitStrategy,
    ModerateStrategy,
    make_strategy,
)
from repro.core.strategy_api import AcquisitionStrategy, TunerState
from repro.core.tuner import SliceTuner, SliceTunerConfig

__all__ = [
    "SelectiveAcquisitionProblem",
    "OptimizationResult",
    "optimize_allocation",
    "round_allocation",
    "uniform_allocation",
    "water_filling_allocation",
    "proportional_allocation",
    "imbalance_ratio",
    "get_change_ratio",
    "LimitStrategy",
    "ConservativeStrategy",
    "ModerateStrategy",
    "AggressiveStrategy",
    "make_strategy",
    "OneShotAlgorithm",
    "IterativeAlgorithm",
    "AcquisitionPlan",
    "IterationRecord",
    "TuningResult",
    "AcquisitionStrategy",
    "TunerState",
    "OneShotStrategy",
    "ScheduledIterativeStrategy",
    "AllocationBaselineStrategy",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "strategy_descriptions",
    "is_registered",
    "TunerSession",
    "FulfillmentEvent",
    "IterationEvent",
    "SessionEvent",
    "SliceTuner",
    "SliceTunerConfig",
]
