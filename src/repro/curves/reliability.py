"""Curve averaging and reliability scoring.

The paper improves reliability by drawing multiple learning curves and
averaging them (Section 4.1), and stresses that curves only need to be good
enough for a *relative* comparison of slices.  The helpers here implement the
averaging and a reliability score derived from how well the fitted curve
explains the measured points.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.curves.fitting import fit_power_law, weighted_log_rmse
from repro.curves.power_law import FittedCurve, PowerLawCurve
from repro.utils.exceptions import FittingError


def average_curves(curves: Sequence[PowerLawCurve]) -> PowerLawCurve:
    """Average several power-law curves fitted on repeated measurements.

    Averaging is performed in log-parameter space (geometric mean of ``b``,
    arithmetic mean of ``a``), which corresponds to averaging the curves'
    log-loss predictions at every size — the natural notion of "averaging the
    curves" the paper uses.
    """
    curves = list(curves)
    if not curves:
        raise FittingError("cannot average zero curves")
    a = float(np.mean([c.a for c in curves]))
    log_b = float(np.mean([np.log(c.b) for c in curves]))
    return PowerLawCurve(b=float(np.exp(log_b)), a=a)


def curve_reliability(
    curve: PowerLawCurve,
    sizes: np.ndarray,
    losses: np.ndarray,
    weights: np.ndarray | None = None,
) -> float:
    """Reliability score in [0, 1] for ``curve`` against its measured points.

    Defined as ``exp(-rmse)`` of the weighted log-space residuals: 1.0 means
    the points lie exactly on the curve, and the score decays smoothly as the
    measurements get noisier (e.g. the tiny slices of Figure 11).
    """
    rmse = weighted_log_rmse(curve, sizes, losses, weights)
    return float(np.exp(-rmse))


def fit_averaged_curve(
    slice_name: str,
    sizes: np.ndarray,
    losses: np.ndarray,
    weights: np.ndarray | None = None,
    n_splits: int = 1,
) -> FittedCurve:
    """Fit a curve, optionally as the average of fits on interleaved subsets.

    With ``n_splits > 1`` the points are split round-robin into that many
    groups, a curve is fitted per group, and the averaged curve is returned —
    the paper's "draw multiple curves (we use 5) and average them" at the
    fitting level.  Points groups that are too small to fit are skipped.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    losses = np.asarray(losses, dtype=np.float64)
    if weights is None:
        weights = sizes.copy()
    weights = np.asarray(weights, dtype=np.float64)

    curves: list[PowerLawCurve] = []
    if n_splits <= 1 or sizes.shape[0] < 2 * n_splits:
        curves.append(fit_power_law(sizes, losses, weights))
    else:
        for split in range(n_splits):
            idx = np.arange(split, sizes.shape[0], n_splits)
            try:
                curves.append(fit_power_law(sizes[idx], losses[idx], weights[idx]))
            except FittingError:
                continue
        if not curves:
            curves.append(fit_power_law(sizes, losses, weights))

    averaged = average_curves(curves)
    residual = weighted_log_rmse(averaged, sizes, losses, weights)
    return FittedCurve(
        slice_name=slice_name,
        curve=averaged,
        sizes=sizes,
        losses=losses,
        weights=weights,
        residual=residual,
        reliability=float(np.exp(-residual)),
    )
