"""The Learning Curve Estimator (Sections 4.1 and 4.2 of the paper).

For each slice the estimator measures the model's validation loss at several
training-set sizes and fits a power law to the measurements.  Two protocols
are implemented:

* **exhaustive** — for each slice and each subset size, train a model on
  (subset of that slice) + (all other slices in full) and evaluate on that
  slice's validation set.  This needs ``|S| * K`` trainings per repeat.
* **amortized** (the paper's "efficient implementation") — for each subset
  fraction, take that fraction of *every* slice, train a single model, and
  evaluate it on every slice's validation set, producing one data point per
  slice from one training.  This needs only ``K`` trainings per repeat and is
  the default.

Reliability is improved by repeating the whole procedure ``n_repeats`` times
with different random subsets and averaging the fitted curves, and by
weighting measurement points by their subset sizes during fitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.curves.power_law import FittedCurve
from repro.curves.reliability import average_curves, fit_averaged_curve
from repro.curves.fitting import fit_power_law, weighted_log_rmse
from repro.ml.data import Dataset
from repro.ml.linear import SoftmaxRegression
from repro.ml.metrics import log_loss
from repro.ml.train import Trainer, TrainingConfig
from repro.slices.sliced_dataset import SlicedDataset
from repro.utils.exceptions import ConfigurationError, FittingError
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

#: A model factory maps the number of classes to a fresh, untrained model.
ModelFactory = Callable[[int], object]


@dataclass(frozen=True)
class CurvePoint:
    """One measured learning-curve point for one slice."""

    slice_name: str
    size: int
    loss: float
    repeat: int


@dataclass(frozen=True)
class CurveEstimationConfig:
    """Configuration of the learning-curve estimation.

    Attributes
    ----------
    n_points:
        Number of subset sizes measured per repeat (the paper's ``K``,
        typically 10).
    min_fraction / max_fraction:
        Range of subset fractions of the current slice sizes to measure.
    n_repeats:
        How many times the measurement is repeated with fresh random subsets;
        the resulting curves are averaged (the paper uses 5).
    strategy:
        ``"amortized"`` (efficient, Section 4.2) or ``"exhaustive"``.
    """

    n_points: int = 8
    min_fraction: float = 0.2
    max_fraction: float = 1.0
    n_repeats: int = 2
    strategy: str = "amortized"

    def __post_init__(self) -> None:
        check_positive_int(self.n_points, "n_points")
        check_positive_int(self.n_repeats, "n_repeats")
        if not 0 < self.min_fraction <= self.max_fraction <= 1.0:
            raise ConfigurationError(
                "fractions must satisfy 0 < min_fraction <= max_fraction <= 1, "
                f"got ({self.min_fraction}, {self.max_fraction})"
            )
        if self.strategy not in ("amortized", "exhaustive"):
            raise ConfigurationError(
                f"strategy must be 'amortized' or 'exhaustive', got "
                f"{self.strategy!r}"
            )

    def fractions(self) -> np.ndarray:
        """The subset fractions measured per repeat."""
        if self.n_points == 1:
            return np.array([self.max_fraction])
        return np.linspace(self.min_fraction, self.max_fraction, self.n_points)


def default_model_factory(n_classes: int) -> SoftmaxRegression:
    """Default model: softmax regression (fast, adequate for the substrates)."""
    return SoftmaxRegression(n_classes=n_classes, random_state=0)


class LearningCurveEstimator:
    """Estimates one power-law learning curve per slice.

    Parameters
    ----------
    model_factory:
        Callable mapping ``n_classes`` to a fresh model; defaults to softmax
        regression.
    trainer_config:
        Hyperparameters for each model training (fixed once, as in the paper).
    config:
        The estimation protocol configuration.
    random_state:
        Seed or generator for subset sampling and training.
    """

    def __init__(
        self,
        model_factory: ModelFactory | None = None,
        trainer_config: TrainingConfig | None = None,
        config: CurveEstimationConfig | None = None,
        random_state: RandomState = None,
    ) -> None:
        self.model_factory = model_factory or default_model_factory
        self.trainer_config = trainer_config or TrainingConfig()
        self.config = config or CurveEstimationConfig()
        self._rng = as_generator(random_state)
        #: Number of model trainings performed so far (for the Table 8 bench).
        self.trainings_performed = 0

    # -- public API -----------------------------------------------------------
    def estimate(self, sliced: SlicedDataset) -> dict[str, FittedCurve]:
        """Estimate learning curves for every slice of ``sliced``."""
        points = self.collect_points(sliced)
        return self.fit_points(points, sliced.names)

    def collect_points(self, sliced: SlicedDataset) -> list[CurvePoint]:
        """Measure raw (size, loss) points for every slice."""
        if self.config.strategy == "amortized":
            return self._collect_amortized(sliced)
        return self._collect_exhaustive(sliced)

    def fit_points(
        self,
        points: Sequence[CurvePoint],
        slice_names: Sequence[str],
    ) -> dict[str, FittedCurve]:
        """Fit one averaged power-law curve per slice from measured points.

        Curves are fitted separately per repeat and averaged; slices whose
        points cannot support a fit (fewer than two distinct sizes) fall back
        to a single fit over all their points, and ultimately to a flat curve
        anchored at the mean measured loss so downstream optimization always
        has a curve to work with.
        """
        curves: dict[str, FittedCurve] = {}
        for name in slice_names:
            slice_points = [p for p in points if p.slice_name == name]
            if not slice_points:
                raise FittingError(f"no measured points for slice {name!r}")
            curves[name] = self._fit_slice(name, slice_points)
        return curves

    # -- point collection -----------------------------------------------------
    def _collect_amortized(self, sliced: SlicedDataset) -> list[CurvePoint]:
        """Efficient protocol: one model per subset fraction (Section 4.2)."""
        points: list[CurvePoint] = []
        validation = sliced.validation_by_slice()
        sizes = {name: sliced[name].size for name in sliced.names}
        for repeat in range(self.config.n_repeats):
            for fraction in self.config.fractions():
                train = sliced.subset_train(fraction=fraction, random_state=self._rng)
                if len(train) == 0:
                    continue
                model = self._train(train, sliced.n_classes)
                for name in sliced.names:
                    subset_size = int(round(sizes[name] * fraction))
                    if subset_size <= 0:
                        continue
                    loss = log_loss(model, validation[name])
                    if np.isfinite(loss):
                        points.append(
                            CurvePoint(
                                slice_name=name,
                                size=subset_size,
                                loss=float(loss),
                                repeat=repeat,
                            )
                        )
        return points

    def _collect_exhaustive(self, sliced: SlicedDataset) -> list[CurvePoint]:
        """Exhaustive protocol: one model per (slice, subset fraction)."""
        points: list[CurvePoint] = []
        validation = sliced.validation_by_slice()
        for repeat in range(self.config.n_repeats):
            for name in sliced.names:
                slice_size = sliced[name].size
                for fraction in self.config.fractions():
                    subset_size = int(round(slice_size * fraction))
                    if subset_size <= 0:
                        continue
                    sizes = {other: sliced[other].size for other in sliced.names}
                    sizes[name] = subset_size
                    train = sliced.subset_train(sizes=sizes, random_state=self._rng)
                    if len(train) == 0:
                        continue
                    model = self._train(train, sliced.n_classes)
                    loss = log_loss(model, validation[name])
                    if np.isfinite(loss):
                        points.append(
                            CurvePoint(
                                slice_name=name,
                                size=subset_size,
                                loss=float(loss),
                                repeat=repeat,
                            )
                        )
        return points

    def _train(self, train: Dataset, n_classes: int) -> object:
        """Train a fresh model on ``train`` and count the training."""
        model = self.model_factory(n_classes)
        trainer = Trainer(config=self.trainer_config, random_state=self._rng)
        trainer.fit(model, train)
        self.trainings_performed += 1
        return model

    # -- fitting ----------------------------------------------------------------
    def _fit_slice(self, name: str, slice_points: Sequence[CurvePoint]) -> FittedCurve:
        sizes = np.array([p.size for p in slice_points], dtype=np.float64)
        losses = np.array([p.loss for p in slice_points], dtype=np.float64)
        repeats = np.array([p.repeat for p in slice_points], dtype=np.int64)

        per_repeat_curves = []
        for repeat in np.unique(repeats):
            mask = repeats == repeat
            try:
                per_repeat_curves.append(
                    fit_power_law(sizes[mask], losses[mask], sizes[mask])
                )
            except FittingError:
                continue

        if per_repeat_curves:
            averaged = average_curves(per_repeat_curves)
            residual = weighted_log_rmse(averaged, sizes, losses, sizes)
            return FittedCurve(
                slice_name=name,
                curve=averaged,
                sizes=sizes,
                losses=losses,
                weights=sizes,
                residual=residual,
                reliability=float(np.exp(-residual)),
            )
        try:
            return fit_averaged_curve(name, sizes, losses, sizes)
        except FittingError:
            # Degenerate case (e.g. a single measured size): fall back to a
            # nearly flat curve anchored at the mean loss, so the optimizer
            # treats the slice as having little to gain — which is the
            # paper's "fall back to performing like baselines" behaviour.
            mean_loss = float(np.clip(losses.mean(), 1e-6, None))
            mean_size = float(np.clip(sizes.mean(), 1.0, None))
            flat_a = 1e-3
            flat_b = mean_loss * mean_size**flat_a
            from repro.curves.power_law import PowerLawCurve

            return FittedCurve(
                slice_name=name,
                curve=PowerLawCurve(b=flat_b, a=flat_a),
                sizes=sizes,
                losses=losses,
                weights=sizes,
                residual=0.0,
                reliability=0.0,
            )
