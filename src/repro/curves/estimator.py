"""The Learning Curve Estimator (Sections 4.1 and 4.2 of the paper).

For each slice the estimator measures the model's validation loss at several
training-set sizes and fits a power law to the measurements.  Two protocols
are implemented:

* **exhaustive** — for each slice and each subset size, train a model on
  (subset of that slice) + (all other slices in full) and evaluate on that
  slice's validation set.  This needs ``|S| * K`` trainings per repeat.
* **amortized** (the paper's "efficient implementation") — for each subset
  fraction, take that fraction of *every* slice, train a single model, and
  evaluate it on every slice's validation set, producing one data point per
  slice from one training.  This needs only ``K`` trainings per repeat and is
  the default.

Reliability is improved by repeating the whole procedure ``n_repeats`` times
with different random subsets and averaging the fitted curves, and by
weighting measurement points by their subset sizes during fitting.

Both protocols are *declarative*: they build a batch of
:class:`~repro.engine.job.TrainingJob` specs — subsets sampled and per-job
seeds spawned up-front from a content-derived RNG — and submit the whole
wave to an :class:`~repro.engine.executor.Executor`.  Consequences:

* serial and process-pool executors produce byte-identical curves,
* repeating an estimation on unchanged data rebuilds identical job
  fingerprints, so a warm :class:`~repro.engine.cache.ResultCache` serves
  every training from cache (zero new trainings), and
* with ``incremental=True`` the estimator keeps a
  :class:`~repro.engine.cache.CurveCache` and only re-measures slices whose
  training pools changed since the previous estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.curves.power_law import FittedCurve
from repro.curves.reliability import average_curves, fit_averaged_curve
from repro.curves.fitting import fit_power_law, weighted_log_rmse
from repro.engine.cache import CurveCache
from repro.engine.cache import pool_fingerprints as slice_pool_fingerprints
from repro.engine.executor import Executor, SerialExecutor
from repro.engine.factories import ModelFactory, describe_factory
from repro.engine.job import (
    JobResult,
    TrainingJob,
    _fingerprint_config,
    stable_seed,
)
from repro.ml.linear import SoftmaxRegression
from repro.ml.metrics import log_loss
from repro.ml.train import TrainingConfig
from repro.slices.sliced_dataset import SlicedDataset
from repro.utils.exceptions import ConfigurationError, FittingError
from repro.utils.rng import RandomState, as_generator, spawn_seeds
from repro.utils.validation import check_positive_int

_SEED_BOUND = 2**63 - 1


@dataclass(frozen=True)
class CurvePoint:
    """One measured learning-curve point for one slice."""

    slice_name: str
    size: int
    loss: float
    repeat: int


@dataclass(frozen=True)
class CurveEstimationConfig:
    """Configuration of the learning-curve estimation.

    Attributes
    ----------
    n_points:
        Number of subset sizes measured per repeat (the paper's ``K``,
        typically 10).
    min_fraction / max_fraction:
        Range of subset fractions of the current slice sizes to measure.
    n_repeats:
        How many times the measurement is repeated with fresh random subsets;
        the resulting curves are averaged (the paper uses 5).
    strategy:
        ``"amortized"`` (efficient, Section 4.2) or ``"exhaustive"``.
    """

    n_points: int = 8
    min_fraction: float = 0.2
    max_fraction: float = 1.0
    n_repeats: int = 2
    strategy: str = "amortized"

    def __post_init__(self) -> None:
        check_positive_int(self.n_points, "n_points")
        check_positive_int(self.n_repeats, "n_repeats")
        if not 0 < self.min_fraction <= self.max_fraction <= 1.0:
            raise ConfigurationError(
                "fractions must satisfy 0 < min_fraction <= max_fraction <= 1, "
                f"got ({self.min_fraction}, {self.max_fraction})"
            )
        if self.strategy not in ("amortized", "exhaustive"):
            raise ConfigurationError(
                f"strategy must be 'amortized' or 'exhaustive', got "
                f"{self.strategy!r}"
            )

    def fractions(self) -> np.ndarray:
        """The subset fractions measured per repeat."""
        if self.n_points == 1:
            return np.array([self.max_fraction])
        return np.linspace(self.min_fraction, self.max_fraction, self.n_points)


def default_model_factory(n_classes: int) -> SoftmaxRegression:
    """Default model: softmax regression (fast, adequate for the substrates)."""
    return SoftmaxRegression(n_classes=n_classes, random_state=0)


class LearningCurveEstimator:
    """Estimates one power-law learning curve per slice.

    Parameters
    ----------
    model_factory:
        Callable mapping ``n_classes`` to a fresh model; defaults to softmax
        regression.
    trainer_config:
        Hyperparameters for each model training (fixed once, as in the paper).
    config:
        The estimation protocol configuration.
    random_state:
        Seed or generator; one root seed is drawn up-front and every
        estimation derives its subsets and per-job seeds from (root seed,
        data content), so identical data always produces identical jobs.
    executor:
        Where the training jobs run; defaults to a fresh
        :class:`~repro.engine.executor.SerialExecutor`.  Attach a
        :class:`~repro.engine.cache.ResultCache` to the executor to skip
        repeated trainings entirely.
    incremental:
        When True, fitted curves are cached per slice and subsequent
        :meth:`estimate` calls only re-measure slices whose training pools
        changed (the :class:`~repro.engine.cache.CurveCache` is exposed as
        :attr:`curve_cache`).
    curve_store:
        Optional :class:`~repro.engine.diskcache.SqliteResultCache` whose
        curve tier should back the incremental cache.  Fitted curves are
        then keyed by (estimation context, pool content) and survive
        process restarts; ignored unless ``incremental`` is True.
    """

    def __init__(
        self,
        model_factory: ModelFactory | None = None,
        trainer_config: TrainingConfig | None = None,
        config: CurveEstimationConfig | None = None,
        random_state: RandomState = None,
        executor: Executor | None = None,
        incremental: bool = False,
        curve_store: object | None = None,
    ) -> None:
        self.model_factory = model_factory or default_model_factory
        self.trainer_config = trainer_config or TrainingConfig()
        self.config = config or CurveEstimationConfig()
        self._rng = as_generator(random_state)
        self._root_seed = int(self._rng.integers(0, _SEED_BOUND))
        self.executor = executor or SerialExecutor()
        self.curve_cache: CurveCache | None = None
        if incremental:
            if curve_store is not None:
                from repro.engine.diskcache import SqliteCurveCache

                self.curve_cache = SqliteCurveCache(
                    curve_store, context=self._curve_context()
                )
            else:
                self.curve_cache = CurveCache()
        #: Number of model trainings performed so far (for the Table 8 bench).
        #: Cache-served jobs do not count — the counter stays honest.
        self.trainings_performed = 0

    def _curve_context(self) -> str:
        """Everything a fitted curve depends on besides the pool content.

        Two estimators share persisted curves exactly when this context and
        the pool fingerprint both match: same root seed (job seeds derive
        from it), same model factory, same trainer configuration, and same
        estimation protocol.
        """
        protocol = (
            self.config.n_points,
            self.config.min_fraction,
            self.config.max_fraction,
            self.config.n_repeats,
            self.config.strategy,
        )
        return "\x1f".join(
            (
                str(self._root_seed),
                describe_factory(self.model_factory),
                _fingerprint_config(self.trainer_config),
                repr(protocol),
            )
        )

    # -- public API -----------------------------------------------------------
    def estimate(
        self, sliced: SlicedDataset, only: Iterable[str] | None = None
    ) -> dict[str, FittedCurve]:
        """Estimate learning curves for every slice of ``sliced``.

        ``only`` restricts measurement and fitting to the named slices (the
        returned mapping then covers just those).  In incremental mode the
        estimator works that set out itself — slices whose pools are
        unchanged since the last call are served from :attr:`curve_cache` —
        and always returns a curve for every slice.
        """
        if self.curve_cache is not None and only is None:
            return self._estimate_incremental(sliced)
        names = self._select_names(sliced, only)
        points = self.collect_points(sliced, only=names)
        return self.fit_points(points, names)

    def collect_points(
        self,
        sliced: SlicedDataset,
        only: Iterable[str] | None = None,
        pool_fingerprints: Mapping[str, str] | None = None,
    ) -> list[CurvePoint]:
        """Measure raw (size, loss) points for the (named) slices.

        Builds the full job batch first — per-job seeds pre-spawned from the
        content-derived RNG — submits it to the executor in one wave, then
        evaluates every returned model on the relevant validation sets.
        ``pool_fingerprints`` lets callers that already hashed the slice
        pools (the incremental path) avoid a second pass.
        """
        names = self._select_names(sliced, only)
        if self.config.strategy == "amortized":
            jobs = self._amortized_jobs(sliced, pool_fingerprints)
            results = self._execute(jobs)
            return self._amortized_points(sliced, names, results)
        jobs = self._exhaustive_jobs(sliced, names, pool_fingerprints)
        results = self._execute(jobs)
        return self._exhaustive_points(sliced, results)

    def fit_points(
        self,
        points: Sequence[CurvePoint],
        slice_names: Sequence[str],
    ) -> dict[str, FittedCurve]:
        """Fit one averaged power-law curve per slice from measured points.

        Curves are fitted separately per repeat and averaged; slices whose
        points cannot support a fit (fewer than two distinct sizes) fall back
        to a single fit over all their points, and ultimately to a flat curve
        anchored at the mean measured loss so downstream optimization always
        has a curve to work with.
        """
        by_slice: dict[str, list[CurvePoint]] = {name: [] for name in slice_names}
        for point in points:
            bucket = by_slice.get(point.slice_name)
            if bucket is not None:
                bucket.append(point)
        curves: dict[str, FittedCurve] = {}
        for name in slice_names:
            slice_points = by_slice[name]
            if not slice_points:
                raise FittingError(f"no measured points for slice {name!r}")
            curves[name] = self._fit_slice(name, slice_points)
        return curves

    # -- incremental re-estimation ---------------------------------------------
    def _estimate_incremental(self, sliced: SlicedDataset) -> dict[str, FittedCurve]:
        """Only re-measure and refit slices whose pools changed.

        The exhaustive protocol re-trains only for the stale slices (true
        training savings).  The amortized protocol's trainings each cover
        every slice at once, so any pool change re-runs the full wave anyway
        — there the cache's value is skipping estimation entirely when
        *nothing* changed, and when something did change every curve is
        refreshed (the per-slice loss evaluations are cheap next to the
        trainings, and fresh fits beat stale ones at no extra training
        cost).
        """
        cache = self.curve_cache
        assert cache is not None
        # One fingerprint pass per estimate, shared by staleness detection,
        # job construction, and the cache refresh.
        fingerprints = slice_pool_fingerprints(sliced)
        stale = cache.stale_slices(sliced, fingerprints=fingerprints)
        if stale and self.config.strategy == "amortized":
            stale = list(sliced.names)
        fresh_set = set(stale)
        cached = cache.cached_curves(
            [name for name in sliced.names if name not in fresh_set]
        )
        if stale:
            points = self.collect_points(
                sliced, only=stale, pool_fingerprints=fingerprints
            )
            fitted = self.fit_points(points, stale)
            cache.update(sliced, fitted, fingerprints=fingerprints)
        else:
            fitted = {}
        return {
            name: fitted[name] if name in fresh_set else cached[name]
            for name in sliced.names
        }

    # -- job construction -------------------------------------------------------
    def _select_names(
        self, sliced: SlicedDataset, only: Iterable[str] | None
    ) -> list[str]:
        if only is None:
            return list(sliced.names)
        requested = set(only)
        unknown = requested - set(sliced.names)
        if unknown:
            raise ConfigurationError(f"unknown slices requested: {sorted(unknown)}")
        return [name for name in sliced.names if name in requested]

    def _data_fingerprint(
        self,
        sliced: SlicedDataset,
        pool_fingerprints: Mapping[str, str] | None = None,
    ) -> str:
        """Content hash of every slice's current training pool."""
        if pool_fingerprints is None:
            pool_fingerprints = slice_pool_fingerprints(sliced)
        return "|".join(
            f"{name}:{pool_fingerprints[name]}" for name in sliced.names
        )

    def _job(
        self, train, sliced: SlicedDataset, seed: int, tag, factory_name: str
    ) -> TrainingJob:
        return TrainingJob(
            train=train,
            n_classes=sliced.n_classes,
            seed=seed,
            trainer_config=self.trainer_config,
            model_factory=self.model_factory,
            factory_name=factory_name,
            tag=tag,
        )

    def _amortized_jobs(
        self,
        sliced: SlicedDataset,
        pool_fingerprints: Mapping[str, str] | None = None,
    ) -> list[TrainingJob]:
        """Efficient protocol: one job per (repeat, subset fraction)."""
        fractions = self.config.fractions()
        rng = np.random.default_rng(
            stable_seed(
                self._root_seed,
                "amortized",
                self._data_fingerprint(sliced, pool_fingerprints),
            )
        )
        # Per-job seeds are spawned up-front, one per lattice cell, so the
        # seed of job (repeat, fraction) never depends on which other cells
        # produced non-empty subsets.
        seeds = spawn_seeds(rng, self.config.n_repeats * len(fractions))
        factory_name = describe_factory(self.model_factory)
        jobs: list[TrainingJob] = []
        cell = 0
        for repeat in range(self.config.n_repeats):
            for fraction in fractions:
                seed = seeds[cell]
                cell += 1
                train = sliced.subset_train(fraction=float(fraction), random_state=rng)
                if len(train) == 0:
                    continue
                jobs.append(
                    self._job(
                        train,
                        sliced,
                        seed,
                        tag=(repeat, float(fraction)),
                        factory_name=factory_name,
                    )
                )
        return jobs

    def _exhaustive_jobs(
        self,
        sliced: SlicedDataset,
        names: Sequence[str],
        pool_fingerprints: Mapping[str, str] | None = None,
    ) -> list[TrainingJob]:
        """Exhaustive protocol: one job per (repeat, slice, subset fraction).

        Each (repeat, slice) cell derives its own RNG from the full data
        fingerprint, so restricting ``names`` (incremental refits) builds
        byte-identical jobs for the slices it does cover — and therefore
        hits the result cache exactly when nothing those jobs depend on
        changed.
        """
        fractions = self.config.fractions()
        data_fingerprint = self._data_fingerprint(sliced, pool_fingerprints)
        full_sizes = {name: sliced[name].size for name in sliced.names}
        factory_name = describe_factory(self.model_factory)
        jobs: list[TrainingJob] = []
        for repeat in range(self.config.n_repeats):
            for name in names:
                cell_rng = np.random.default_rng(
                    stable_seed(
                        self._root_seed, "exhaustive", data_fingerprint, repeat, name
                    )
                )
                seeds = spawn_seeds(cell_rng, len(fractions))
                for index, fraction in enumerate(fractions):
                    subset_size = int(round(full_sizes[name] * float(fraction)))
                    if subset_size <= 0:
                        continue
                    sizes = dict(full_sizes)
                    sizes[name] = subset_size
                    train = sliced.subset_train(sizes=sizes, random_state=cell_rng)
                    if len(train) == 0:
                        continue
                    jobs.append(
                        self._job(
                            train,
                            sliced,
                            seeds[index],
                            tag=(repeat, name, subset_size),
                            factory_name=factory_name,
                        )
                    )
        return jobs

    def _execute(self, jobs: list[TrainingJob]) -> list[JobResult]:
        results = self.executor.submit(jobs)
        self.trainings_performed += sum(
            1 for result in results if not result.from_cache
        )
        return results

    # -- point evaluation --------------------------------------------------------
    def _amortized_points(
        self,
        sliced: SlicedDataset,
        names: Sequence[str],
        results: Sequence[JobResult],
    ) -> list[CurvePoint]:
        validation = sliced.validation_by_slice()
        sizes = {name: sliced[name].size for name in sliced.names}
        points: list[CurvePoint] = []
        for result in results:
            repeat, fraction = result.tag
            for name in names:
                subset_size = int(round(sizes[name] * fraction))
                if subset_size <= 0:
                    continue
                loss = log_loss(result.model, validation[name])
                if np.isfinite(loss):
                    points.append(
                        CurvePoint(
                            slice_name=name,
                            size=subset_size,
                            loss=float(loss),
                            repeat=repeat,
                        )
                    )
        return points

    def _exhaustive_points(
        self, sliced: SlicedDataset, results: Sequence[JobResult]
    ) -> list[CurvePoint]:
        validation = sliced.validation_by_slice()
        points: list[CurvePoint] = []
        for result in results:
            repeat, name, subset_size = result.tag
            loss = log_loss(result.model, validation[name])
            if np.isfinite(loss):
                points.append(
                    CurvePoint(
                        slice_name=name,
                        size=subset_size,
                        loss=float(loss),
                        repeat=repeat,
                    )
                )
        return points

    # -- fitting ----------------------------------------------------------------
    def _fit_slice(self, name: str, slice_points: Sequence[CurvePoint]) -> FittedCurve:
        sizes = np.array([p.size for p in slice_points], dtype=np.float64)
        losses = np.array([p.loss for p in slice_points], dtype=np.float64)
        repeats = np.array([p.repeat for p in slice_points], dtype=np.int64)

        per_repeat_curves = []
        for repeat in np.unique(repeats):
            mask = repeats == repeat
            try:
                per_repeat_curves.append(
                    fit_power_law(sizes[mask], losses[mask], sizes[mask])
                )
            except FittingError:
                continue

        if per_repeat_curves:
            averaged = average_curves(per_repeat_curves)
            residual = weighted_log_rmse(averaged, sizes, losses, sizes)
            return FittedCurve(
                slice_name=name,
                curve=averaged,
                sizes=sizes,
                losses=losses,
                weights=sizes,
                residual=residual,
                reliability=float(np.exp(-residual)),
            )
        try:
            return fit_averaged_curve(name, sizes, losses, sizes)
        except FittingError:
            # Degenerate case (e.g. a single measured size): fall back to a
            # nearly flat curve anchored at the mean loss, so the optimizer
            # treats the slice as having little to gain — which is the
            # paper's "fall back to performing like baselines" behaviour.
            mean_loss = float(np.clip(losses.mean(), 1e-6, None))
            mean_size = float(np.clip(sizes.mean(), 1.0, None))
            flat_a = 1e-3
            flat_b = mean_loss * mean_size**flat_a
            from repro.curves.power_law import PowerLawCurve

            return FittedCurve(
                slice_name=name,
                curve=PowerLawCurve(b=flat_b, a=flat_a),
                sizes=sizes,
                losses=losses,
                weights=sizes,
                residual=0.0,
                reliability=0.0,
            )
