"""Learning-curve estimation (Section 4 of the paper).

A learning curve projects how the model's loss on one slice changes as that
slice's training data grows.  Following the paper (and Hestness et al.), the
curve is modelled as a power law ``loss = b * size^-a`` fitted with weighted
non-linear least squares on losses measured by training models on random
subsets of the data.

* :class:`~repro.curves.power_law.PowerLawCurve` /
  :class:`~repro.curves.power_law.PowerLawWithFloor` — the curve models.
* :mod:`~repro.curves.parametric` — alternative parametric families used for
  the Domhan-style comparison ablation.
* :func:`~repro.curves.fitting.fit_power_law` — weighted fitting.
* :class:`~repro.curves.estimator.LearningCurveEstimator` — produces one
  fitted curve per slice using either the exhaustive protocol or the
  amortized ("efficient") protocol of Section 4.2.
* :mod:`~repro.curves.reliability` — curve averaging and reliability scores.
"""

from repro.curves.estimator import (
    CurveEstimationConfig,
    CurvePoint,
    LearningCurveEstimator,
)
from repro.curves.fitting import fit_power_law, fit_power_law_with_floor
from repro.curves.parametric import (
    CURVE_FAMILIES,
    CurveFamily,
    fit_family,
    select_best_family,
)
from repro.curves.power_law import FittedCurve, PowerLawCurve, PowerLawWithFloor
from repro.curves.reliability import average_curves, curve_reliability

__all__ = [
    "PowerLawCurve",
    "PowerLawWithFloor",
    "FittedCurve",
    "fit_power_law",
    "fit_power_law_with_floor",
    "CurveFamily",
    "CURVE_FAMILIES",
    "fit_family",
    "select_best_family",
    "CurvePoint",
    "CurveEstimationConfig",
    "LearningCurveEstimator",
    "average_curves",
    "curve_reliability",
]
