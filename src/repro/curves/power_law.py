"""Power-law learning-curve models.

The paper models a slice's loss as ``y = b * x^-a`` (power-law region) or
``y = b * x^-a + c`` when enough data exists to observe the
diminishing-returns floor.  Both forms are implemented; the plain power law
is the default because, as the paper notes, it fits better when the floor has
not been observed yet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class PowerLawCurve:
    """The curve ``loss(x) = b * x^-a`` with ``a, b > 0``.

    ``a`` is the learning-rate exponent (steepness) and ``b`` the scale; a
    larger ``b`` means a higher starting loss, a larger ``a`` means data
    acquisition pays off faster.
    """

    b: float
    a: float

    def __post_init__(self) -> None:
        check_positive(self.b, "b")
        check_positive(self.a, "a")

    def predict(self, size: float | np.ndarray) -> float | np.ndarray:
        """Predicted loss at training size ``size`` (size must be positive)."""
        size = np.asarray(size, dtype=np.float64)
        if np.any(size <= 0):
            raise ConfigurationError("size must be positive to evaluate the curve")
        result = self.b * np.power(size, -self.a)
        return float(result) if result.ndim == 0 else result

    def marginal_gain(self, size: float, extra: float = 1.0) -> float:
        """Loss reduction from growing the slice from ``size`` by ``extra`` examples."""
        return float(self.predict(size) - self.predict(size + extra))

    def size_for_loss(self, target_loss: float) -> float:
        """Training size at which the curve reaches ``target_loss``."""
        check_positive(target_loss, "target_loss")
        return float((self.b / target_loss) ** (1.0 / self.a))

    def describe(self) -> str:
        """Human-readable formula, e.g. ``y = 2.894x^-0.204`` (Figure 8 style)."""
        return f"y = {self.b:.3f}x^-{self.a:.3f}"


@dataclass(frozen=True)
class PowerLawWithFloor:
    """The curve ``loss(x) = b * x^-a + c`` with an irreducible floor ``c >= 0``."""

    b: float
    a: float
    c: float

    def __post_init__(self) -> None:
        check_positive(self.b, "b")
        check_positive(self.a, "a")
        check_non_negative(self.c, "c")

    def predict(self, size: float | np.ndarray) -> float | np.ndarray:
        """Predicted loss at training size ``size``."""
        size = np.asarray(size, dtype=np.float64)
        if np.any(size <= 0):
            raise ConfigurationError("size must be positive to evaluate the curve")
        result = self.b * np.power(size, -self.a) + self.c
        return float(result) if result.ndim == 0 else result

    def without_floor(self) -> PowerLawCurve:
        """Drop the floor term (useful for the convex optimizer)."""
        return PowerLawCurve(b=self.b, a=self.a)

    def describe(self) -> str:
        """Human-readable formula."""
        return f"y = {self.b:.3f}x^-{self.a:.3f} + {self.c:.3f}"


@dataclass
class FittedCurve:
    """A fitted per-slice learning curve together with its evidence.

    Attributes
    ----------
    slice_name:
        The slice the curve belongs to.
    curve:
        The fitted :class:`PowerLawCurve`.
    sizes / losses / weights:
        The measured data points the fit was computed from.
    residual:
        Weighted root-mean-square error of the fit in log space.
    reliability:
        A score in [0, 1]; 1 means the points lie exactly on the curve.  The
        paper stresses that curves only need to be reliable *enough* for a
        relative comparison, and this score quantifies that.
    """

    slice_name: str
    curve: PowerLawCurve
    sizes: np.ndarray = field(default_factory=lambda: np.empty(0))
    losses: np.ndarray = field(default_factory=lambda: np.empty(0))
    weights: np.ndarray = field(default_factory=lambda: np.empty(0))
    residual: float = 0.0
    reliability: float = 1.0

    @property
    def b(self) -> float:
        """Scale parameter of the fitted power law."""
        return self.curve.b

    @property
    def a(self) -> float:
        """Exponent of the fitted power law."""
        return self.curve.a

    def predict(self, size: float | np.ndarray) -> float | np.ndarray:
        """Predicted loss at ``size`` (delegates to the underlying curve)."""
        return self.curve.predict(size)

    def describe(self) -> str:
        """Formula plus the slice name, e.g. for figure legends."""
        return f"{self.slice_name}: {self.curve.describe()}"
