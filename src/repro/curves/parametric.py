"""Alternative parametric learning-curve families.

Domhan et al. (reference [15] of the paper) compare 11 parametric models for
learning-curve extrapolation; the paper concludes that "a power-law curve
fits as well as any other curve".  This module provides a small family zoo so
that conclusion can be checked as an ablation
(``benchmarks/test_ablation_curve_families.py``): each family exposes the same
fit/predict interface and families are compared by weighted log-space RMSE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import optimize

from repro.curves.fitting import _validate_points, fit_power_law
from repro.utils.exceptions import FittingError


@dataclass(frozen=True)
class FittedFamilyCurve:
    """A fitted curve from one parametric family."""

    family: str
    params: tuple[float, ...]
    predict_fn: Callable[[np.ndarray], np.ndarray]
    rmse: float

    def predict(self, size: float | np.ndarray) -> float | np.ndarray:
        """Predicted loss at ``size``."""
        size = np.asarray(size, dtype=np.float64)
        result = self.predict_fn(size)
        return float(result) if np.ndim(result) == 0 else np.asarray(result)


@dataclass(frozen=True)
class CurveFamily:
    """A parametric learning-curve family.

    Attributes
    ----------
    name:
        Family name (``"power_law"``, ``"power_law_floor"``, ``"exponential"``,
        ``"logarithmic"``, ``"inverse_linear"``).
    function:
        ``f(x, *params) -> y``.
    initial_guess:
        Callable producing a starting point from the data.
    bounds:
        (lower, upper) parameter bounds for the non-linear fit.
    """

    name: str
    function: Callable[..., np.ndarray]
    initial_guess: Callable[[np.ndarray, np.ndarray], Sequence[float]]
    bounds: tuple[Sequence[float], Sequence[float]]


def _power_law(x: np.ndarray, b: float, a: float) -> np.ndarray:
    return b * np.power(x, -a)


def _power_law_floor(x: np.ndarray, b: float, a: float, c: float) -> np.ndarray:
    return b * np.power(x, -a) + c


def _exponential(x: np.ndarray, b: float, k: float, c: float) -> np.ndarray:
    return b * np.exp(-k * x) + c


def _logarithmic(x: np.ndarray, b: float, a: float) -> np.ndarray:
    return np.maximum(b - a * np.log(x), 1e-12)


def _inverse_linear(x: np.ndarray, b: float, c: float) -> np.ndarray:
    return b / x + c


CURVE_FAMILIES: dict[str, CurveFamily] = {
    "power_law": CurveFamily(
        name="power_law",
        function=_power_law,
        initial_guess=lambda x, y: (float(y.max()) * float(x.min()) ** 0.3, 0.3),
        bounds=([1e-12, 1e-3], [np.inf, 5.0]),
    ),
    "power_law_floor": CurveFamily(
        name="power_law_floor",
        function=_power_law_floor,
        initial_guess=lambda x, y: (
            float(y.max()) * float(x.min()) ** 0.3,
            0.3,
            float(y.min()) * 0.5,
        ),
        bounds=([1e-12, 1e-3, 0.0], [np.inf, 5.0, np.inf]),
    ),
    "exponential": CurveFamily(
        name="exponential",
        function=_exponential,
        initial_guess=lambda x, y: (
            float(y.max() - y.min()) + 1e-6,
            1.0 / max(float(x.max()), 1.0),
            float(y.min()),
        ),
        bounds=([1e-12, 1e-9, 0.0], [np.inf, np.inf, np.inf]),
    ),
    "logarithmic": CurveFamily(
        name="logarithmic",
        function=_logarithmic,
        initial_guess=lambda x, y: (float(y.max()), 0.1),
        bounds=([1e-12, 0.0], [np.inf, np.inf]),
    ),
    "inverse_linear": CurveFamily(
        name="inverse_linear",
        function=_inverse_linear,
        initial_guess=lambda x, y: (float(y.max()) * float(x.min()), float(y.min())),
        bounds=([1e-12, 0.0], [np.inf, np.inf]),
    ),
}


def fit_family(
    family: str | CurveFamily,
    sizes: np.ndarray,
    losses: np.ndarray,
    weights: np.ndarray | None = None,
) -> FittedFamilyCurve:
    """Fit one parametric family to the measured points.

    Falls back to the robust log-space power-law fit when the requested
    family's non-linear optimization fails.
    """
    if isinstance(family, str):
        try:
            family = CURVE_FAMILIES[family]
        except KeyError:
            raise FittingError(
                f"unknown curve family {family!r}; available: "
                f"{sorted(CURVE_FAMILIES)}"
            ) from None
    sizes, losses, weights = _validate_points(sizes, losses, weights)
    sigma = 1.0 / np.sqrt(weights)
    try:
        params, _ = optimize.curve_fit(
            family.function,
            sizes,
            losses,
            p0=list(family.initial_guess(sizes, losses)),
            sigma=sigma,
            bounds=family.bounds,
            maxfev=10000,
        )
        params = tuple(float(p) for p in params)
        predict_fn = lambda x, p=params, f=family.function: f(  # noqa: E731
            np.asarray(x, dtype=np.float64), *p
        )
    except (RuntimeError, ValueError):
        fallback = fit_power_law(sizes, losses, weights)
        params = (fallback.b, fallback.a)
        predict_fn = fallback.predict

    predicted = np.maximum(np.asarray(predict_fn(sizes), dtype=np.float64), 1e-12)
    w = weights / weights.sum()
    rmse = float(np.sqrt(np.sum(w * (np.log(losses) - np.log(predicted)) ** 2)))
    return FittedFamilyCurve(
        family=family.name, params=params, predict_fn=predict_fn, rmse=rmse
    )


def select_best_family(
    sizes: np.ndarray,
    losses: np.ndarray,
    weights: np.ndarray | None = None,
    families: Sequence[str] | None = None,
) -> FittedFamilyCurve:
    """Fit every requested family and return the one with the lowest RMSE."""
    names = list(families) if families is not None else sorted(CURVE_FAMILIES)
    fits = [fit_family(name, sizes, losses, weights) for name in names]
    return min(fits, key=lambda fit: fit.rmse)
