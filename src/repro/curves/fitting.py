"""Weighted fitting of learning curves.

The paper fits ``y = b x^-a`` with a non-linear least squares method, giving
subsets weights proportional to their sizes because losses measured on small
subsets are noisier.  The implementation here fits in log-log space (where
the power law is linear) with those weights, then optionally refines with
SciPy's non-linear least squares; the log-space fit alone is already the
maximum-likelihood answer under multiplicative noise and is extremely robust,
which matters because the estimator calls it thousands of times.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.curves.power_law import PowerLawCurve, PowerLawWithFloor
from repro.utils.exceptions import FittingError

#: Exponent bounds: learning curves in the paper's experiments lie between
#: 0.06 (AdultCensus) and 0.93 (MNIST digits); the bounds are generous.
MIN_EXPONENT = 1e-3
MAX_EXPONENT = 5.0


def _validate_points(
    sizes: np.ndarray, losses: np.ndarray, weights: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    sizes = np.asarray(sizes, dtype=np.float64).ravel()
    losses = np.asarray(losses, dtype=np.float64).ravel()
    if sizes.shape[0] != losses.shape[0]:
        raise FittingError("sizes and losses must have the same length")
    if weights is None:
        weights = sizes.copy()
    else:
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.shape[0] != sizes.shape[0]:
            raise FittingError("weights must match sizes in length")

    valid = (sizes > 0) & (losses > 0) & np.isfinite(losses) & (weights > 0)
    sizes, losses, weights = sizes[valid], losses[valid], weights[valid]
    if np.unique(sizes).shape[0] < 2:
        raise FittingError(
            "at least two distinct positive sizes with positive losses are "
            "required to fit a learning curve"
        )
    return sizes, losses, weights


def fit_power_law(
    sizes: np.ndarray,
    losses: np.ndarray,
    weights: np.ndarray | None = None,
) -> PowerLawCurve:
    """Fit ``loss = b * size^-a`` to the measured points.

    Parameters
    ----------
    sizes:
        Training-set sizes of the measured points.
    losses:
        Validation losses measured at those sizes.
    weights:
        Per-point weights; defaults to the sizes themselves (the paper's
        choice), so small noisy subsets influence the fit less.

    Returns
    -------
    The fitted :class:`PowerLawCurve`.  The exponent is clipped to a small
    positive value if the measured losses do not decrease with size (which
    can happen for noisy small slices); the curve is then nearly flat, and
    Slice Tuner degrades gracefully towards the baselines, as the paper
    describes.
    """
    sizes, losses, weights = _validate_points(sizes, losses, weights)

    # Weighted linear regression of log(loss) on log(size).
    log_x = np.log(sizes)
    log_y = np.log(losses)
    w = weights / weights.sum()
    x_mean = float(np.sum(w * log_x))
    y_mean = float(np.sum(w * log_y))
    x_var = float(np.sum(w * (log_x - x_mean) ** 2))
    if x_var <= 0:
        raise FittingError("cannot fit a curve when all sizes are identical")
    covariance = float(np.sum(w * (log_x - x_mean) * (log_y - y_mean)))
    slope = covariance / x_var
    intercept = y_mean - slope * x_mean

    a = float(np.clip(-slope, MIN_EXPONENT, MAX_EXPONENT))
    # Keep the curve through the weighted centroid even when the exponent was
    # clipped: log b = y_mean + a * x_mean.
    b = float(np.exp(intercept + (slope + a) * x_mean))
    b = max(b, 1e-12)
    return PowerLawCurve(b=b, a=a)


def fit_power_law_with_floor(
    sizes: np.ndarray,
    losses: np.ndarray,
    weights: np.ndarray | None = None,
) -> PowerLawWithFloor:
    """Fit ``loss = b * size^-a + c`` with SciPy's non-linear least squares.

    The plain power-law fit seeds the optimization (with ``c = 0``); if the
    non-linear refinement fails to converge, the seed is returned with a zero
    floor so callers always get a usable curve.
    """
    sizes, losses, weights = _validate_points(sizes, losses, weights)
    seed = fit_power_law(sizes, losses, weights)

    def model(x: np.ndarray, b: float, a: float, c: float) -> np.ndarray:
        return b * np.power(x, -a) + c

    sigma = 1.0 / np.sqrt(weights)
    try:
        params, _ = optimize.curve_fit(
            model,
            sizes,
            losses,
            p0=[seed.b, seed.a, 0.0],
            sigma=sigma,
            bounds=([1e-12, MIN_EXPONENT, 0.0], [np.inf, MAX_EXPONENT, np.inf]),
            maxfev=5000,
        )
        b, a, c = (float(v) for v in params)
        return PowerLawWithFloor(b=max(b, 1e-12), a=a, c=max(c, 0.0))
    except (RuntimeError, ValueError):
        return PowerLawWithFloor(b=seed.b, a=seed.a, c=0.0)


def weighted_log_rmse(
    curve: PowerLawCurve | PowerLawWithFloor,
    sizes: np.ndarray,
    losses: np.ndarray,
    weights: np.ndarray | None = None,
) -> float:
    """Weighted RMS error of ``curve`` against the points, in log space."""
    sizes, losses, weights = _validate_points(sizes, losses, weights)
    predicted = np.asarray(curve.predict(sizes), dtype=np.float64)
    predicted = np.maximum(predicted, 1e-12)
    residuals = np.log(losses) - np.log(predicted)
    w = weights / weights.sum()
    return float(np.sqrt(np.sum(w * residuals**2)))
