"""Executor backends: where (and whether) training jobs run in parallel.

An :class:`Executor` takes a batch of :class:`~repro.engine.job.TrainingJob`
specs and returns their :class:`~repro.engine.job.JobResult`\\ s **in
submission order**.  Because every job carries its own pre-spawned seed, the
backend is purely a deployment choice: :class:`SerialExecutor` (in-process)
and :class:`ProcessPoolExecutor` (one worker process per core) produce
byte-identical results for the same jobs.

Both backends optionally wrap a :class:`~repro.engine.cache.ResultCache`;
cached jobs are served without running, and only the misses are dispatched.
Executors also expose :meth:`Executor.map` — a generic ordered map used by
the experiment runner to fan a scenario/method/trial grid out across
workers.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.engine.cache import ResultCache
from repro.engine.job import JobResult, TrainingJob, run_training_job
from repro.telemetry import (
    CollectSink,
    MetricsRegistry,
    Span,
    Tracer,
    get_registry,
    get_tracer,
    set_registry,
    set_tracer,
)
from repro.utils.exceptions import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")


class Executor:
    """Base class: cache bookkeeping plus an ordered-execution contract.

    Parameters
    ----------
    cache:
        Optional :class:`~repro.engine.cache.ResultCache`.  Hits skip
        execution entirely (``JobResult.from_cache`` is True for them);
        misses are executed by the backend and stored.
    """

    name: str = "base"

    def __init__(self, cache: ResultCache | None = None) -> None:
        self.cache = cache

    # -- the contract ------------------------------------------------------------
    def submit(self, jobs: Sequence[TrainingJob]) -> list[JobResult]:
        """Run ``jobs`` (serving cache hits), results in submission order."""
        jobs = list(jobs)
        registry = get_registry()
        registry.counter("engine.jobs").inc(len(jobs))
        with get_tracer().span(
            "engine.submit",
            attributes={"executor": self.name, "jobs": len(jobs)},
        ) as span:
            results: list[JobResult | None] = [None] * len(jobs)
            pending: list[tuple[int, TrainingJob]] = []
            if self.cache is None:
                pending = list(enumerate(jobs))
            else:
                for index, job in enumerate(jobs):
                    hit = self.cache.get(job.fingerprint)
                    if hit is not None:
                        hit.tag = job.tag
                        results[index] = hit
                    else:
                        pending.append((index, job))
            if pending:
                executed = self._run_jobs([job for _, job in pending])
                for (index, job), result in zip(pending, executed, strict=True):
                    results[index] = result
                    if self.cache is not None:
                        # Job fingerprints hash the full training set, so they
                        # are only materialized on cached runs.
                        result.fingerprint = job.fingerprint
                        if not result.from_cache:
                            # A shared-cache worker may have served this "miss"
                            # from another process's training; re-storing would
                            # only rewrite an identical entry.
                            self.cache.put(job.fingerprint, result)
            hits = len(jobs) - len(pending)
            registry.counter("engine.cache_hits").inc(hits)
            registry.counter("engine.cache_misses").inc(len(pending))
            span.set_attribute("cache_hits", hits)
            span.set_attribute("executed", len(pending))
        if any(result is None for result in results):
            raise RuntimeError("executor backend dropped a job result")
        return results

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, preserving order (generic fan-out)."""
        raise NotImplementedError

    def _run_jobs(self, jobs: Sequence[TrainingJob]) -> list[JobResult]:
        """Execute cache-missed jobs; must preserve order."""
        raise NotImplementedError

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (a no-op for in-process backends)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class _ShippedJob:
    """A worker's result plus the telemetry it produced (picklable)."""

    result: JobResult
    spans: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)


@dataclass
class _TracedWorkerRunner:
    """Picklable wrapper running one job under a worker-local tracer.

    The worker installs a fresh tracer (collect sink) and a fresh metrics
    registry around the job, so the shipped payload contains exactly this
    job's spans and metric deltas — pool processes are reused across jobs,
    and a process-wide registry would double-count.  The span id derives
    from the parent ``engine.submit`` span and the job's submission index,
    never from which worker ran it.
    """

    runner: Callable[[TrainingJob], JobResult]
    parent_id: str
    baggage: dict

    def __call__(self, indexed_job: tuple[int, TrainingJob]) -> _ShippedJob:
        index, job = indexed_job
        collector = CollectSink()
        tracer = Tracer(sinks=[collector])
        registry = MetricsRegistry()
        previous_tracer = set_tracer(tracer)
        previous_registry = set_registry(registry)
        try:
            with tracer.span(
                "engine.job",
                parent=self.parent_id,
                sequence=index,
                attributes={"index": index, "tag": repr(job.tag)},
                baggage=self.baggage,
            ) as span:
                result = self.runner(job)
                span.set_attribute("from_cache", bool(result.from_cache))
        finally:
            set_tracer(previous_tracer)
            set_registry(previous_registry)
        return _ShippedJob(
            result=result,
            spans=[span.to_dict() for span in collector.spans()],
            metrics=registry.snapshot(),
        )


class SerialExecutor(Executor):
    """Run every job in the calling process, one after another."""

    name = "serial"

    def _run_jobs(self, jobs: Sequence[TrainingJob]) -> list[JobResult]:
        return [run_training_job(job) for job in jobs]

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]


class ProcessPoolExecutor(Executor):
    """Fan jobs out across worker processes.

    Parameters
    ----------
    max_workers:
        Worker process count; defaults to the CPU count.
    cache:
        Optional result cache (lives in the parent process; workers only see
        cache misses).
    chunksize:
        Jobs shipped per worker task; 1 keeps scheduling responsive for the
        heterogeneous job sizes the estimator produces.

    Jobs and their results must be picklable.  A closure model factory (the
    one realistic offender) degrades gracefully: the whole batch is executed
    serially in the parent with a warning, so correctness never depends on
    the backend.  Only the factories are probed — datasets, configs, and
    seeds always pickle, and probing whole jobs would serialize every
    training set twice.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        cache: ResultCache | None = None,
        chunksize: int = 1,
    ) -> None:
        super().__init__(cache=cache)
        if max_workers is not None and max_workers <= 0:
            raise ConfigurationError(
                f"max_workers must be positive or None, got {max_workers}"
            )
        if chunksize <= 0:
            raise ConfigurationError(f"chunksize must be positive, got {chunksize}")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunksize = chunksize
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers
            )
        return self._pool

    @staticmethod
    def _picklable(payload: object) -> bool:
        try:
            pickle.dumps(payload)
        except Exception:
            return False
        return True

    def _run_jobs(self, jobs: Sequence[TrainingJob]) -> list[JobResult]:
        if not jobs:
            return []
        factories = {id(job.model_factory): job.model_factory for job in jobs}
        if not all(self._picklable(factory) for factory in factories.values()):
            warnings.warn(
                "a job's model factory is not picklable (closure?); "
                "falling back to serial execution for this batch",
                RuntimeWarning,
                stacklevel=3,
            )
            return [run_training_job(job) for job in jobs]
        pool = self._ensure_pool()
        # A process-shared cache (SqliteResultCache) supplies a picklable
        # runner that re-checks and feeds the shared file from inside each
        # worker, so results land on disk the moment they finish and no
        # cross-process result is ever retrained.
        runner: Callable[[TrainingJob], JobResult] = run_training_job
        worker_factory = getattr(self.cache, "worker_runner", None)
        if worker_factory is not None:
            runner = worker_factory()
        tracer = get_tracer()
        if not tracer.enabled:
            return list(pool.map(runner, jobs, chunksize=self.chunksize))
        # Tracing is on: wrap the runner so each worker runs its job under
        # a span on a job-local tracer/registry and ships both back with
        # the result.  Parent linkage and sequence are pre-assigned here,
        # so worker span ids are deterministic regardless of which worker
        # process picks which job up.
        parent = tracer.current_span()
        traced_runner = _TracedWorkerRunner(
            runner=runner,
            parent_id=parent.span_id if parent is not None else "",
            baggage=dict(parent.baggage) if parent is not None else {},
        )
        shipped = list(
            pool.map(traced_runner, enumerate(jobs), chunksize=self.chunksize)
        )
        registry = get_registry()
        results: list[JobResult] = []
        for item in shipped:
            results.append(item.result)
            for span_dict in item.spans:
                tracer.emit(Span.from_dict(span_dict))
            registry.merge(item.metrics)
        return results

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        items = list(items)
        if not items:
            return []
        if not self._picklable(fn) or not all(
            self._picklable(item) for item in items
        ):
            warnings.warn(
                "task is not picklable; falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        return list(pool.map(fn, items, chunksize=self.chunksize))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


_EXECUTORS: dict[str, Callable[..., Executor]] = {
    "serial": SerialExecutor,
    "process": ProcessPoolExecutor,
    "process_pool": ProcessPoolExecutor,
}


def available_executors() -> tuple[str, ...]:
    """Primary names of the built-in executor backends."""
    return ("serial", "process")


def get_executor(name: str, **kwargs: Any) -> Executor:
    """Build an executor backend by name (``"serial"`` or ``"process"``)."""
    factory = _EXECUTORS.get(name.strip().lower())
    if factory is None:
        raise ConfigurationError(
            f"unknown executor {name!r}; available: "
            f"{', '.join(available_executors())}"
        )
    return factory(**kwargs)
