"""Named, picklable model factories.

Process-pool workers need to rebuild models from a pickled job, and the
result cache needs a *stable* identity for "which model family was this?".
Registering a factory under a name solves both: jobs can carry just the name
(always picklable), and fingerprints key on it.

Arbitrary callables still work everywhere the serial executor runs;
:func:`describe_factory` derives a best-effort stable name for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterable

from repro.utils.exceptions import ConfigurationError

#: A model factory maps the number of classes to a fresh, untrained model.
ModelFactory = Callable[[int], object]

_FACTORIES: dict[str, ModelFactory] = {}


def _normalize(name: str) -> str:
    return name.strip().lower()


def register_model_factory(
    name: str, *, aliases: Iterable[str] = (), overwrite: bool = False
) -> Callable[[ModelFactory], ModelFactory]:
    """Decorator registering a model factory under ``name`` (and aliases)."""
    keys = [_normalize(name), *(_normalize(alias) for alias in aliases)]

    def decorator(factory: ModelFactory) -> ModelFactory:
        for key in keys:
            if not overwrite and key in _FACTORIES:
                raise ConfigurationError(
                    f"model factory {key!r} is already registered; pass "
                    f"overwrite=True to replace it"
                )
            _FACTORIES[key] = factory
        return factory

    return decorator


def get_model_factory(name: str) -> ModelFactory:
    """Look a registered factory up by name."""
    factory = _FACTORIES.get(_normalize(name))
    if factory is None:
        raise ConfigurationError(
            f"unknown model factory {name!r}; registered: "
            f"{', '.join(available_model_factories())}"
        )
    return factory


def available_model_factories() -> tuple[str, ...]:
    """Sorted names of every registered model factory."""
    return tuple(sorted(_FACTORIES))


def describe_factory(factory: ModelFactory | None) -> str:
    """A stable, fingerprint-friendly name for a factory callable.

    Registered factories resolve to their registry name; plain functions to
    ``module.qualname``; dataclass instances and partials to their ``repr``
    (which encodes their configuration).  Closures fall back to their
    qualname — good enough to tell families apart, though two differently
    configured closures of one function would collide; register such
    factories to give them distinct names.
    """
    if factory is None:
        return "<none>"
    for name, registered in _FACTORIES.items():
        if registered is factory:
            return name
    if isinstance(factory, partial):
        return repr(factory)
    if hasattr(factory, "__qualname__"):
        module = getattr(factory, "__module__", "")
        return f"{module}.{factory.__qualname__}"
    # Instances of factory classes: repr encodes the configuration for
    # dataclasses; fall back to the type for everything else.
    representation = repr(factory)
    if representation.startswith("<"):
        return f"{type(factory).__module__}.{type(factory).__qualname__}"
    return representation


@register_model_factory("softmax", aliases=("linear", "default"))
def softmax_factory(n_classes: int) -> object:
    """Softmax regression — the default model family."""
    from repro.ml.linear import SoftmaxRegression

    return SoftmaxRegression(n_classes=n_classes, random_state=0)


@dataclass(frozen=True)
class MLPFactory:
    """Picklable factory building :class:`~repro.ml.mlp.MLPClassifier` models.

    Use this instead of a lambda when jobs must cross a process boundary::

        factory = MLPFactory(hidden_sizes=(32, 16))
        tuner = SliceTuner(sliced, source, model_factory=factory, ...)
    """

    hidden_sizes: tuple[int, ...] = (32,)
    l2: float = 1e-4
    random_state: int = 0

    def __call__(self, n_classes: int) -> object:
        from repro.ml.mlp import MLPClassifier

        return MLPClassifier(
            n_classes=n_classes,
            hidden_sizes=self.hidden_sizes,
            l2=self.l2,
            random_state=self.random_state,
        )


@register_model_factory("mlp")
def mlp_factory(n_classes: int) -> object:
    """Default MLP: one hidden layer of 32 units."""
    return MLPFactory()(n_classes)
