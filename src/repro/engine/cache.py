"""Content-addressed caches for the execution engine.

Two caches live here:

* :class:`ResultCache` / :class:`InMemoryResultCache` — maps job
  fingerprints to :class:`~repro.engine.job.JobResult`\\ s, so a training
  with identical data, configuration, and seed is never executed twice.
  Inspired by incremental view maintenance: when nothing a result depends on
  changed, serve the old result.
* :class:`CurveCache` — per-slice fitted learning curves keyed on each
  slice's training-pool fingerprint, powering the estimator's incremental
  mode: only slices whose pools changed since the last estimate are
  re-measured and re-fitted.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Iterable,
    Mapping,
    Protocol,
    runtime_checkable,
)

from repro.engine.job import JobResult, fingerprint_dataset
from repro.utils.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.curves.power_law import FittedCurve
    from repro.slices.sliced_dataset import SlicedDataset


@dataclass
class CacheStats:
    """Hit/miss counters of one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> dict[str, Any]:
        """All counters as one JSON-compatible dict, read in one pass.

        Surfaces that report several counters together (``/stats``,
        ``cache stats --json``) build on this instead of reading the
        attributes one by one, so no counter in a payload can be mid-update
        relative to another.
        """
        hits, misses, evictions = self.hits, self.misses, self.evictions
        requests = hits + misses
        return {
            "requests": requests,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": round(hits / requests, 4) if requests else 0.0,
        }


@runtime_checkable
class ResultCache(Protocol):
    """Protocol of a content-addressed training-result cache."""

    stats: CacheStats

    def get(self, fingerprint: str) -> JobResult | None:
        """Return the cached result for ``fingerprint``, or ``None``."""
        ...

    def put(self, fingerprint: str, result: JobResult) -> None:
        """Store ``result`` under ``fingerprint``."""
        ...


class InMemoryResultCache:
    """LRU-bounded in-memory :class:`ResultCache`.

    Parameters
    ----------
    max_entries:
        Upper bound on stored results; the least recently used entry is
        evicted first.  ``None`` means unbounded.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ConfigurationError(
                f"max_entries must be positive or None, got {max_entries}"
            )
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[str, JobResult] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> JobResult | None:
        """Look up one result, counting the hit/miss.

        Hits hand out a *copy* marked ``from_cache=True``: the model inside a
        cached result may be shared with many callers, so nobody should
        receive the original object to mutate.
        """
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._entries.move_to_end(fingerprint)
        served = copy.deepcopy(entry)
        served.from_cache = True
        return served

    def stats_snapshot(self) -> dict[str, Any]:
        """All counters in one consistent read (see :meth:`CacheStats.snapshot`)."""
        return self.stats.snapshot()

    def put(self, fingerprint: str, result: JobResult) -> None:
        """Store one result, evicting the LRU entry when over capacity.

        The result is stored by reference: :meth:`get` already copies on
        every read, and executors hand the cache freshly trained results
        they do not mutate afterwards, so a second defensive copy on insert
        would only double the per-training cache cost.
        """
        self._entries[fingerprint] = result
        self._entries.move_to_end(fingerprint)
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

    def close(self) -> None:
        """Nothing to release; present for parity with disk-backed caches."""


def pool_fingerprints(sliced: "SlicedDataset") -> dict[str, str]:
    """Per-slice content hashes of a dataset's current training pools."""
    return {
        name: fingerprint_dataset(sliced[name].train) for name in sliced.names
    }


@dataclass
class _CurveEntry:
    pool_fingerprint: str
    curve: "FittedCurve"


@dataclass
class CurveCache:
    """Per-slice fitted curves keyed on each slice's training-pool content.

    The estimator's incremental mode asks :meth:`stale_slices` which slices
    actually need re-measurement, reuses :meth:`cached_curves` for the rest,
    and records the refreshed fits with :meth:`update`.
    """

    stats: CacheStats = field(default_factory=CacheStats)
    _entries: dict[str, _CurveEntry] = field(default_factory=dict)
    _last_counted: dict[str, str] = field(default_factory=dict)

    def stale_slices(
        self,
        sliced: "SlicedDataset",
        fingerprints: Mapping[str, str] | None = None,
    ) -> list[str]:
        """Names of slices whose pools changed since the last :meth:`update`.

        Never-seen slices count as stale; the list preserves the dataset's
        slice order.  Pass precomputed per-slice ``fingerprints`` to avoid
        re-hashing pools the caller already fingerprinted.

        Statistics count each *pool-fingerprint transition* once — the
        first time a slice is seen at a given pool content it scores a hit
        (curve already cached for that content) or a miss; re-polling an
        unchanged dataset leaves :attr:`stats` untouched, so hit rates do
        not depend on how often callers ask.
        """
        if fingerprints is None:
            fingerprints = pool_fingerprints(sliced)
        stale: list[str] = []
        for name, fingerprint in fingerprints.items():
            entry = self._entries.get(name)
            fresh = entry is not None and entry.pool_fingerprint == fingerprint
            if not fresh:
                stale.append(name)
            if self._last_counted.get(name) != fingerprint:
                self._last_counted[name] = fingerprint
                if fresh:
                    self.stats.hits += 1
                else:
                    self.stats.misses += 1
        return stale

    def cached_curves(self, names: Iterable[str]) -> dict[str, "FittedCurve"]:
        """The stored curves for ``names`` (callers pass the non-stale set)."""
        return {name: self._entries[name].curve for name in names}

    def update(
        self,
        sliced: "SlicedDataset",
        curves: Mapping[str, "FittedCurve"],
        fingerprints: Mapping[str, str] | None = None,
    ) -> None:
        """Record freshly fitted ``curves`` against the current pool content."""
        if fingerprints is None:
            fingerprints = pool_fingerprints(sliced)
        for name, curve in curves.items():
            self._entries[name] = _CurveEntry(
                pool_fingerprint=fingerprints[name], curve=curve
            )

    def clear(self) -> None:
        """Forget every stored curve (statistics are kept)."""
        self._entries.clear()
        self._last_counted.clear()
