"""The declarative training-job spec and its content-addressed fingerprint.

A :class:`TrainingJob` captures everything one model training depends on —
the training data, the model factory, the trainer configuration, and a seed
spawned up-front by the caller.  Two consequences:

* **Determinism** — executing a job is a pure function of the spec, so any
  executor backend (in-process or a process pool, in any order) produces the
  same trained model for the same job.
* **Content addressing** — :attr:`TrainingJob.fingerprint` hashes the data,
  configuration, factory name, and seed, so a
  :class:`~repro.engine.cache.ResultCache` can recognise a repeated training
  and skip it entirely.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields
from functools import cached_property
from typing import Any

from repro.engine.factories import ModelFactory
from repro.ml.data import Dataset
from repro.ml.train import Trainer, TrainingConfig, TrainingResult


def fingerprint_dataset(dataset: Dataset) -> str:
    """Content hash of a dataset (features, labels, shapes, and dtypes).

    Dtypes and per-array separators are hashed even though :class:`Dataset`
    currently coerces to float64/int64 — the cache key must never rely on a
    container invariant it cannot see.
    """
    digest = hashlib.sha256()
    digest.update(
        f"{dataset.features.shape}:{dataset.features.dtype}\x1f".encode()
    )
    digest.update(dataset.features.tobytes())
    digest.update(f"\x1f{dataset.labels.shape}:{dataset.labels.dtype}\x1f".encode())
    digest.update(dataset.labels.tobytes())
    return digest.hexdigest()


def stable_seed(*parts: Any) -> int:
    """Derive a deterministic 63-bit seed from arbitrary hashable parts.

    Unlike ``hash()``, the result is stable across processes and Python
    invocations, which is what lets repeated estimations on identical data
    rebuild identical job specs (and therefore hit the result cache).
    """
    digest = hashlib.sha256("\x1f".join(str(part) for part in parts).encode())
    return int.from_bytes(digest.digest()[:8], "big") >> 1


def _fingerprint_config(config: TrainingConfig) -> str:
    pairs = [(f.name, getattr(config, f.name)) for f in fields(config)]
    return repr(sorted(pairs))


@dataclass(frozen=True, eq=False)
class TrainingJob:
    """One from-scratch model training, fully specified up-front.

    Attributes
    ----------
    train:
        The training data.
    n_classes:
        Number of classes the model must discriminate.
    seed:
        Seed for the trainer's RNG (batch shuffling, internal validation
        split).  Spawn it from the parent RNG *before* submitting, so serial
        and parallel executors see identical seeds.
    trainer_config:
        Hyperparameters of the training run.
    model_factory:
        Callable ``n_classes -> model``.  Must be picklable (a module-level
        function, a registered factory, or a dataclass instance) to cross a
        process-pool boundary; any callable works with the serial executor.
    factory_name:
        Stable identifier of the factory used for fingerprinting; defaults
        to a name derived from the callable (see
        :func:`repro.engine.factories.describe_factory`).
    validation:
        Optional validation data forwarded to :meth:`Trainer.fit`.
    tag:
        Caller-side correlation data (e.g. ``(repeat, fraction)``); carried
        through to the result, never fingerprinted.
    """

    train: Dataset
    n_classes: int
    seed: int
    trainer_config: TrainingConfig = field(default_factory=TrainingConfig)
    model_factory: ModelFactory | None = None
    factory_name: str = ""
    validation: Dataset | None = None
    tag: Any = None

    @cached_property
    def fingerprint(self) -> str:
        """Content hash identifying this job for the result cache."""
        from repro.engine.factories import describe_factory

        factory_name = self.factory_name or describe_factory(self.model_factory)
        digest = hashlib.sha256()
        digest.update(fingerprint_dataset(self.train).encode())
        if self.validation is not None:
            digest.update(fingerprint_dataset(self.validation).encode())
        digest.update(
            "\x1f".join(
                (
                    str(self.n_classes),
                    str(self.seed),
                    _fingerprint_config(self.trainer_config),
                    factory_name,
                )
            ).encode()
        )
        return digest.hexdigest()


@dataclass
class JobResult:
    """Outcome of one executed (or cache-served) training job.

    Attributes
    ----------
    fingerprint:
        The job's content hash (cache key).  Filled in by the executor only
        when a cache is attached — computing it hashes the full training
        set, which would be pure overhead on cache-less runs.
    model:
        The trained model.  Cached results hand out fresh copies, but treat
        the model as read-only all the same.
    training:
        The :class:`~repro.ml.train.TrainingResult` of the run.
    tag:
        The submitting job's correlation tag.
    from_cache:
        True when the result was served by a
        :class:`~repro.engine.cache.ResultCache` instead of a fresh training
        — callers use this to keep training counters honest.
    """

    model: object
    training: TrainingResult
    fingerprint: str = ""
    tag: Any = None
    from_cache: bool = False


def run_training_job(job: TrainingJob) -> JobResult:
    """Execute one job: build a fresh model, train it, package the result.

    Module-level (not a method) so process-pool workers can import it.
    """
    if job.model_factory is None:
        from repro.engine.factories import get_model_factory

        factory: ModelFactory = get_model_factory(job.factory_name)
    else:
        factory = job.model_factory
    model = factory(job.n_classes)
    trainer = Trainer(config=job.trainer_config, random_state=job.seed)
    training = trainer.fit(model, job.train, job.validation)
    return JobResult(model=model, training=training, tag=job.tag)
