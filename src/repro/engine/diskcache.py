"""Persistent, shared result/curve cache on stdlib sqlite3 (WAL mode).

The in-memory caches of :mod:`repro.engine.cache` die with the process, so
every :class:`~repro.engine.executor.ProcessPoolExecutor` worker, every
daemon restart, and every resumed campaign re-pays for trainings the system
has already performed.  This module makes the cache a durable, content-
addressed materialized view over ``(data, config, seed) -> result`` — the
incremental-view-maintenance stance of the rest of the repo: when nothing a
result depends on changed, serve the old result, across processes and
restarts.

* :class:`SqliteResultCache` implements the
  :class:`~repro.engine.cache.ResultCache` protocol on a SQLite file in WAL
  mode with the same per-append commit discipline as
  :class:`repro.campaigns.store.SqliteStore`: every write is its own
  committed transaction, so a ``kill -9`` mid-``put`` can lose at most the
  entry being written, never a committed one.  A small in-process LRU front
  keeps hot lookups at dictionary speed while the disk tier is shared by
  serial runs, every pool worker, and restarted daemons.
* :class:`SqliteCurveCache` extends :class:`~repro.engine.cache.CurveCache`
  with a disk tier in the same file: fitted curves are keyed by
  ``(estimation context, slice name, full-dataset fingerprint)``, so a
  restarted process serves yesterday's curves for an unchanged dataset
  state instead of re-measuring them.

Determinism is the product: entries are versioned pickles
(:data:`RESULT_SCHEMA` / :data:`CURVE_SCHEMA`), NumPy arrays round-trip
bitwise through pickle, and a corrupted or version-mismatched blob degrades
to a cache *miss* — never an error, never a wrong answer.  (Like the
campaign store's snapshots, blobs are pickles: only point a cache at files
you trust.)

Hit/miss counters live in the database too (one row per tier), so
:attr:`SqliteResultCache.stats` aggregates honestly across every process
that ever touched the file — including pool workers, whose lookups the
parent process cannot see.
"""

from __future__ import annotations

import atexit
import copy
import functools
import hashlib
import os
import pickle
import sqlite3
import threading
import time
import warnings
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.engine.cache import CacheStats, CurveCache, _CurveEntry, pool_fingerprints
from repro.engine.job import JobResult, TrainingJob, run_training_job
from repro.utils.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.curves.power_law import FittedCurve
    from repro.slices.sliced_dataset import SlicedDataset

#: Version tag stored with every serialized training result.  Bump it when
#: the :class:`~repro.engine.job.JobResult` layout changes; old entries then
#: degrade to misses instead of deserializing into garbage.
RESULT_SCHEMA = "repro.jobresult/1"

#: Version tag stored with every serialized fitted curve.
CURVE_SCHEMA = "repro.curve/1"

#: Default file name inside a ``--cache-dir`` / ``REPRO_CACHE_DIR`` directory.
CACHE_FILENAME = "cache.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT PRIMARY KEY,
    schema      TEXT NOT NULL,
    payload     BLOB NOT NULL,
    size        INTEGER NOT NULL,
    created_at  REAL NOT NULL,
    last_access REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_last_access ON results(last_access);
CREATE TABLE IF NOT EXISTS curves (
    curve_key   TEXT PRIMARY KEY,
    schema      TEXT NOT NULL,
    payload     BLOB NOT NULL,
    size        INTEGER NOT NULL,
    created_at  REAL NOT NULL,
    last_access REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_curves_last_access ON curves(last_access);
CREATE TABLE IF NOT EXISTS counters (
    tier      TEXT PRIMARY KEY,
    hits      INTEGER NOT NULL DEFAULT 0,
    misses    INTEGER NOT NULL DEFAULT 0,
    evictions INTEGER NOT NULL DEFAULT 0
);
"""

#: Counter rows maintained in the database, in display order.
TIERS = ("memory", "results", "curves")


def default_cache_path(cache_dir: str) -> str:
    """The cache file used for a ``--cache-dir``/``REPRO_CACHE_DIR`` directory."""
    return os.path.join(cache_dir, CACHE_FILENAME)


class SqliteResultCache:
    """Disk-backed, content-addressed :class:`~repro.engine.cache.ResultCache`.

    Two tiers answer every lookup:

    * a small in-process LRU **front** (``memory_entries`` deserialized
      results, served copy-on-read exactly like
      :class:`~repro.engine.cache.InMemoryResultCache`), and
    * the **disk** tier: one WAL-mode SQLite file, safely shared by any
      number of threads (one connection serialized by an RLock, mirroring
      :class:`repro.campaigns.store.SqliteStore`) and any number of
      *processes*, each holding its own :class:`SqliteResultCache` over the
      same path.

    Parameters
    ----------
    path:
        The cache database file (created on first use, parent directory
        included).  ``":memory:"`` works for tests but defeats persistence.
    memory_entries:
        Capacity of the in-process LRU front; ``None`` means unbounded,
        which is rarely what a long-lived daemon wants.
    """

    def __init__(self, path: str, memory_entries: int | None = 128) -> None:
        if memory_entries is not None and memory_entries <= 0:
            raise ConfigurationError(
                f"memory_entries must be positive or None, got {memory_entries}"
            )
        self.path = str(path)
        self.memory_entries = memory_entries
        parent = os.path.dirname(self.path)
        if parent and self.path != ":memory:":
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, timeout=30.0, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.executescript(_SCHEMA)
        self._front: OrderedDict[str, JobResult] = OrderedDict()
        # Unflushed per-tier counter deltas.  Memory-front hits only bump a
        # Python int (the O(µs) hot path); deltas ride along with the next
        # disk transaction (or an explicit flush/close/stats read).
        self._deltas: dict[str, CacheStats] = {tier: CacheStats() for tier in TIERS}
        self._closed = False

    # -- the ResultCache protocol -------------------------------------------------
    def get(self, fingerprint: str, *, count_miss: bool = True) -> JobResult | None:
        """Serve one result from the front or the disk tier, or ``None``.

        Hits hand out an independent copy marked ``from_cache=True``.  A
        blob that fails to deserialize or carries a different schema tag is
        deleted and reported as a miss — degraded, never raised.

        ``count_miss=False`` suppresses the disk-tier miss counter: pool
        workers re-check the cache for jobs whose miss the parent process
        already counted, so without it every pooled training would count
        twice.
        """
        with self._lock:
            front = self._front.get(fingerprint)
            if front is not None:
                self._front.move_to_end(fingerprint)
                self._deltas["memory"].hits += 1
                return self._serve(front)
            self._deltas["memory"].misses += 1
            row = self._conn.execute(
                "SELECT schema, payload FROM results WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
            result = None if row is None else self._decode_result(fingerprint, row)
            if result is None:
                if count_miss:
                    self._deltas["results"].misses += 1
                return None
            self._deltas["results"].hits += 1
            with self._conn:
                self._conn.execute(
                    "UPDATE results SET last_access = ? WHERE fingerprint = ?",
                    (time.time(), fingerprint),
                )
                self._flush_locked()
            self._remember(fingerprint, result)
            return self._serve(result)

    def put(self, fingerprint: str, result: JobResult) -> None:
        """Persist one result (committed transaction) and front it.

        A result whose payload cannot pickle (e.g. an exotic caller tag)
        degrades to front-only caching with a warning — the disk tier only
        ever holds entries it can serve back.
        """
        try:
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            warnings.warn(
                "training result is not picklable; cached in memory only",
                RuntimeWarning,
                stacklevel=2,
            )
            with self._lock:
                self._remember(fingerprint, result)
            return
        now = time.time()
        with self._lock:
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO results "
                    "(fingerprint, schema, payload, size, created_at, last_access) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        fingerprint,
                        RESULT_SCHEMA,
                        sqlite3.Binary(payload),
                        len(payload),
                        now,
                        now,
                    ),
                )
                self._flush_locked()
            self._remember(fingerprint, result)

    def __len__(self) -> int:
        with self._lock:
            row = self._conn.execute("SELECT count(*) FROM results").fetchone()
        return int(row[0])

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._front:
                return True
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        return row is not None

    # -- statistics ---------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Aggregated view for the :class:`ResultCache` protocol.

        ``hits`` are trainings avoided (front + disk, summed across every
        process sharing the file); ``misses`` are disk-tier misses — every
        top-level miss falls through both tiers, so the two coincide and
        front misses that the disk served are not double-counted.
        """
        tiers = self.tier_stats()
        memory, disk = tiers["memory"], tiers["results"]
        return CacheStats(
            hits=memory.hits + disk.hits,
            misses=disk.misses,
            evictions=memory.evictions + disk.evictions,
        )

    def stats_snapshot(self) -> dict[str, Any]:
        """All aggregated counters in one consistent read.

        One :meth:`tier_stats` pass (a single locked flush + query) feeds
        every number, so the payload cannot tear across a concurrent
        update the way four separate :attr:`stats` reads could.
        """
        tiers = self.tier_stats()
        memory, disk = tiers["memory"], tiers["results"]
        return CacheStats(
            hits=memory.hits + disk.hits,
            misses=disk.misses,
            evictions=memory.evictions + disk.evictions,
        ).snapshot()

    def tier_stats(self) -> dict[str, CacheStats]:
        """Cumulative per-tier counters, aggregated across processes."""
        with self._lock:
            with self._conn:
                self._flush_locked()
            rows = self._conn.execute(
                "SELECT tier, hits, misses, evictions FROM counters"
            ).fetchall()
        stats = {tier: CacheStats() for tier in TIERS}
        for tier, hits, misses, evictions in rows:
            stats[tier] = CacheStats(
                hits=int(hits), misses=int(misses), evictions=int(evictions)
            )
        return stats

    def entry_stats(self) -> dict[str, dict[str, int]]:
        """Per-table entry counts and payload bytes (for ``cache stats``)."""
        with self._lock:
            tables = {}
            for table in ("results", "curves"):
                count, size = self._conn.execute(
                    f"SELECT count(*), coalesce(sum(size), 0) FROM {table}"
                ).fetchone()
                tables[table] = {"entries": int(count), "size_bytes": int(size)}
        return tables

    def flush(self) -> None:
        """Persist any buffered counter deltas (front hits) to the file."""
        with self._lock:
            if self._closed:
                return
            with self._conn:
                self._flush_locked()

    def _flush_locked(self) -> None:
        """Add unflushed deltas to the shared counter rows (inside a txn)."""
        for tier, delta in self._deltas.items():
            if not (delta.hits or delta.misses or delta.evictions):
                continue
            self._conn.execute(
                "INSERT INTO counters (tier, hits, misses, evictions) "
                "VALUES (?, ?, ?, ?) "
                "ON CONFLICT(tier) DO UPDATE SET "
                "hits = hits + excluded.hits, "
                "misses = misses + excluded.misses, "
                "evictions = evictions + excluded.evictions",
                (tier, delta.hits, delta.misses, delta.evictions),
            )
            self._deltas[tier] = CacheStats()

    # -- maintenance --------------------------------------------------------------
    def clear(self) -> None:
        """Drop every stored result and curve (counters are kept)."""
        with self._lock:
            with self._conn:
                self._conn.execute("DELETE FROM results")
                self._conn.execute("DELETE FROM curves")
            self._front.clear()

    def clear_all(self) -> dict[str, int]:
        """Drop entries *and* reset counters; returns what was removed."""
        with self._lock:
            removed = self.entry_stats()
            with self._conn:
                self._conn.execute("DELETE FROM results")
                self._conn.execute("DELETE FROM curves")
                self._conn.execute("DELETE FROM counters")
            for delta in self._deltas.values():
                delta.hits = delta.misses = delta.evictions = 0
            self._front.clear()
        return {
            "removed_results": removed["results"]["entries"],
            "removed_curves": removed["curves"]["entries"],
            "freed_bytes": removed["results"]["size_bytes"]
            + removed["curves"]["size_bytes"],
        }

    def gc(self, max_mb: float) -> dict[str, int]:
        """Evict least-recently-accessed entries until the payload fits.

        Walks results and curves together by ``last_access`` (oldest first)
        and deletes until total payload size is at most ``max_mb``
        megabytes.  Evictions count into the disk tiers' shared counters.
        """
        if max_mb < 0:
            raise ConfigurationError(f"max_mb must be >= 0, got {max_mb}")
        limit = int(max_mb * 1024 * 1024)
        removed = {"results": 0, "curves": 0}
        freed = 0
        with self._lock:
            total = sum(
                table["size_bytes"] for table in self.entry_stats().values()
            )
            if total > limit:
                rows = self._conn.execute(
                    "SELECT 'results' AS tbl, fingerprint AS key, size, last_access"
                    "  FROM results "
                    "UNION ALL "
                    "SELECT 'curves' AS tbl, curve_key AS key, size, last_access"
                    "  FROM curves "
                    "ORDER BY last_access, key"
                ).fetchall()
                with self._conn:
                    for table, key, size, _ in rows:
                        if total <= limit:
                            break
                        column = (
                            "fingerprint" if table == "results" else "curve_key"
                        )
                        self._conn.execute(
                            f"DELETE FROM {table} WHERE {column} = ?", (key,)
                        )
                        self._front.pop(key, None)
                        tier = "results" if table == "results" else "curves"
                        self._deltas[tier].evictions += 1
                        removed[table] += 1
                        freed += int(size)
                        total -= int(size)
                    self._flush_locked()
        return {
            "removed_results": removed["results"],
            "removed_curves": removed["curves"],
            "freed_bytes": freed,
            "remaining_bytes": total,
        }

    # -- the curve tier -----------------------------------------------------------
    def store_curve(self, curve_key: str, curve: "FittedCurve") -> None:
        """Persist one fitted curve under its content-addressed key."""
        try:
            payload = pickle.dumps(curve, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # pragma: no cover - curves are plain dataclasses
            return
        now = time.time()
        with self._lock:
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO curves "
                    "(curve_key, schema, payload, size, created_at, last_access) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        curve_key,
                        CURVE_SCHEMA,
                        sqlite3.Binary(payload),
                        len(payload),
                        now,
                        now,
                    ),
                )
                self._flush_locked()

    def load_curve(self, curve_key: str) -> "FittedCurve | None":
        """One stored curve, or ``None`` (corruption degrades to a miss)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT schema, payload FROM curves WHERE curve_key = ?",
                (curve_key,),
            ).fetchone()
            curve = None
            if row is not None and row[0] == CURVE_SCHEMA:
                try:
                    curve = pickle.loads(row[1])
                except Exception:
                    curve = None
            if curve is None:
                if row is not None:
                    # Version-mismatched or corrupted: drop it so the slot
                    # can be refilled by the refit this miss triggers.
                    with self._conn:
                        self._conn.execute(
                            "DELETE FROM curves WHERE curve_key = ?", (curve_key,)
                        )
                self._deltas["curves"].misses += 1
                return None
            self._deltas["curves"].hits += 1
            with self._conn:
                self._conn.execute(
                    "UPDATE curves SET last_access = ? WHERE curve_key = ?",
                    (time.time(), curve_key),
                )
                self._flush_locked()
        return curve

    # -- executor integration -----------------------------------------------------
    def worker_runner(self) -> Callable[[TrainingJob], JobResult]:
        """A picklable job runner that shares this cache file across workers.

        :class:`~repro.engine.executor.ProcessPoolExecutor` maps it over the
        cache-missed jobs: each worker process opens its own read/write
        connection to the same WAL file, re-checks the fingerprint (another
        process may have trained it since the parent's miss), and persists
        fresh results immediately — so no cross-process result is ever
        retrained, and a training that finished before ``kill -9`` survives
        for whoever runs next.
        """
        return functools.partial(run_training_job_shared, self.path)

    # -- internals ----------------------------------------------------------------
    def _decode_result(self, fingerprint: str, row: tuple) -> JobResult | None:
        """Deserialize one row; schema mismatch/corruption degrades to a miss."""
        schema, payload = row
        result: JobResult | None = None
        if schema == RESULT_SCHEMA:
            try:
                loaded = pickle.loads(payload)
            except Exception:
                loaded = None
            if isinstance(loaded, JobResult):
                result = loaded
        if result is None:
            with self._conn:
                self._conn.execute(
                    "DELETE FROM results WHERE fingerprint = ?", (fingerprint,)
                )
        return result

    def _remember(self, fingerprint: str, result: JobResult) -> None:
        """Insert into the LRU front, evicting (and counting) when full."""
        self._front[fingerprint] = result
        self._front.move_to_end(fingerprint)
        if self.memory_entries is not None and len(self._front) > self.memory_entries:
            self._front.popitem(last=False)
            self._deltas["memory"].evictions += 1

    @staticmethod
    def _serve(result: JobResult) -> JobResult:
        served = copy.deepcopy(result)
        served.from_cache = True
        return served

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        """Flush buffered counters and release the connection."""
        with self._lock:
            if self._closed:
                return
            with self._conn:
                self._flush_locked()
            self._conn.close()
            self._closed = True

    def __enter__(self) -> "SqliteResultCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: One cache handle per file per worker process, reused across batches.
_WORKER_CACHES: dict[str, SqliteResultCache] = {}


def _worker_cache(path: str) -> SqliteResultCache:
    cache = _WORKER_CACHES.get(path)
    if cache is None:
        # A small front is plenty: within one batch every fingerprint is
        # distinct, so the front only helps across batches.
        cache = SqliteResultCache(path, memory_entries=8)
        _WORKER_CACHES[path] = cache
        atexit.register(cache.close)
    return cache


def run_training_job_shared(path: str, job: TrainingJob) -> JobResult:
    """Worker-side job execution against the shared cache at ``path``.

    Module-level (and bound to a plain path via :func:`functools.partial`)
    so it pickles across the process-pool boundary.  The re-check lookup
    passes ``count_miss=False`` — the parent already counted this job's
    miss, so only the cross-process hits it discovers add to the shared
    counters.
    """
    cache = _worker_cache(path)
    hit = cache.get(job.fingerprint, count_miss=False)
    if hit is not None:
        hit.tag = job.tag
        hit.fingerprint = job.fingerprint
        return hit
    result = run_training_job(job)
    result.fingerprint = job.fingerprint
    cache.put(job.fingerprint, result)
    return result


def dataset_fingerprint(fingerprints: Mapping[str, str]) -> str:
    """Content hash of the *whole* dataset (every slice's pool).

    A slice's fitted curve depends on every pool, not just its own: the
    amortized protocol trains one model on fractions of *all* slices, and
    the exhaustive protocol trains on (subset of one slice) + (all others in
    full).  Persisted curves are therefore addressed by the full dataset
    state — keying by the slice's own pool would let a later refit (same
    pool, different neighbours) overwrite the earlier curve, and a restarted
    run would hydrate the wrong one.
    """
    joined = "|".join(f"{name}:{fp}" for name, fp in sorted(fingerprints.items()))
    return hashlib.sha256(joined.encode()).hexdigest()


def curve_key(context: str, name: str, dataset_key: str) -> str:
    """Content address of one cached curve.

    ``context`` (estimation seed/config) + the slice name + the full dataset
    fingerprint: two runs share a slot exactly when they would fit
    byte-identical curves.
    """
    digest = hashlib.sha256(f"{context}\x1f{name}\x1f{dataset_key}".encode())
    return digest.hexdigest()


class SqliteCurveCache(CurveCache):
    """A :class:`~repro.engine.cache.CurveCache` with a shared disk tier.

    The in-memory per-slice table (and its transition-counted stats) work
    exactly as in the base class; on a memory miss the disk tier of the
    owning :class:`SqliteResultCache` is consulted under
    :func:`curve_key`.  Each :meth:`update` persists the *entire* current
    table under the current dataset fingerprint — including slices it did
    not refit — and each new dataset state hydrates *every* slice from
    that state's rows, so a restarted run holds, at every dataset state it
    passes through, exactly the curve table an uninterrupted in-memory run
    would be holding at that point.  (In-process the probes are no-ops: a
    state's rows only exist once its refit already ran.)
    """

    def __init__(self, backend: SqliteResultCache, context: str) -> None:
        super().__init__()
        self._backend = backend
        self._context = str(context)
        #: The last dataset state probed — each state is probed exactly
        #: once (pools only grow, states never come back), so repeated
        #: polls neither re-read the file nor inflate counters.
        self._hydrated_key: str | None = None

    def stale_slices(
        self,
        sliced: "SlicedDataset",
        fingerprints: Mapping[str, str] | None = None,
    ) -> list[str]:
        """Hydrate memory from this dataset state's rows, then delegate.

        Hydration covers every slice, not just per-pool-stale ones: one
        changed pool sends the estimator through a refit wave whose outputs
        land on *all* slices (amortized protocol), and keeping any slice's
        pre-wave curve here would both diverge from the uninterrupted run
        and suppress the wave's staleness trigger.
        """
        if fingerprints is None:
            fingerprints = pool_fingerprints(sliced)
        dataset_key = dataset_fingerprint(fingerprints)
        if dataset_key != self._hydrated_key:
            self._hydrated_key = dataset_key
            for name, fingerprint in fingerprints.items():
                curve = self._backend.load_curve(
                    curve_key(self._context, name, dataset_key)
                )
                if curve is not None:
                    self._entries[name] = _CurveEntry(
                        pool_fingerprint=fingerprint, curve=curve
                    )
        return super().stale_slices(sliced, fingerprints=fingerprints)

    def update(
        self,
        sliced: "SlicedDataset",
        curves: Mapping[str, "FittedCurve"],
        fingerprints: Mapping[str, str] | None = None,
    ) -> None:
        """Record fresh fits in memory, persist the full table to disk."""
        if fingerprints is None:
            fingerprints = pool_fingerprints(sliced)
        super().update(sliced, curves, fingerprints=fingerprints)
        dataset_key = dataset_fingerprint(fingerprints)
        for name in fingerprints:
            entry = self._entries.get(name)
            if entry is not None:
                self._backend.store_curve(
                    curve_key(self._context, name, dataset_key), entry.curve
                )
