"""The parallel training execution engine.

Every model training in the reproduction — the hundreds behind
learning-curve estimation, the evaluation trials, the experiment grids — is
describable as a :class:`~repro.engine.job.TrainingJob`: a dataset, a model
factory, a trainer configuration, and a pre-spawned seed.  This package turns
that observation into infrastructure:

* :mod:`repro.engine.job` — the declarative job spec with content-addressed
  fingerprints, and the single worker function that executes one job.
* :mod:`repro.engine.cache` — a :class:`~repro.engine.cache.ResultCache`
  keyed on job fingerprints so a training with the same data, configuration,
  and seed is never re-run, plus the :class:`~repro.engine.cache.CurveCache`
  powering incremental curve re-estimation.
* :mod:`repro.engine.diskcache` — the persistent tier:
  :class:`~repro.engine.diskcache.SqliteResultCache` (WAL-mode SQLite behind
  a small in-process LRU front) shares content-addressed results across
  processes and restarts, and
  :class:`~repro.engine.diskcache.SqliteCurveCache` does the same for
  fitted curves.
* :mod:`repro.engine.executor` — the :class:`~repro.engine.executor.Executor`
  protocol with :class:`~repro.engine.executor.SerialExecutor` and
  :class:`~repro.engine.executor.ProcessPoolExecutor` backends.  Seeds are
  spawned up-front from the parent RNG, so the two backends produce
  byte-identical results and parallelism is purely a deployment choice.
* :mod:`repro.engine.factories` — a registry of named, picklable model
  factories so jobs can cross process boundaries and be fingerprinted by a
  stable name.
"""

from repro.engine.cache import CacheStats, CurveCache, InMemoryResultCache, ResultCache
from repro.engine.diskcache import SqliteCurveCache, SqliteResultCache, default_cache_path
from repro.engine.executor import (
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    available_executors,
    get_executor,
)
from repro.engine.factories import (
    MLPFactory,
    available_model_factories,
    describe_factory,
    get_model_factory,
    register_model_factory,
)
from repro.engine.job import (
    JobResult,
    TrainingJob,
    fingerprint_dataset,
    run_training_job,
    stable_seed,
)

__all__ = [
    "CacheStats",
    "CurveCache",
    "Executor",
    "InMemoryResultCache",
    "JobResult",
    "MLPFactory",
    "ProcessPoolExecutor",
    "ResultCache",
    "SerialExecutor",
    "SqliteCurveCache",
    "SqliteResultCache",
    "TrainingJob",
    "available_executors",
    "default_cache_path",
    "available_model_factories",
    "describe_factory",
    "fingerprint_dataset",
    "get_executor",
    "get_model_factory",
    "register_model_factory",
    "run_training_job",
    "stable_seed",
]
