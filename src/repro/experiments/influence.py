"""The influence experiment of Figure 7 (Section 5.2 of the paper).

The paper grows one slice (``White_Male``, starting far smaller than the
rest) while holding the others fixed, retrains the model after each growth
step, and plots each other slice's change in loss ("influence") against the
change of the imbalance ratio.  The observations the experiment supports:

* the magnitude of influence grows with the imbalance-ratio change, and
* slices with *similar* data to the grown slice (``White_Female``) see their
  loss drop, while dissimilar slices see it rise.

``influence_experiment`` reproduces the protocol on any synthetic task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acquisition.source import GeneratorDataSource
from repro.curves.estimator import ModelFactory, default_model_factory
from repro.datasets.blueprints import SyntheticTask
from repro.ml.metrics import log_loss
from repro.ml.train import Trainer, TrainingConfig
from repro.slices.validation import imbalance_ratio
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RandomState, as_generator


@dataclass(frozen=True)
class InfluencePoint:
    """Influence of growing the target slice on one other slice at one step.

    Attributes
    ----------
    slice_name:
        The observed (non-target) slice.
    imbalance_change:
        Change of the imbalance ratio relative to the starting sizes.
    influence:
        Change in the observed slice's validation loss (positive = the slice
        got *worse* as the target grew).
    target_size:
        Size of the grown target slice at this step.
    """

    slice_name: str
    imbalance_change: float
    influence: float
    target_size: int


def influence_experiment(
    task: SyntheticTask,
    target_slice: str,
    base_size: int = 300,
    target_initial_size: int = 50,
    growth_steps: int = 6,
    growth_per_step: int = 250,
    validation_size: int = 200,
    trainer_config: TrainingConfig | None = None,
    model_factory: ModelFactory | None = None,
    n_repeats: int = 2,
    random_state: RandomState = None,
) -> list[InfluencePoint]:
    """Measure the influence of growing ``target_slice`` on the other slices.

    Parameters
    ----------
    task:
        The synthetic task (the paper uses UTKFace; ``faces_like_task()``
        here).
    target_slice:
        The slice that is grown (``White_Male`` in the paper).
    base_size:
        Initial size of every non-target slice.
    target_initial_size:
        Initial size of the target slice (much smaller, as in the paper).
    growth_steps / growth_per_step:
        How many growth steps to run and how many examples to add per step.
    n_repeats:
        Models trained (and averaged) per measurement to smooth training
        noise.

    Returns
    -------
    One :class:`InfluencePoint` per (step, non-target slice).
    """
    if target_slice not in task.slice_names:
        raise ConfigurationError(
            f"task {task.name!r} has no slice {target_slice!r}"
        )
    rng = as_generator(random_state)
    trainer_config = trainer_config or TrainingConfig()
    model_factory = model_factory or default_model_factory

    initial_sizes = {
        name: (target_initial_size if name == target_slice else base_size)
        for name in task.slice_names
    }
    sliced = task.initial_sliced_dataset(
        initial_sizes, validation_size=validation_size, random_state=rng
    )
    source = GeneratorDataSource(task, random_state=rng)
    observed = [name for name in task.slice_names if name != target_slice]

    def measure() -> dict[str, float]:
        losses = {name: [] for name in observed}
        for _ in range(n_repeats):
            model = model_factory(sliced.n_classes)
            Trainer(config=trainer_config, random_state=rng).fit(
                model, sliced.combined_train()
            )
            for name in observed:
                losses[name].append(log_loss(model, sliced[name].validation))
        return {name: float(np.mean(values)) for name, values in losses.items()}

    baseline_losses = measure()
    baseline_ratio = imbalance_ratio(sliced.sizes())

    points: list[InfluencePoint] = []
    for _ in range(growth_steps):
        sliced.add_examples(target_slice, source.acquire(target_slice, growth_per_step))
        current_losses = measure()
        ratio_change = imbalance_ratio(sliced.sizes()) - baseline_ratio
        for name in observed:
            points.append(
                InfluencePoint(
                    slice_name=name,
                    imbalance_change=float(ratio_change),
                    influence=float(current_losses[name] - baseline_losses[name]),
                    target_size=sliced[target_slice].size,
                )
            )
    return points


def influence_magnitude_by_step(points: list[InfluencePoint]) -> list[tuple[float, float]]:
    """Mean absolute influence per imbalance-change step (for trend checks)."""
    by_change: dict[float, list[float]] = {}
    for point in points:
        by_change.setdefault(point.imbalance_change, []).append(abs(point.influence))
    return [
        (change, float(np.mean(values)))
        for change, values in sorted(by_change.items())
    ]
