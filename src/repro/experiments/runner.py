"""Running and aggregating experiments.

``run_method`` executes one acquisition method on one freshly generated
instance of a dataset/scenario; ``compare_methods`` repeats that over several
independently seeded trials for every configured method and aggregates the
results into the mean/std statistics the paper reports (Tables 2, 6, 7, 9,
10 and Figure 10).

The (method, trial) grid is embarrassingly parallel — every cell builds its
own dataset, source, and tuner from ``config.seed + trial`` — so
``compare_methods`` and ``budget_sweep`` accept an
:class:`~repro.engine.executor.Executor` and fan the grid out across
workers.  Results are identical for every backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acquisition.source import GeneratorDataSource
from repro.core.registry import available_strategies, is_registered
from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.curves.estimator import ModelFactory, default_model_factory
from repro.datasets.registry import build_task
from repro.engine.executor import Executor, SerialExecutor
from repro.engine.factories import MLPFactory
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenarios import build_scenario
from repro.slices.sliced_dataset import SlicedDataset
from repro.utils.exceptions import ConfigurationError


@dataclass
class MethodOutcome:
    """Result of one method on one trial."""

    method: str
    trial: int
    loss: float
    avg_eer: float
    max_eer: float
    initial_loss: float
    initial_avg_eer: float
    initial_max_eer: float
    iterations: int
    spent: float
    acquired: dict[str, int] = field(default_factory=dict)


@dataclass
class MethodAggregate:
    """Mean/std statistics of one method over all trials."""

    method: str
    loss_mean: float
    loss_std: float
    avg_eer_mean: float
    avg_eer_std: float
    max_eer_mean: float
    max_eer_std: float
    iterations_mean: float
    spent_mean: float
    acquired_mean: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_outcomes(cls, outcomes: list[MethodOutcome]) -> "MethodAggregate":
        """Aggregate per-trial outcomes for one method."""
        if not outcomes:
            raise ConfigurationError("cannot aggregate zero outcomes")
        slice_names = outcomes[0].acquired.keys()
        return cls(
            method=outcomes[0].method,
            loss_mean=float(np.mean([o.loss for o in outcomes])),
            loss_std=float(np.std([o.loss for o in outcomes])),
            avg_eer_mean=float(np.mean([o.avg_eer for o in outcomes])),
            avg_eer_std=float(np.std([o.avg_eer for o in outcomes])),
            max_eer_mean=float(np.mean([o.max_eer for o in outcomes])),
            max_eer_std=float(np.std([o.max_eer for o in outcomes])),
            iterations_mean=float(np.mean([o.iterations for o in outcomes])),
            spent_mean=float(np.mean([o.spent for o in outcomes])),
            acquired_mean={
                name: float(np.mean([o.acquired.get(name, 0) for o in outcomes]))
                for name in slice_names
            },
        )


def _model_factory_for(config: ExperimentConfig) -> ModelFactory:
    """Pick the model family for an experiment (``extra["model"]``)."""
    model_kind = str(config.extra.get("model", "softmax")).lower()
    if model_kind == "softmax":
        return default_model_factory
    if model_kind == "mlp":
        hidden = tuple(config.extra.get("hidden_sizes", (32,)))
        # A picklable factory (not a lambda), so experiment grids using the
        # MLP can still fan out across process-pool workers.
        return MLPFactory(hidden_sizes=hidden, random_state=0)
    raise ConfigurationError(f"unknown model kind {model_kind!r}")


def prepare_instance(
    config: ExperimentConfig, seed: int
) -> tuple[SlicedDataset, GeneratorDataSource]:
    """Generate one fresh (sliced dataset, acquisition source) pair."""
    task = build_task(config.dataset, **config.extra.get("task_kwargs", {}))
    scenario = build_scenario(config.scenario)
    base_size = int(config.extra.get("base_size", 200))
    initial_sizes = scenario.initial_sizes(task, base_size)
    sliced = task.initial_sliced_dataset(
        initial_sizes,
        validation_size=config.validation_size,
        random_state=seed,
    )
    source = GeneratorDataSource(task, random_state=seed + 10_000)
    return sliced, source


def run_method(
    config: ExperimentConfig, method: str, trial: int
) -> MethodOutcome:
    """Run one method for one trial and measure loss/unfairness before/after."""
    seed = config.seed + trial
    sliced, source = prepare_instance(config, seed)
    tuner = SliceTuner(
        sliced=sliced,
        source=source,
        model_factory=_model_factory_for(config),
        trainer_config=config.training_config(),
        curve_config=config.curve_config(),
        config=SliceTunerConfig(
            lam=config.lam,
            min_slice_size=config.min_slice_size,
        ),
        random_state=seed + 20_000,
    )
    if method == "original":
        report = tuner.evaluate()
        return MethodOutcome(
            method="original",
            trial=trial,
            loss=report.loss,
            avg_eer=report.avg_eer,
            max_eer=report.max_eer,
            initial_loss=report.loss,
            initial_avg_eer=report.avg_eer,
            initial_max_eer=report.max_eer,
            iterations=0,
            spent=0.0,
            acquired={name: 0 for name in sliced.names},
        )

    result = tuner.run(config.budget, method=method, lam=config.lam, evaluate=True)
    return MethodOutcome(
        method=method,
        trial=trial,
        loss=result.final_report.loss,
        avg_eer=result.final_report.avg_eer,
        max_eer=result.final_report.max_eer,
        initial_loss=result.initial_report.loss,
        initial_avg_eer=result.initial_report.avg_eer,
        initial_max_eer=result.initial_report.max_eer,
        iterations=result.n_iterations,
        spent=result.spent,
        acquired=dict(result.total_acquired),
    )


def _run_method_cell(task: tuple[ExperimentConfig, str, int]) -> MethodOutcome:
    """One (method, trial) grid cell; module-level so it can cross processes."""
    config, method, trial = task
    return run_method(config, method, trial)


def compare_methods(
    config: ExperimentConfig,
    include_original: bool = True,
    executor: Executor | None = None,
) -> dict[str, MethodAggregate]:
    """Run every configured method over all trials and aggregate.

    Returns a mapping from method name to its aggregate; the pseudo-method
    ``"original"`` (no acquisition) is included when requested, as in the
    paper's tables.  The full (method, trial) grid is fanned out through
    ``executor`` (serial by default); every cell is independently seeded, so
    the aggregates do not depend on the backend.
    """
    methods = list(config.methods)
    if include_original and "original" not in methods:
        methods = ["original", *methods]
    unknown = [m for m in methods if m != "original" and not is_registered(m)]
    if unknown:
        raise ConfigurationError(
            f"unknown methods {unknown}; registered strategies: "
            f"{', '.join(available_strategies())}"
        )
    executor = executor or SerialExecutor()
    grid = [
        (config, method, trial)
        for method in methods
        for trial in range(config.trials)
    ]
    cells = executor.map(_run_method_cell, grid)
    outcomes: dict[str, list[MethodOutcome]] = {m: [] for m in methods}
    for (_, method, _), outcome in zip(grid, cells):
        outcomes[method].append(outcome)
    return {
        method: MethodAggregate.from_outcomes(results)
        for method, results in outcomes.items()
    }


def budget_sweep(
    config: ExperimentConfig,
    budgets: list[float],
    executor: Executor | None = None,
) -> dict[str, list[tuple[float, float, float]]]:
    """Loss and Avg. EER of every method at several budgets (Figure 10).

    Returns ``{method: [(budget, loss_mean, avg_eer_mean), ...]}``.  Each
    budget's method/trial grid fans out through ``executor``.
    """
    series: dict[str, list[tuple[float, float, float]]] = {
        method: [] for method in config.methods
    }
    for budget in budgets:
        sweep_config = ExperimentConfig(
            dataset=config.dataset,
            scenario=config.scenario,
            budget=float(budget),
            methods=config.methods,
            lam=config.lam,
            trials=config.trials,
            validation_size=config.validation_size,
            min_slice_size=config.min_slice_size,
            curve_points=config.curve_points,
            curve_repeats=config.curve_repeats,
            epochs=config.epochs,
            seed=config.seed,
            extra=dict(config.extra),
        )
        aggregates = compare_methods(
            sweep_config, include_original=False, executor=executor
        )
        for method in config.methods:
            aggregate = aggregates[method]
            series[method].append(
                (float(budget), aggregate.loss_mean, aggregate.avg_eer_mean)
            )
    return series
