"""Running and aggregating experiments.

``run_method`` executes one acquisition method on one freshly generated
instance of a dataset/scenario; ``compare_methods`` repeats that over several
independently seeded trials for every configured method and aggregates the
results into the mean/std statistics the paper reports (Tables 2, 6, 7, 9,
10 and Figure 10).

The (method, trial) grid is embarrassingly parallel — every cell builds its
own dataset, source, and tuner from ``config.seed + trial`` — so
``compare_methods`` and ``budget_sweep`` accept an
:class:`~repro.engine.executor.Executor` and fan the grid out across
workers.  Results are identical for every backend.

``campaign_suite`` is the durable counterpart: it runs several
heterogeneous campaigns (different datasets, scenarios, strategies, and
priorities) concurrently through a
:class:`~repro.campaigns.scheduler.CampaignScheduler` over one shared
engine executor, persisting every iteration to a
:class:`~repro.campaigns.store.CampaignStore` so the whole suite survives
a crash and resumes byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acquisition.crowdsourcing import CrowdsourcingSimulator
from repro.acquisition.providers import CompositeSource, ThrottledSource
from repro.acquisition.source import (
    DataSource,
    GeneratorDataSource,
    PoolDataSource,
)
from repro.core.registry import available_strategies, is_registered
from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.curves.estimator import ModelFactory, default_model_factory
from repro.datasets.registry import build_task
from repro.engine.executor import Executor, SerialExecutor
from repro.engine.factories import MLPFactory
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenarios import build_scenario
from repro.slices.sliced_dataset import SlicedDataset
from repro.utils.exceptions import ConfigurationError


@dataclass
class MethodOutcome:
    """Result of one method on one trial."""

    method: str
    trial: int
    loss: float
    avg_eer: float
    max_eer: float
    initial_loss: float
    initial_avg_eer: float
    initial_max_eer: float
    iterations: int
    spent: float
    acquired: dict[str, int] = field(default_factory=dict)


@dataclass
class MethodAggregate:
    """Mean/std statistics of one method over all trials."""

    method: str
    loss_mean: float
    loss_std: float
    avg_eer_mean: float
    avg_eer_std: float
    max_eer_mean: float
    max_eer_std: float
    iterations_mean: float
    spent_mean: float
    acquired_mean: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_outcomes(cls, outcomes: list[MethodOutcome]) -> "MethodAggregate":
        """Aggregate per-trial outcomes for one method."""
        if not outcomes:
            raise ConfigurationError("cannot aggregate zero outcomes")
        slice_names = outcomes[0].acquired.keys()
        return cls(
            method=outcomes[0].method,
            loss_mean=float(np.mean([o.loss for o in outcomes])),
            loss_std=float(np.std([o.loss for o in outcomes])),
            avg_eer_mean=float(np.mean([o.avg_eer for o in outcomes])),
            avg_eer_std=float(np.std([o.avg_eer for o in outcomes])),
            max_eer_mean=float(np.mean([o.max_eer for o in outcomes])),
            max_eer_std=float(np.std([o.max_eer for o in outcomes])),
            iterations_mean=float(np.mean([o.iterations for o in outcomes])),
            spent_mean=float(np.mean([o.spent for o in outcomes])),
            acquired_mean={
                name: float(np.mean([o.acquired.get(name, 0) for o in outcomes]))
                for name in slice_names
            },
        )


def _model_factory_for(config: ExperimentConfig) -> ModelFactory:
    """Pick the model family for an experiment (``extra["model"]``)."""
    model_kind = str(config.extra.get("model", "softmax")).lower()
    if model_kind == "softmax":
        return default_model_factory
    if model_kind == "mlp":
        hidden = tuple(config.extra.get("hidden_sizes", (32,)))
        # A picklable factory (not a lambda), so experiment grids using the
        # MLP can still fan out across process-pool workers.
        return MLPFactory(hidden_sizes=hidden, random_state=0)
    raise ConfigurationError(f"unknown model kind {model_kind!r}")


#: Source kinds :func:`build_sources` understands (CLI ``--source`` choices).
SOURCE_KINDS = ("generator", "pool", "mixed", "flaky", "crowdsourcing")


def build_sources(
    kind: str, task, seed: int, base_size: int = 200
) -> dict[str, DataSource]:
    """Build the named provider table for one experiment instance.

    Returns a mapping of provider name to source in priority order, ready
    for ``SliceTuner(sources=...)``:

    * ``"generator"`` — the paper's unlimited simulator (single provider).
    * ``"pool"`` — finite per-slice reserves (``4 * base_size`` each).
    * ``"mixed"`` — a small pool (``base_size // 2`` per slice) that drains
      mid-run, with the generator as failover.
    * ``"flaky"`` — the generator behind a
      :class:`~repro.acquisition.providers.ThrottledSource` capping every
      request at ``max(base_size // 3, 10)`` examples, so batches come back
      partially fulfilled.
    * ``"crowdsourcing"`` — the AMT-style simulator (mistakes, duplicates,
      task timing) over the generator.

    All randomness derives from ``seed``, so two calls with the same
    arguments build byte-identical tables.
    """
    kind = str(kind).lower()
    generator = GeneratorDataSource(task, random_state=seed)
    if kind == "generator":
        return {"generator": generator}
    if kind == "pool":
        return {"pool": _pool_source(task, seed, per_slice=base_size * 4)}
    if kind == "mixed":
        pool = _pool_source(task, seed, per_slice=max(base_size // 2, 10))
        return {"pool": pool, "generator": generator}
    if kind == "flaky":
        throttled = ThrottledSource(
            generator,
            per_request_cap=max(base_size // 3, 10),
            latency_per_example=0.1,
        )
        return {"throttled_generator": throttled}
    if kind == "crowdsourcing":
        task_seconds = {
            name: 1.0 + 0.25 * index
            for index, name in enumerate(task.slice_names)
        }
        simulator = CrowdsourcingSimulator(
            generator, task_seconds=task_seconds, random_state=seed + 1
        )
        return {"crowdsourcing": simulator}
    raise ConfigurationError(
        f"unknown source kind {kind!r}; available: {SOURCE_KINDS}"
    )


def _pool_source(task, seed: int, per_slice: int) -> PoolDataSource:
    """Finite per-slice reserve pools generated deterministically from ``seed``."""
    pools = {
        name: task.generate(name, per_slice, random_state=seed + 100 + index)
        for index, name in enumerate(task.slice_names)
    }
    return PoolDataSource(pools, random_state=seed + 99)


def _source_kind_for(config: ExperimentConfig) -> str:
    """The source kind in force: ``extra["source"]`` overrides the scenario's."""
    scenario = build_scenario(config.scenario)
    return str(config.extra.get("source", scenario.source_kind))


def discovery_for(config: ExperimentConfig) -> tuple[str | None, int]:
    """The (discover, reslice_every) pair in force for an experiment.

    ``extra["discover"]`` / ``extra["reslice_every"]`` override the
    scenario's defaults, mirroring how ``extra["source"]`` overrides
    ``scenario.source_kind``.
    """
    scenario = build_scenario(config.scenario)
    discover = config.extra.get("discover", scenario.discover)
    if discover is not None:
        discover = str(discover)
    default_every = scenario.reslice_every if discover == scenario.discover else 2
    reslice_every = int(config.extra.get("reslice_every", default_every))
    return discover, reslice_every


def prepare_named_instance(
    config: ExperimentConfig, seed: int
) -> tuple[SlicedDataset, dict[str, DataSource]]:
    """Generate one fresh (sliced dataset, named provider table) pair."""
    task = build_task(config.dataset, **config.extra.get("task_kwargs", {}))
    scenario = build_scenario(config.scenario)
    base_size = int(config.extra.get("base_size", 200))
    initial_sizes = scenario.initial_sizes(task, base_size)
    sliced = task.initial_sliced_dataset(
        initial_sizes,
        validation_size=config.validation_size,
        random_state=seed,
    )
    sources = build_sources(
        _source_kind_for(config), task, seed=seed + 10_000, base_size=base_size
    )
    return sliced, sources


def prepare_instance(
    config: ExperimentConfig, seed: int
) -> tuple[SlicedDataset, DataSource]:
    """Generate one fresh (sliced dataset, acquisition source) pair.

    Single-source facade over :func:`prepare_named_instance`: a one-provider
    table returns the provider itself (for the paper's scenarios this is the
    same :class:`~repro.acquisition.source.GeneratorDataSource` as always);
    a multi-provider table is wrapped in a
    :class:`~repro.acquisition.providers.CompositeSource` honouring the
    priority order.
    """
    sliced, sources = prepare_named_instance(config, seed)
    if len(sources) == 1:
        return sliced, next(iter(sources.values()))
    return sliced, CompositeSource(sources)


def run_method(
    config: ExperimentConfig, method: str, trial: int
) -> MethodOutcome:
    """Run one method for one trial and measure loss/unfairness before/after."""
    seed = config.seed + trial
    sliced, sources = prepare_named_instance(config, seed)
    discover, reslice_every = discovery_for(config)
    tuner = SliceTuner(
        sliced=sliced,
        model_factory=_model_factory_for(config),
        trainer_config=config.training_config(),
        curve_config=config.curve_config(),
        config=SliceTunerConfig(
            lam=config.lam,
            min_slice_size=config.min_slice_size,
            acquisition_rounds=int(config.extra.get("acquisition_rounds", 1)),
            discover=discover,
            reslice_every=reslice_every if discover is not None else 0,
        ),
        random_state=seed + 20_000,
        sources=sources,
    )
    if method == "original":
        report = tuner.evaluate()
        return MethodOutcome(
            method="original",
            trial=trial,
            loss=report.loss,
            avg_eer=report.avg_eer,
            max_eer=report.max_eer,
            initial_loss=report.loss,
            initial_avg_eer=report.avg_eer,
            initial_max_eer=report.max_eer,
            iterations=0,
            spent=0.0,
            acquired={name: 0 for name in sliced.names},
        )

    result = tuner.run(config.budget, method=method, lam=config.lam, evaluate=True)
    return MethodOutcome(
        method=method,
        trial=trial,
        loss=result.final_report.loss,
        avg_eer=result.final_report.avg_eer,
        max_eer=result.final_report.max_eer,
        initial_loss=result.initial_report.loss,
        initial_avg_eer=result.initial_report.avg_eer,
        initial_max_eer=result.initial_report.max_eer,
        iterations=result.n_iterations,
        spent=result.spent,
        acquired=dict(result.total_acquired),
    )


def _run_method_cell(task: tuple[ExperimentConfig, str, int]) -> MethodOutcome:
    """One (method, trial) grid cell; module-level so it can cross processes."""
    config, method, trial = task
    return run_method(config, method, trial)


def compare_methods(
    config: ExperimentConfig,
    include_original: bool = True,
    executor: Executor | None = None,
) -> dict[str, MethodAggregate]:
    """Run every configured method over all trials and aggregate.

    Returns a mapping from method name to its aggregate; the pseudo-method
    ``"original"`` (no acquisition) is included when requested, as in the
    paper's tables.  The full (method, trial) grid is fanned out through
    ``executor`` (serial by default); every cell is independently seeded, so
    the aggregates do not depend on the backend.
    """
    methods = list(config.methods)
    if include_original and "original" not in methods:
        methods = ["original", *methods]
    unknown = [m for m in methods if m != "original" and not is_registered(m)]
    if unknown:
        raise ConfigurationError(
            f"unknown methods {unknown}; registered strategies: "
            f"{', '.join(available_strategies())}"
        )
    executor = executor or SerialExecutor()
    grid = [
        (config, method, trial)
        for method in methods
        for trial in range(config.trials)
    ]
    cells = executor.map(_run_method_cell, grid)
    outcomes: dict[str, list[MethodOutcome]] = {m: [] for m in methods}
    for (_, method, _), outcome in zip(grid, cells):
        outcomes[method].append(outcome)
    return {
        method: MethodAggregate.from_outcomes(results)
        for method, results in outcomes.items()
    }


def default_campaign_specs(seed: int = 0) -> tuple:
    """The builtin ``campaign_suite`` workload: 3 heterogeneous campaigns.

    The three campaigns differ along every axis the scheduler multiplexes:
    dataset (4-slice adult vs 8-slice faces), scenario/source (unlimited
    generator vs a draining pool with generator failover), strategy
    (iterative curve-based vs one-shot baseline), priority lane, and
    whether before/after evaluation reports are attached.  Sized to finish
    in seconds so the suite doubles as the CI crash/resume smoke workload.
    """
    from repro.campaigns import CampaignSpec

    return (
        CampaignSpec(
            name="adult-moderate",
            dataset="adult_like",
            scenario="basic",
            method="moderate",
            budget=600.0,
            seed=seed,
            base_size=50,
            validation_size=50,
            epochs=8,
            curve_points=3,
            evaluate=True,
            priority=1,
        ),
        CampaignSpec(
            name="adult-mixed-conservative",
            dataset="adult_like",
            scenario="mixed_sources",
            method="conservative",
            budget=400.0,
            seed=seed + 1,
            base_size=50,
            validation_size=50,
            epochs=8,
            curve_points=3,
            priority=0,
        ),
        CampaignSpec(
            name="faces-uniform",
            dataset="faces_like",
            scenario="basic",
            method="uniform",
            budget=200.0,
            seed=seed + 2,
            base_size=30,
            validation_size=40,
            epochs=8,
            curve_points=3,
            priority=0,
        ),
    )


def campaign_suite(
    store=None,
    specs=None,
    executor: Executor | None = None,
    on_progress=None,
    seed: int = 0,
):
    """Run several heterogeneous campaigns concurrently over one engine.

    Every campaign persists its event log and snapshots into ``store`` (an
    in-memory store by default — pass a
    :class:`~repro.campaigns.store.SqliteStore` for durability), so a
    killed suite resumes where it left off: re-running ``campaign_suite``
    against the same store deduplicates completed campaigns by content
    fingerprint and continues unfinished ones from their latest snapshot.

    Returns ``{campaign name: TuningResult}`` (suite specs must therefore
    carry unique names; the scheduler itself keys by campaign id).  With a
    serial executor the results are byte-identical to running each campaign
    on its own.
    """
    from repro.campaigns import CampaignScheduler

    scheduler = CampaignScheduler(
        store=store, executor=executor, on_progress=on_progress
    )
    specs = list(specs) if specs is not None else list(default_campaign_specs(seed))
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ConfigurationError(
            f"campaign_suite specs need unique names, got {names}"
        )
    campaigns = [scheduler.add(spec) for spec in specs]
    by_id = scheduler.run()
    return {
        campaign.spec.name: by_id[campaign.campaign_id] for campaign in campaigns
    }


def budget_sweep(
    config: ExperimentConfig,
    budgets: list[float],
    executor: Executor | None = None,
) -> dict[str, list[tuple[float, float, float]]]:
    """Loss and Avg. EER of every method at several budgets (Figure 10).

    Returns ``{method: [(budget, loss_mean, avg_eer_mean), ...]}``.  Each
    budget's method/trial grid fans out through ``executor``.
    """
    series: dict[str, list[tuple[float, float, float]]] = {
        method: [] for method in config.methods
    }
    for budget in budgets:
        sweep_config = ExperimentConfig(
            dataset=config.dataset,
            scenario=config.scenario,
            budget=float(budget),
            methods=config.methods,
            lam=config.lam,
            trials=config.trials,
            validation_size=config.validation_size,
            min_slice_size=config.min_slice_size,
            curve_points=config.curve_points,
            curve_repeats=config.curve_repeats,
            epochs=config.epochs,
            seed=config.seed,
            extra=dict(config.extra),
        )
        aggregates = compare_methods(
            sweep_config, include_original=False, executor=executor
        )
        for method in config.methods:
            aggregate = aggregates[method]
            series[method].append(
                (float(budget), aggregate.loss_mean, aggregate.avg_eer_mean)
            )
    return series
