"""Rendering experiment results as the paper's tables and figure series.

Beyond the paper's tables, :func:`engine_cache_stats` /
:func:`cache_stats_table` surface the execution engine's cache
effectiveness — result-cache and curve-cache hit rates plus the honest
training counter — so warm re-runs and campaign resumes are measurable
instead of anecdotal.  :func:`server_stats_table` /
:func:`server_status_line` do the same for the tuner service daemon:
requests served, campaigns by lifecycle state, events streamed, and the
shared training cache, rendered from the ``GET /stats`` payload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from repro.engine.cache import CacheStats
from repro.experiments.runner import MethodAggregate
from repro.utils.tables import format_series, format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tuner import SliceTuner


def methods_table(
    aggregates: Mapping[str, MethodAggregate],
    title: str = "",
    method_order: Sequence[str] | None = None,
) -> str:
    """Table 2 / Table 7 / Table 9 / Table 10 style: Loss and Avg/Max EER per method."""
    order = list(method_order) if method_order else list(aggregates)
    rows = []
    for method in order:
        aggregate = aggregates[method]
        rows.append(
            [
                method,
                f"{aggregate.loss_mean:.3f} ± {aggregate.loss_std:.3f}",
                f"{aggregate.avg_eer_mean:.3f} / {aggregate.max_eer_mean:.3f}",
                f"{aggregate.iterations_mean:.1f}",
            ]
        )
    return format_table(
        headers=["Method", "Loss", "Avg./Max. EER", "# Iterations"],
        rows=rows,
        title=title,
    )


def allocations_table(
    aggregates: Mapping[str, MethodAggregate],
    slice_names: Sequence[str],
    title: str = "",
    method_order: Sequence[str] | None = None,
) -> str:
    """Table 3 / Table 5 / Table 11 style: mean examples acquired per slice."""
    order = list(method_order) if method_order else list(aggregates)
    rows = []
    for method in order:
        aggregate = aggregates[method]
        rows.append(
            [method]
            + [f"{aggregate.acquired_mean.get(name, 0.0):.0f}" for name in slice_names]
            + [f"{aggregate.iterations_mean:.1f}"]
        )
    return format_table(
        headers=["Method", *slice_names, "# Iters"],
        rows=rows,
        title=title,
    )


def comparison_table(
    per_setting: Mapping[str, Mapping[str, MethodAggregate]],
    methods: Sequence[str],
    title: str = "",
) -> str:
    """Table 6 style: methods as rows, settings as column groups."""
    headers = ["Method"]
    for setting in per_setting:
        headers.extend([f"{setting}: Loss", f"{setting}: Avg. EER"])
    rows = []
    for method in methods:
        row: list[object] = [method]
        for setting, aggregates in per_setting.items():
            aggregate = aggregates[method]
            row.append(f"{aggregate.loss_mean:.3f} ± {aggregate.loss_std:.3f}")
            row.append(f"{aggregate.avg_eer_mean:.3f} ± {aggregate.avg_eer_std:.3f}")
        rows.append(row)
    return format_table(headers=headers, rows=rows, title=title)


def engine_cache_stats(tuner: "SliceTuner") -> dict[str, CacheStats]:
    """The engine caches a tuner is running with, keyed by a display name.

    Covers the executor's content-addressed result cache (when attached)
    and the estimator's per-slice curve cache (when
    ``incremental_curves=True``).  Returns an empty mapping when the tuner
    runs cache-less.
    """
    stats: dict[str, CacheStats] = {}
    if tuner.executor.cache is not None:
        stats["results"] = tuner.executor.cache.stats
    if tuner.estimator.curve_cache is not None:
        stats["curves"] = tuner.estimator.curve_cache.stats
    return stats


def cache_stats_table(
    stats: Mapping[str, CacheStats],
    title: str = "Engine cache effectiveness",
    trainings_performed: int | None = None,
) -> str:
    """Hit/miss statistics of the engine caches as an aligned text table.

    ``trainings_performed`` (the estimator's honest counter — cache-served
    jobs never inflate it) is appended to the title when given, so one
    table answers both "how often did the cache help" and "how much work
    actually ran".
    """
    if trainings_performed is not None:
        title = f"{title} — {trainings_performed} trainings performed"
    rows = [
        [
            name,
            cache.requests,
            cache.hits,
            cache.misses,
            f"{cache.hit_rate:.0%}",
            cache.evictions,
        ]
        for name, cache in stats.items()
    ]
    if not rows:
        rows = [["(no caches attached)", 0, 0, 0, "0%", 0]]
    return format_table(
        headers=["cache", "lookups", "hits", "misses", "hit rate", "evictions"],
        rows=rows,
        title=title,
    )


#: ``/stats`` keys rendered by :func:`server_stats_table`, in display order,
#: with their human-readable row labels.
_SERVER_STAT_ROWS = (
    ("uptime_seconds", "uptime (s)"),
    ("requests", "HTTP requests"),
    ("errors", "request errors"),
    ("campaigns_submitted", "campaigns submitted"),
    ("campaigns_total", "campaigns stored"),
    ("campaigns_active", "campaigns active"),
    ("campaigns_completed", "campaigns completed"),
    ("campaigns_paused", "campaigns paused"),
    ("campaigns_failed", "campaigns failed"),
    ("scheduler_steps", "scheduler steps"),
    ("pump_running", "pump running"),
    ("pump_errors", "pump errors"),
    ("sse_connections", "event streams opened"),
    ("events_streamed", "events streamed"),
    ("reports_served", "analytics reports served"),
)


def server_stats_table(
    stats: Mapping[str, object], title: str = "Tuner service health"
) -> str:
    """The daemon's ``GET /stats`` payload as an aligned two-column table.

    Renders the known scheduler/server health counters in a stable order
    (unknown keys are ignored, missing ones skipped, so the table tolerates
    older and newer daemons), and appends the shared training-cache line
    when the payload carries one.
    """
    rows: list[list[object]] = [
        [label, stats[key]] for key, label in _SERVER_STAT_ROWS if key in stats
    ]
    cache = stats.get("cache")
    if isinstance(cache, Mapping):
        rows.append(
            [
                "shared result cache",
                f"{cache.get('hits', 0)}/{cache.get('requests', 0)} hits",
            ]
        )
    return format_table(headers=["metric", "value"], rows=rows, title=title)


def server_status_line(stats: Mapping[str, object]) -> str:
    """One ``--quiet``-compatible line summarizing daemon health."""
    return (
        f"up {float(stats.get('uptime_seconds', 0.0)):.0f}s — "
        f"{stats.get('campaigns_active', 0)} active / "
        f"{stats.get('campaigns_total', 0)} stored campaign(s), "
        f"{stats.get('requests', 0)} request(s), "
        f"{stats.get('events_streamed', 0)} event(s) streamed"
    )


def _report_cell(value: object) -> object:
    """Human-friendly rendering of one analytics report cell."""
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.4g}"
    return value


def report_tables(payload: Mapping[str, object]) -> str:
    """A ``repro.report/1`` payload as aligned text tables, one per section.

    The payload is exactly what :meth:`Analytics.report
    <repro.analytics.refresh.Analytics.report>` builds (and ``--json``
    prints verbatim); this renderer only formats — floats to four
    significant digits, ``None`` as ``—`` — so the JSON stays the
    machine-readable source of truth.
    """
    sections = payload.get("sections")
    blocks: list[str] = []
    if isinstance(sections, Mapping):
        for name, section in sections.items():
            if not isinstance(section, Mapping):
                continue
            columns = [str(c) for c in section.get("columns", [])]
            rows = [
                [_report_cell(cell) for cell in row]
                for row in section.get("rows", [])
            ]
            if not rows:
                rows = [["(no rows)"] + [""] * (len(columns) - 1)]
            title = f"{name} — {section.get('doc', '')}".rstrip(" —")
            blocks.append(format_table(headers=columns, rows=rows, title=title))
    scope = payload.get("campaign_id") or "all campaigns"
    header = (
        f"report: {payload.get('report', '?')} ({scope}) "
        f"— through event seq {payload.get('cursor', 0)}"
    )
    return "\n\n".join([header] + blocks)


def series_text(
    series: Mapping[str, Sequence[tuple[float, float]]],
    x_label: str,
    y_label: str,
    title: str = "",
) -> str:
    """Figure 7 / 8 / 9 / 10 / 11 style: named line series rendered as text."""
    return format_series(series, x_label=x_label, y_label=y_label, title=title)
