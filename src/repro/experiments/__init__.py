"""Experiment harness reproducing the paper's evaluation (Section 6).

* :mod:`~repro.experiments.config` — experiment configuration (dataset,
  scenario, budget, methods, trials, speed knobs).
* :mod:`~repro.experiments.scenarios` — the paper's settings: Basic,
  Bad-for-Uniform, Bad-for-Water-filling, exponential initial sizes, and the
  small-slice (unreliable curves) setting.
* :mod:`~repro.experiments.runner` — runs methods over trials and aggregates
  loss / Avg. EER / Max. EER / iterations / per-slice acquisitions.
* :mod:`~repro.experiments.influence` — the Figure 7 influence experiment.
* :mod:`~repro.experiments.reporting` — renders results as the paper's
  tables and figure series.
"""

from repro.experiments.config import ExperimentConfig, fast_training_config
from repro.experiments.influence import InfluencePoint, influence_experiment
from repro.experiments.runner import (
    MethodAggregate,
    MethodOutcome,
    compare_methods,
    run_method,
)
from repro.experiments.scenarios import Scenario, build_scenario, list_scenarios
from repro.experiments.reporting import (
    comparison_table,
    methods_table,
    series_text,
)

__all__ = [
    "ExperimentConfig",
    "fast_training_config",
    "Scenario",
    "build_scenario",
    "list_scenarios",
    "MethodOutcome",
    "MethodAggregate",
    "run_method",
    "compare_methods",
    "InfluencePoint",
    "influence_experiment",
    "methods_table",
    "comparison_table",
    "series_text",
]
