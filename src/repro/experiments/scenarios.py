"""Experimental scenarios: how the initial slice sizes are chosen.

The paper evaluates three settings in Table 6 — a *basic* setting where
slices start with equal amounts of data, a setting *pathological for Uniform*
(many slices already have low loss), and a setting *pathological for Water
filling* (a large slice with high loss and a small slice with low loss) —
plus the Appendix C setting where initial sizes follow an exponential
distribution and the Section 6.3.4 setting with very small slices.

A :class:`Scenario` turns a synthetic task into the mapping of initial sizes
per slice.  Difficulty information (the blueprint noise) identifies "high
loss" and "low loss" slices for the pathological settings.

Scenarios also carry a *source kind* — which acquisition setup the
experiment runner should build (see
:func:`repro.experiments.runner.build_sources`).  The paper's settings all
use the unlimited ``"generator"``; the service-layer scenarios exercise the
multi-source router instead:

* ``mixed_sources`` — a finite per-slice pool that drains mid-run, with the
  generator as failover: fulfillments start on the pool and hand over to
  the generator, exercising :class:`~repro.acquisition.providers.
  CompositeSource`-style priority routing.
* ``flaky_source`` — a :class:`~repro.acquisition.providers.ThrottledSource`
  capping every request, so each batch comes back partially fulfilled and
  the router must retry across rounds.

Finally, the *dynamic* scenarios exercise slice discovery: they carry a
``discover`` method name and a ``reslice_every`` cadence, so the tuner
re-runs discovery mid-run and swaps to the discovered slices (see
:mod:`repro.slices.discovery`):

* ``dynamic_slices`` — exponential initial sizes with periodic error
  k-means re-slicing.
* ``drifting_slices`` — skewed initial sizes with periodic error-stump
  re-slicing, modelling boundaries that drift as data accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datasets.blueprints import SyntheticTask, exponential_initial_sizes
from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class Scenario:
    """A named rule producing initial slice sizes for a task.

    Attributes
    ----------
    name:
        Scenario name.
    description:
        What the scenario stresses (used in reports).
    sizer:
        Callable ``(task, base_size) -> {slice_name: initial_size}``.
    source_kind:
        Which acquisition setup the experiment runner builds for the
        scenario (see :func:`repro.experiments.runner.build_sources`);
        ``"generator"`` reproduces the paper's unlimited simulator.
    discover:
        Name of a registered slice-discovery method the tuner should
        re-run mid-campaign (``None`` keeps the task's static slices).
    reslice_every:
        Iteration cadence for re-running discovery (0 disables it; must
        be >= 1 when ``discover`` is set).
    """

    name: str
    description: str
    sizer: Callable[[SyntheticTask, int], dict[str, int]]
    source_kind: str = "generator"
    discover: str | None = None
    reslice_every: int = 0

    def initial_sizes(self, task: SyntheticTask, base_size: int) -> dict[str, int]:
        """Initial sizes for ``task`` with the scenario's rule."""
        sizes = self.sizer(task, int(base_size))
        missing = set(task.slice_names) - set(sizes)
        if missing:
            raise ConfigurationError(
                f"scenario {self.name!r} did not size slices {sorted(missing)}"
            )
        return sizes


# -- sizing rules ------------------------------------------------------------------

def _equal_sizes(task: SyntheticTask, base_size: int) -> dict[str, int]:
    return {name: base_size for name in task.slice_names}


def _difficulty_order(task: SyntheticTask) -> list[str]:
    """Slice names sorted from easiest (lowest noise) to hardest."""
    return sorted(task.slice_names, key=lambda name: task.blueprint(name).noise)


def _bad_for_uniform(task: SyntheticTask, base_size: int) -> dict[str, int]:
    """Many slices already have plenty of data (low loss), a few are starved.

    Uniform then wastes most of its budget on slices that no longer benefit.
    """
    by_difficulty = _difficulty_order(task)
    n = len(by_difficulty)
    n_starved = max(1, n // 4)
    starved = set(by_difficulty[-n_starved:])  # the hardest few slices
    sizes = {}
    for name in task.slice_names:
        sizes[name] = base_size // 4 if name in starved else base_size * 2
    return sizes


def _bad_for_water_filling(task: SyntheticTask, base_size: int) -> dict[str, int]:
    """A large slice with high loss and small slices with low loss.

    Water filling pours the budget into the small easy slices (to equalize
    sizes) even though they do not need data, while the big hard slice keeps
    its high loss.
    """
    by_difficulty = _difficulty_order(task)
    hardest = by_difficulty[-1]
    easiest = set(by_difficulty[: max(1, len(by_difficulty) // 3)])
    sizes = {}
    for name in task.slice_names:
        if name == hardest:
            sizes[name] = base_size * 3
        elif name in easiest:
            sizes[name] = base_size // 3
        else:
            sizes[name] = base_size
    return sizes


def _exponential(task: SyntheticTask, base_size: int) -> dict[str, int]:
    return exponential_initial_sizes(
        task.slice_names, largest=base_size * 2, decay=0.85, minimum=max(base_size // 5, 10)
    )


def _small_slices(task: SyntheticTask, base_size: int) -> dict[str, int]:
    """Very small slices, so learning curves are noisy (Section 6.3.4)."""
    return {name: max(base_size // 6, 15) for name in task.slice_names}


_SCENARIOS: dict[str, Scenario] = {
    "basic": Scenario(
        name="basic",
        description="all slices start with the same amount of data",
        sizer=_equal_sizes,
    ),
    "bad_for_uniform": Scenario(
        name="bad_for_uniform",
        description="most slices already have low loss; Uniform wastes budget",
        sizer=_bad_for_uniform,
    ),
    "bad_for_water_filling": Scenario(
        name="bad_for_water_filling",
        description="a large hard slice and small easy slices; Water filling wastes budget",
        sizer=_bad_for_water_filling,
    ),
    "exponential": Scenario(
        name="exponential",
        description="initial sizes follow an exponential distribution (Appendix C)",
        sizer=_exponential,
    ),
    "small_slices": Scenario(
        name="small_slices",
        description="tiny slices with unreliable learning curves (Section 6.3.4)",
        sizer=_small_slices,
    ),
    "mixed_sources": Scenario(
        name="mixed_sources",
        description=(
            "equal initial sizes served by a draining pool with generator "
            "failover (multi-source routing)"
        ),
        sizer=_equal_sizes,
        source_kind="mixed",
    ),
    "flaky_source": Scenario(
        name="flaky_source",
        description=(
            "equal initial sizes served by a throttled source that caps "
            "every request (partial fulfillments + retries)"
        ),
        sizer=_equal_sizes,
        source_kind="flaky",
    ),
    "dynamic_slices": Scenario(
        name="dynamic_slices",
        description=(
            "exponential initial sizes with periodic error k-means "
            "re-slicing (slice boundaries discovered from the model)"
        ),
        sizer=_exponential,
        discover="kmeans",
        reslice_every=2,
    ),
    "drifting_slices": Scenario(
        name="drifting_slices",
        description=(
            "skewed initial sizes with periodic error-stump re-slicing "
            "(boundaries drift as acquired data accumulates)"
        ),
        sizer=_bad_for_water_filling,
        discover="stump",
        reslice_every=2,
    ),
}


def list_scenarios() -> list[str]:
    """Names of all available scenarios."""
    return sorted(_SCENARIOS)


def build_scenario(name: str) -> Scenario:
    """Return the scenario registered under ``name``."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {list_scenarios()}"
        ) from None
