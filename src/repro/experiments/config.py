"""Experiment configuration.

The paper's experiments differ along a small number of axes: the dataset, the
initial slice sizes (equal, exponential, or pathological), the budget, the
methods compared, lambda, and the number of trials.  :class:`ExperimentConfig`
captures those, plus speed knobs (training epochs, validation-set size,
learning-curve points) so the same harness scales from quick unit tests to
the full benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.curves.estimator import CurveEstimationConfig
from repro.ml.train import TrainingConfig
from repro.utils.exceptions import ConfigurationError


def fast_training_config(epochs: int = 40, batch_size: int = 32) -> TrainingConfig:
    """A training configuration tuned for the benchmark harness.

    Adam with a moderate learning rate converges on the synthetic substrates
    well within ``epochs`` passes; the configuration is fixed once per
    experiment exactly like the paper fixes hyperparameters per dataset.
    """
    return TrainingConfig(
        epochs=epochs,
        batch_size=batch_size,
        optimizer="adam",
        learning_rate=0.02,
    )


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one experiment (one table row group or figure).

    Attributes
    ----------
    dataset:
        Registered dataset name (``"fashion_like"``, ``"mixed_like"``,
        ``"faces_like"``, ``"adult_like"``).
    scenario:
        Scenario name (see :mod:`repro.experiments.scenarios`).
    budget:
        Data acquisition budget ``B``.
    methods:
        The methods to compare.
    lam:
        Loss/unfairness trade-off weight.
    trials:
        Number of independently-seeded repetitions; reported values are means
        over trials, as in the paper.
    validation_size:
        Held-out validation examples per slice.
    min_slice_size:
        The paper's ``L`` for the iterative algorithms.
    curve_points / curve_repeats:
        Learning-curve estimation budget (``K`` and number of averaged
        curves).
    epochs:
        Training epochs per model fit.
    seed:
        Base random seed; trial ``t`` uses ``seed + t``.
    """

    dataset: str = "fashion_like"
    scenario: str = "basic"
    budget: float = 2000.0
    methods: tuple[str, ...] = ("uniform", "water_filling", "moderate")
    lam: float = 1.0
    trials: int = 3
    validation_size: int = 200
    min_slice_size: int = 0
    curve_points: int = 6
    curve_repeats: int = 1
    epochs: int = 40
    seed: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ConfigurationError(f"budget must be >= 0, got {self.budget}")
        if self.trials <= 0:
            raise ConfigurationError(f"trials must be positive, got {self.trials}")
        if not self.methods:
            raise ConfigurationError("at least one method must be configured")

    def training_config(self) -> TrainingConfig:
        """The fixed training configuration for this experiment."""
        return fast_training_config(epochs=self.epochs)

    def curve_config(self, strategy: str = "amortized") -> CurveEstimationConfig:
        """The learning-curve estimation configuration for this experiment."""
        return CurveEstimationConfig(
            n_points=self.curve_points,
            n_repeats=self.curve_repeats,
            strategy=strategy,
        )
