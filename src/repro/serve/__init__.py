"""The tuner service daemon: a multi-client HTTP layer over campaigns.

The serve subsystem turns the library into a long-running, multi-tenant
service.  It is stdlib-only (``http.server`` + ``urllib``) and adds four
pieces on top of the campaign subsystem:

* :mod:`repro.serve.app` — :class:`TunerService`, one shared
  :class:`~repro.campaigns.scheduler.CampaignScheduler` (background pump) +
  :class:`~repro.campaigns.store.CampaignStore` behind a thread-safe
  facade, with request/stream statistics and a graceful drain that
  checkpoints every running campaign;
* :mod:`repro.serve.server` — :class:`TunerServer`, a
  ``ThreadingHTTPServer`` JSON API (submit/list/show/pause/resume/result)
  plus the Server-Sent-Events endpoint;
* :mod:`repro.serve.stream` — SSE framing and the replay-then-tail event
  generator (resume from any ``Last-Event-ID`` cursor, exactly like
  :func:`~repro.campaigns.store.replay_events`);
* :mod:`repro.serve.client` — :class:`TunerClient`, the ``urllib``-based
  client the CLI ``remote`` commands and the tests drive the daemon with.
"""

from repro.serve.app import ServerStats, TunerService
from repro.serve.client import TunerClient
from repro.serve.server import TunerServer
from repro.serve.stream import format_sse_event, parse_sse_stream

__all__ = [
    "ServerStats",
    "TunerClient",
    "TunerServer",
    "TunerService",
    "format_sse_event",
    "parse_sse_stream",
]
