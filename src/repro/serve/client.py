"""``urllib``-based client for the tuner service daemon.

:class:`TunerClient` mirrors the HTTP API one method per endpoint and is
what the CLI ``remote`` commands, the CI serve-smoke job, and the tests
drive the daemon with.  Highlights:

* **Error mapping** — HTTP error responses (and unreachable daemons) raise
  :class:`~repro.utils.exceptions.ServeError` carrying the server's message
  and status code, so the CLI's ``ReproError -> exit 2`` convention covers
  remote failures too.
* **Cursor-aware tailing** — :meth:`TunerClient.tail` parses the SSE stream
  into plain dicts and tracks :attr:`last_event_id`; after a disconnect,
  calling ``tail`` again resumes from the cursor (``Last-Event-ID``), and
  the concatenated frames equal one uninterrupted replay of the log.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from typing import Any, Iterator, Mapping

from repro.campaigns.store import COMPLETED, FAILED
from repro.serve.stream import END_EVENT, parse_sse_stream
from repro.utils.exceptions import ServeError


class TunerClient:
    """Client for one tuner service daemon.

    Parameters
    ----------
    base_url:
        E.g. ``http://127.0.0.1:8731`` (a trailing slash is fine).
    timeout:
        Socket timeout in seconds for every request.  Streaming reads are
        also bounded by it; the server's idle heartbeats (every ~2s) keep
        healthy streams well under any sane value.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        #: Sequence number of the last persisted event seen by :meth:`tail`.
        self.last_event_id = 0

    # -- plumbing ----------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None = None,
        headers: Mapping[str, str] | None = None,
        stream: bool = False,
    ):
        data = None
        request_headers = {"Accept": "application/json", **(headers or {})}
        if body is not None:
            data = json.dumps(dict(body)).encode("utf-8")
            request_headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=request_headers, method=method
        )
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as error:
            detail = ""
            parsed = None
            try:
                parsed = json.loads(error.read().decode("utf-8"))
                if isinstance(parsed, dict):
                    detail = parsed.get("error", "")
            except Exception:  # noqa: BLE001 - best-effort message extraction
                pass
            served = ServeError(
                f"{method} {path} failed with HTTP {error.code}"
                + (f": {detail}" if detail else "")
            )
            served.status = error.code  # type: ignore[attr-defined]
            served.body = parsed  # type: ignore[attr-defined]
            raise served from None
        except (urllib.error.URLError, socket.timeout, OSError) as error:
            raise ServeError(
                f"cannot reach the tuner service at {self.base_url}: {error}"
            ) from None
        if stream:
            return response
        with response:
            return json.loads(response.read().decode("utf-8"))

    # -- health and stats --------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """``GET /health``."""
        return self._request("GET", "/health")

    def wait_ready(self, timeout: float = 10.0, poll: float = 0.1) -> dict[str, Any]:
        """Poll ``/health`` until the daemon answers (or raise ServeError)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServeError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)

    def health_deep(self) -> dict[str, Any]:
        """``GET /health/deep``: per-component verdicts.

        A critical daemon answers 503 *with* the verdict document; that is
        a health report, not a failure, so the body is returned rather
        than raised.
        """
        try:
            return self._request("GET", "/health/deep")
        except ServeError as error:
            if getattr(error, "status", None) != 503:
                raise
            body = getattr(error, "body", None)
            if isinstance(body, dict) and "components" in body:
                return body
            raise

    def alerts(self, campaign_id: str | None = None) -> dict[str, Any]:
        """``GET /alerts``: the durable, replayed alert history."""
        path = "/alerts"
        if campaign_id is not None:
            path += f"?campaign_id={campaign_id}"
        return self._request("GET", path)

    def stats(self) -> dict[str, Any]:
        """``GET /stats``."""
        return self._request("GET", "/stats")

    def metrics(self, format: str | None = None) -> Any:
        """``GET /metrics``: snapshot dict, or exposition text when
        ``format="prometheus"``."""
        if format == "prometheus":
            response = self._request(
                "GET", "/metrics?format=prometheus", stream=True
            )
            with response:
                return response.read().decode("utf-8")
        return self._request("GET", "/metrics")

    # -- campaign control --------------------------------------------------------
    def submit(self, spec: Mapping[str, Any]) -> dict[str, Any]:
        """``POST /campaigns`` with a ``CampaignSpec`` JSON dict."""
        return self._request("POST", "/campaigns", body=spec)

    def pause(self, campaign_id: str) -> dict[str, Any]:
        """``POST /campaigns/<id>/pause``."""
        return self._request("POST", f"/campaigns/{campaign_id}/pause", body={})

    def resume(self, campaign_id: str) -> dict[str, Any]:
        """``POST /campaigns/<id>/resume``."""
        return self._request("POST", f"/campaigns/{campaign_id}/resume", body={})

    def resume_all(self) -> list[str]:
        """``POST /resume``: re-activate every unfinished stored campaign."""
        return list(self._request("POST", "/resume", body={})["resumed"])

    # -- read side ---------------------------------------------------------------
    def list_campaigns(self) -> list[dict[str, Any]]:
        """``GET /campaigns``."""
        return list(self._request("GET", "/campaigns")["campaigns"])

    def show(self, campaign_id: str) -> dict[str, Any]:
        """``GET /campaigns/<id>``."""
        return self._request("GET", f"/campaigns/{campaign_id}")

    def result(self, campaign_id: str) -> dict[str, Any]:
        """``GET /campaigns/<id>/result`` (ServeError with 409 until done)."""
        return self._request("GET", f"/campaigns/{campaign_id}/result")["result"]

    def log(self, campaign_id: str) -> list[dict[str, Any]]:
        """``GET /campaigns/<id>/log``: the replayed event log."""
        return list(self._request("GET", f"/campaigns/{campaign_id}/log")["events"])

    def report(
        self, kind: str = "summary", campaign_id: str | None = None
    ) -> dict[str, Any]:
        """``GET /reports/summary`` or ``GET /campaigns/<id>/report``.

        Returns the schema-tagged ``repro.report/1`` payload — identical to
        what ``cli report <kind> --json`` prints against the same store.
        """
        if campaign_id is None:
            return self._request("GET", f"/reports/summary?kind={kind}")
        return self._request("GET", f"/campaigns/{campaign_id}/report?kind={kind}")

    def wait(
        self, campaign_id: str, timeout: float = 300.0, poll: float = 0.2
    ) -> dict[str, Any]:
        """Poll :meth:`show` until the campaign completes (or fails/times out)."""
        deadline = time.monotonic() + timeout
        while True:
            summary = self.show(campaign_id)
            if summary["status"] in (COMPLETED, FAILED):
                return summary
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"campaign {campaign_id!r} did not finish within "
                    f"{timeout:.0f}s (status: {summary['status']})"
                )
            time.sleep(poll)

    # -- live tailing ------------------------------------------------------------
    def tail(
        self,
        campaign_id: str,
        after: int | None = None,
        reconnect: int = 0,
    ) -> Iterator[dict[str, Any]]:
        """Stream one campaign's events; yields ``{"event", "id", "data"}``.

        ``after`` is the resume cursor (defaults to :attr:`last_event_id`,
        so ``tail`` after a disconnect continues where the previous call
        stopped).  The stream ends after the server's ``end`` frame; with
        ``reconnect > 0``, dropped connections are retried that many times
        from the cursor instead of raising.
        """
        cursor = self.last_event_id if after is None else int(after)
        self.last_event_id = cursor
        attempts_left = int(reconnect)
        while True:
            try:
                response = self._request(
                    "GET",
                    f"/campaigns/{campaign_id}/events",
                    headers={"Last-Event-ID": str(self.last_event_id)},
                    stream=True,
                )
                with response:
                    for frame in parse_sse_stream(response):
                        if frame["id"] is not None:
                            self.last_event_id = max(
                                self.last_event_id, int(frame["id"])
                            )
                        yield frame
                        if frame["event"] == END_EVENT:
                            return
                # The server closed without an end frame (e.g. hard stop).
                raise ServeError(
                    f"event stream for {campaign_id!r} ended without an "
                    f"end frame"
                )
            except (OSError, ServeError) as error:
                # Only dropped connections are worth retrying; an HTTP error
                # response (404/409/...) is the server's definitive answer.
                if getattr(error, "status", None) is not None:
                    raise
                if attempts_left <= 0:
                    raise
                attempts_left -= 1
                time.sleep(0.2)
