"""The tuner service core: one scheduler + one store behind a thread-safe API.

:class:`TunerService` is the application object the HTTP layer
(:mod:`repro.serve.server`) exposes and the tests drive directly.  It owns

* one :class:`~repro.campaigns.scheduler.CampaignScheduler` running in
  background-pump mode — submissions from any number of HTTP handler
  threads land under the scheduling lock, i.e. exactly at iteration
  boundaries, so serving never perturbs campaign numbers;
* one :class:`~repro.campaigns.store.CampaignStore` (thread-safe since the
  serve PR) holding every campaign's event log and snapshots;
* a :class:`ServerStats` counter block surfaced by ``GET /stats`` and
  :func:`repro.experiments.reporting.server_stats_table`.

Shutdown is a *drain*: :meth:`TunerService.drain` stops the pump, then
checkpoints and pauses every unfinished campaign
(:meth:`Campaign.suspend <repro.campaigns.campaign.Campaign.suspend>`), so
a restarted daemon — or an in-process ``campaign resume`` — continues each
run byte-identically, reusing the PR 4 crash-resume guarantees.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.analytics import Analytics
from repro.campaigns.campaign import Campaign, CampaignSpec, campaign_summary
from repro.campaigns.scheduler import CampaignScheduler, SchedulerTick
from repro.campaigns.store import (
    COMPLETED,
    FAILED,
    PAUSED,
    RESUMABLE,
    CampaignEvent,
    CampaignStore,
    InMemoryStore,
    replay_events,
)
from repro.engine.cache import InMemoryResultCache, ResultCache
from repro.monitor import HealthEvaluator, alert_history
from repro.telemetry import (
    MetricsRegistry,
    get_registry,
    get_tracer,
    merge_snapshots,
    summarize_spans,
)
from repro.utils.exceptions import CampaignError, ConfigurationError

#: Store statuses that end a live event stream (a paused campaign may be
#: resumed later; the client reconnects with its cursor).
TERMINAL_STATUSES = (COMPLETED, FAILED, PAUSED)


@dataclass
class ServerStats:
    """Thread-safe counters of everything the daemon has served so far.

    Backed by a per-service :class:`~repro.telemetry.MetricsRegistry`
    (instruments render as ``serve.<counter>``), so :meth:`snapshot` is a
    single-lock atomic read — no counter in one snapshot can be mid-update
    relative to another — and ``GET /metrics`` can merge these counters
    with the process-wide registry.  Per-instance rather than process-wide
    so two services in one process (or test) never share counts.
    """

    started_at: float = field(default_factory=time.time)

    _COUNTERS = (
        "requests",
        "campaigns_submitted",
        "sse_connections",
        "events_streamed",
        "reports_served",
        "errors",
    )

    def __post_init__(self) -> None:
        self.registry = MetricsRegistry()
        for name in self._COUNTERS:
            self.registry.counter(f"serve.{name}")

    def count(self, counter: str, amount: int = 1) -> None:
        """Atomically bump one of the counters by ``amount``."""
        if counter not in self._COUNTERS:
            raise AttributeError(f"unknown server counter {counter!r}")
        self.registry.counter(f"serve.{counter}").inc(amount)

    def snapshot(self) -> dict[str, Any]:
        """A point-in-time copy, as plain JSON-compatible values."""
        counters = self.registry.snapshot()["counters"]
        payload: dict[str, Any] = {
            "uptime_seconds": round(time.time() - self.started_at, 3)
        }
        for name in self._COUNTERS:
            payload[name] = counters.get(f"serve.{name}", 0)
        return payload


class TunerService:
    """The tuning daemon's application core (transport-agnostic).

    Parameters
    ----------
    store:
        Campaign persistence shared by every client
        (:class:`~repro.campaigns.store.InMemoryStore` by default; pass a
        :class:`~repro.campaigns.store.SqliteStore` for a durable daemon).
    result_cache:
        Content-addressed training cache attached to the shared executor,
        so identical trainings across tenants are served once (an
        :class:`~repro.engine.cache.InMemoryResultCache` by default).
    poll_interval:
        Pump idle wait in seconds (submissions wake it immediately).
    """

    def __init__(
        self,
        store: CampaignStore | None = None,
        result_cache: ResultCache | None = None,
        poll_interval: float = 0.05,
    ) -> None:
        self.store = store if store is not None else InMemoryStore()
        self.scheduler = CampaignScheduler(
            store=self.store,
            result_cache=(
                result_cache if result_cache is not None else InMemoryResultCache()
            ),
        )
        self.stats = ServerStats()
        self.poll_interval = float(poll_interval)
        self._activity = threading.Condition()
        self._tick_seq = 0
        self._last_ticks: dict[str, tuple[int, dict[str, Any]]] = {}
        self._closing = threading.Event()
        self._analytics: Analytics | None = None
        self._analytics_lock = threading.Lock()
        self._health = HealthEvaluator()
        self._health_lock = threading.Lock()
        self.scheduler.add_progress_callback(self._on_tick)

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "TunerService":
        """Start the background scheduler pump; returns self."""
        self.scheduler.start_pump(poll_interval=self.poll_interval)
        return self

    @property
    def closing(self) -> bool:
        """True once a drain has begun (SSE streams end promptly)."""
        return self._closing.is_set()

    def drain(self) -> dict[str, Any]:
        """Graceful shutdown: stop the pump, checkpoint + pause survivors.

        Returns a summary (``suspended`` campaign ids and final stats); the
        store stays open so callers can still read state before
        :meth:`close`.
        """
        self._closing.set()
        self._notify()
        suspended = self.scheduler.drain()
        return {"suspended": suspended, "stats": self.stats.snapshot()}

    def close(self) -> None:
        """Drain (if not already) and release the store."""
        if not self._closing.is_set():
            self.drain()
        with self._analytics_lock:
            if self._analytics is not None:
                self._analytics.close()
                self._analytics = None
        self.store.close()

    # -- submissions and control -------------------------------------------------
    def submit(self, data: Mapping[str, Any]) -> dict[str, Any]:
        """Register the campaign a JSON spec describes; idempotent.

        Unknown spec fields are rejected (a typo'd knob silently ignored is
        a determinism bug waiting to happen).  Re-submitting an identical
        spec deduplicates by content fingerprint: a completed campaign
        replays its stored result, an unfinished one keeps running.
        """
        if self._closing.is_set():
            raise CampaignError("the service is draining; submissions are closed")
        known = {f.name for f in CampaignSpec.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown campaign spec field(s) {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        spec = CampaignSpec.from_dict(data)
        try:
            campaign = self.scheduler.add(spec)
            reused = campaign.reused
        except CampaignError as error:
            if "already scheduled" not in str(error):
                raise
            # Same fingerprint submitted twice while running: point the
            # client at the live campaign instead of failing the request.
            # The stored record is looked up by fingerprint because a
            # renamed-but-identical spec deduplicates onto the original id.
            record = self.store.find_fingerprint(spec.fingerprint())
            campaign = (
                None if record is None else self.scheduler.find(record.campaign_id)
            )
            if campaign is None:  # pragma: no cover - defensive
                raise
            reused = True
        self.stats.count("campaigns_submitted")
        self._notify()
        return {
            "campaign_id": campaign.campaign_id,
            "name": campaign.spec.name,
            "reused": reused,
            "done": campaign.is_done,
            "status": self.store.get_campaign(campaign.campaign_id).status,
        }

    def resume_all(self) -> list[str]:
        """Register every unfinished stored campaign; returns their ids."""
        resumed = []
        for record in self.store.list_campaigns():
            if record.status not in RESUMABLE:
                continue
            if self.scheduler.find(record.campaign_id) is None:
                self.scheduler.add_existing(record.campaign_id)
            else:
                self.scheduler.resume_campaign(record.campaign_id)
            resumed.append(record.campaign_id)
        self._notify()
        return resumed

    def pause(self, campaign_id: str) -> dict[str, Any]:
        """Checkpoint + pause one campaign (404-mapped when unknown)."""
        self.store.get_campaign(campaign_id)  # raises for unknown ids
        paused = self.scheduler.pause_campaign(campaign_id)
        self._notify()
        return {"campaign_id": campaign_id, "paused": paused}

    def resume(self, campaign_id: str) -> dict[str, Any]:
        """(Re)activate one stored or paused campaign."""
        campaign = self.scheduler.resume_campaign(campaign_id)
        self._notify()
        return {
            "campaign_id": campaign_id,
            "done": campaign.is_done,
            "status": self.store.get_campaign(campaign_id).status,
        }

    # -- read side ---------------------------------------------------------------
    def list_campaigns(self) -> list[dict[str, Any]]:
        """One progress summary per stored campaign, in creation order."""
        return [
            campaign_summary(self.store, record.campaign_id)
            for record in self.store.list_campaigns()
        ]

    def show(self, campaign_id: str) -> dict[str, Any]:
        """Record + replayed progress of one campaign (summary + spec)."""
        summary = campaign_summary(self.store, campaign_id)
        summary["spec"] = dict(self.store.get_campaign(campaign_id).spec)
        return summary

    def result(self, campaign_id: str) -> dict[str, Any]:
        """The final :class:`~repro.core.plan.TuningResult` as a JSON dict.

        Raises :class:`CampaignError` until the campaign completed (the
        HTTP layer maps it to 409, so polling clients can tell "not yet"
        from "no such campaign").
        """
        record = self.store.get_campaign(campaign_id)
        if record.status != COMPLETED:
            raise CampaignError(
                f"campaign {campaign_id!r} has not completed "
                f"(status: {record.status})"
            )
        campaign = self.scheduler.find(campaign_id)
        if campaign is None or not campaign.is_done:
            campaign = Campaign.resume(self.store, campaign_id)
        return campaign.result().to_dict()

    def log(self, campaign_id: str) -> list[dict[str, Any]]:
        """The campaign's replayed (generation-collapsed) event log."""
        events = replay_events(self.store.events(campaign_id))
        return [event.to_dict() for event in events]

    def events_since(self, campaign_id: str, after: int) -> list[CampaignEvent]:
        """Replayed events with ``seq > after`` (the SSE catch-up query).

        Replay collapses duplicate iterations across resume generations, so
        a client reconnecting with a cursor never sees an iteration twice —
        the replayed+live sequence equals
        :func:`~repro.campaigns.store.replay_events` of the finished log.
        Use once per stream; the live tail should poll the cheaper
        :meth:`events_after`.
        """
        events = replay_events(self.store.events(campaign_id))
        return [event for event in events if event.seq > after]

    def events_after(self, campaign_id: str, after: int) -> list[CampaignEvent]:
        """Raw events with ``seq > after`` (the cheap live-tail poll).

        No generation collapse: past the initial catch-up everything newer
        than the cursor is a live append, and any event a *newer* generation
        re-executes supersedes only events the client already received —
        exactly what the replayed view would stream too.  The filter is
        pushed into the store query, so an idle poll costs O(new events),
        not O(log).
        """
        return self.store.events(campaign_id, after=after)

    def status(self, campaign_id: str) -> str:
        """The store's lifecycle status for ``campaign_id``."""
        return self.store.get_campaign(campaign_id).status

    def report(self, kind: str, campaign_id: str | None = None) -> dict[str, Any]:
        """A ``repro.report/1`` analytics payload over the live store.

        Backs ``GET /reports/summary`` and ``GET /campaigns/<id>/report``.
        The analytics mirror is created lazily next to the store (in memory
        for an :class:`InMemoryStore`) and refreshed incrementally before
        every report, so a poll between scheduler ticks costs O(new
        events).  The payload equals what ``cli report <kind> --json``
        prints for the same store — one builder serves both surfaces.
        """
        if campaign_id is not None:
            self.store.get_campaign(campaign_id)  # 404-mapped when unknown
        with self._analytics_lock:
            if self._analytics is None:
                self._analytics = Analytics(self.store)
            self._analytics.refresh()
            payload = self._analytics.report(kind, campaign_id)
        self.stats.count("reports_served")
        return payload

    # -- live-activity plumbing (SSE) --------------------------------------------
    def _on_tick(self, tick: SchedulerTick) -> None:
        with self._activity:
            self._tick_seq += 1
            self._last_ticks[tick.campaign_id] = (
                self._tick_seq,
                {
                    "campaign_id": tick.campaign_id,
                    "name": tick.name,
                    "priority": tick.priority,
                    "iteration": tick.iteration,
                    "spent": tick.spent,
                    "budget": tick.budget,
                    "done": tick.done,
                    "slice_generation": tick.slice_generation,
                },
            )
            self._activity.notify_all()

    def _notify(self) -> None:
        with self._activity:
            self._activity.notify_all()

    def wait_for_activity(self, timeout: float) -> None:
        """Block until any scheduler tick / submission lands (or timeout)."""
        with self._activity:
            self._activity.wait(timeout)

    def last_tick(self, campaign_id: str) -> tuple[int, dict[str, Any]] | None:
        """The newest :class:`SchedulerTick` for a campaign, with its seq."""
        with self._activity:
            return self._last_ticks.get(campaign_id)

    # -- stats -------------------------------------------------------------------
    def server_stats(self) -> dict[str, Any]:
        """Everything ``GET /stats`` reports (health + workload + cache)."""
        by_status: dict[str, int] = {}
        for record in self.store.list_campaigns():
            by_status[record.status] = by_status.get(record.status, 0) + 1
        total = sum(by_status.values())
        active = total - by_status.get(COMPLETED, 0) - by_status.get(FAILED, 0)
        stats: dict[str, Any] = self.stats.snapshot()
        stats.update(
            {
                "scheduler_steps": self.scheduler.steps,
                "pump_running": self.scheduler.pump_running,
                "pump_errors": len(self.scheduler.errors),
                "campaigns_total": total,
                "campaigns_active": active,
                "campaigns_completed": by_status.get(COMPLETED, 0),
                "campaigns_paused": by_status.get(PAUSED, 0),
                "campaigns_failed": by_status.get(FAILED, 0),
            }
        )
        cache = self.scheduler.executor.cache
        if cache is not None:
            # One snapshot: a disk-backed cache computes its stats per read
            # (aggregated across every process sharing the file), so four
            # separate reads could straddle a concurrent update.  Built-in
            # caches expose a single-lock stats_snapshot(); custom caches
            # fall back to the four-attribute read.
            snapshot_fn = getattr(cache, "stats_snapshot", None)
            if snapshot_fn is not None:
                cache_stats = dict(snapshot_fn())
            else:
                snapshot = cache.stats
                cache_stats = {
                    "requests": snapshot.requests,
                    "hits": snapshot.hits,
                    "misses": snapshot.misses,
                    "evictions": snapshot.evictions,
                }
            cache_stats["persistent"] = hasattr(cache, "tier_stats")
            stats["cache"] = cache_stats
        return stats

    def metrics_snapshot(self) -> dict[str, Any]:
        """One merged metrics snapshot: process registry + server counters.

        Backs ``GET /metrics``.  The process-wide registry carries the
        engine/acquisition/session instruments; the service's
        :class:`ServerStats` registry carries the HTTP counters.
        """
        return merge_snapshots(
            get_registry().snapshot(), self.stats.registry.snapshot()
        )

    def health_deep(self) -> dict[str, Any]:
        """Per-component health verdicts (the ``GET /health/deep`` body).

        Folds one merged metrics snapshot into the service-scope rules
        (windows keyed by evaluation count, so repeated identical polls
        are deterministic) and combines the result with the durable alert
        state of non-terminal campaigns and the daemon's own drain/pump
        flags.  The HTTP layer returns 503 while ``status`` is
        ``critical`` — the admission-control signal.
        """
        pump_error = None
        if self.scheduler.errors:
            failed_id, exc = self.scheduler.errors[-1]
            pump_error = f"{failed_id}: {exc}"
        with self._health_lock:
            self._health.observe(self.metrics_snapshot())
            return self._health.health(
                store=self.store,
                serve_state={
                    "draining": self.closing,
                    "pump_error": pump_error,
                },
            )

    def alerts(self, campaign_id: str | None = None) -> dict[str, Any]:
        """The durable, replayed alert history (``GET /alerts``).

        Exactly the rows ``cli monitor alerts`` prints for the same
        store; ``campaign_id`` narrows to one campaign (404-mapped when
        unknown).
        """
        if campaign_id is not None:
            self.store.get_campaign(campaign_id)  # 404-mapped when unknown
        rows = alert_history(self.store, campaign_id)
        return {"count": len(rows), "alerts": rows}

    def span_summary(self, campaign_id: str) -> dict[str, Any]:
        """Aggregate a campaign's persisted telemetry spans by span name.

        Backs ``GET /campaigns/<id>/spans``.  Reads the durable
        ``telemetry`` events (written only while a live tracer is
        installed), so the summary survives daemon restarts alongside the
        campaign itself.
        """
        self.store.get_campaign(campaign_id)  # 404-mapped when unknown
        total, spans = summarize_spans(
            event.payload
            for event in self.store.events(campaign_id, kinds=("telemetry",))
        )
        return {
            "campaign_id": campaign_id,
            "tracing": get_tracer().enabled,
            "span_count": total,
            "spans": spans,
        }
