"""The HTTP layer of the tuner service daemon (stdlib ``http.server``).

A :class:`TunerServer` binds one :class:`~repro.serve.app.TunerService` to a
``ThreadingHTTPServer``, so any number of concurrent clients can drive one
shared scheduler.  The API is JSON over plain HTTP:

=======  ==============================  =========================================
Method   Path                            Meaning
=======  ==============================  =========================================
GET      ``/health``                     liveness probe (status + uptime)
GET      ``/health/deep``                per-component health verdicts (503
                                         while any component is critical)
GET      ``/alerts``                     durable alert history
                                         (``?campaign_id=`` narrows to one)
GET      ``/stats``                      server/scheduler/cache statistics
GET      ``/campaigns``                  progress summary of every campaign
POST     ``/campaigns``                  submit a ``CampaignSpec`` JSON body
GET      ``/campaigns/<id>``             record + replayed progress of one campaign
GET      ``/campaigns/<id>/result``      final ``TuningResult`` (409 until done)
GET      ``/campaigns/<id>/log``         replayed event log as a JSON array
GET      ``/campaigns/<id>/events``      Server-Sent-Events live tail (cursor:
                                         ``Last-Event-ID`` header or ``?after=N``)
GET      ``/campaigns/<id>/report``      per-campaign analytics report
                                         (``?kind=summary|slices|fulfillment|cache``)
GET      ``/campaigns/<id>/spans``       per-campaign telemetry span summary
GET      ``/reports/summary``            fleet-wide ``repro.report/1`` payload
                                         (``?kind=`` selects any report kind)
GET      ``/metrics``                    merged metrics-registry snapshot
                                         (``?format=prometheus`` for text
                                         exposition)
POST     ``/campaigns/<id>/pause``       checkpoint + pause
POST     ``/campaigns/<id>/resume``      re-activate a paused/stored campaign
POST     ``/resume``                     re-activate every unfinished campaign
=======  ==============================  =========================================

Report payloads are built by :meth:`TunerService.report
<repro.serve.app.TunerService.report>` — the same builder behind ``cli
report --json`` — so the two surfaces emit equal JSON for the same store.

Library errors map onto statuses clients can act on: unknown campaign ids
are 404, invalid specs 400, "not completed yet" and other lifecycle
conflicts 409.  Every handler thread only touches the thread-safe service
facade, never campaign internals.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.serve.app import TunerService
from repro.serve.stream import stream_campaign_events
from repro.telemetry import get_tracer, render_prometheus
from repro.utils.exceptions import (
    CampaignError,
    ConfigurationError,
    ReproError,
    ServeError,
)

_ID = r"(?P<campaign_id>[A-Za-z0-9._-]+)"

#: ``(method, compiled path regex, handler attribute name)`` routing table.
_ROUTES: tuple[tuple[str, re.Pattern, str], ...] = (
    ("GET", re.compile(r"^/health/deep/?$"), "handle_health_deep"),
    ("GET", re.compile(r"^/health/?$"), "handle_health"),
    ("GET", re.compile(r"^/alerts/?$"), "handle_alerts"),
    ("GET", re.compile(r"^/stats/?$"), "handle_stats"),
    ("GET", re.compile(r"^/campaigns/?$"), "handle_list"),
    ("POST", re.compile(r"^/campaigns/?$"), "handle_submit"),
    ("POST", re.compile(r"^/resume/?$"), "handle_resume_all"),
    ("GET", re.compile(rf"^/campaigns/{_ID}/?$"), "handle_show"),
    ("GET", re.compile(rf"^/campaigns/{_ID}/result/?$"), "handle_result"),
    ("GET", re.compile(rf"^/campaigns/{_ID}/log/?$"), "handle_log"),
    ("GET", re.compile(rf"^/campaigns/{_ID}/events/?$"), "handle_events"),
    ("GET", re.compile(rf"^/campaigns/{_ID}/report/?$"), "handle_report"),
    ("GET", re.compile(rf"^/campaigns/{_ID}/spans/?$"), "handle_spans"),
    ("GET", re.compile(r"^/reports/summary/?$"), "handle_reports_summary"),
    ("GET", re.compile(r"^/metrics/?$"), "handle_metrics"),
    ("POST", re.compile(rf"^/campaigns/{_ID}/pause/?$"), "handle_pause"),
    ("POST", re.compile(rf"^/campaigns/{_ID}/resume/?$"), "handle_resume"),
)


def _status_for(error: Exception) -> int:
    """Map a library error onto the HTTP status the client should see."""
    if isinstance(error, CampaignError):
        return 404 if "unknown campaign" in str(error) else 409
    if isinstance(error, (ConfigurationError, ServeError)):
        return 400
    if isinstance(error, ReproError):
        return 400
    return 500


class _Handler(BaseHTTPRequestHandler):
    """One request; dispatches through the routing table above."""

    protocol_version = "HTTP/1.1"
    server: "TunerServer"  # type: ignore[assignment]

    # -- plumbing ----------------------------------------------------------------
    @property
    def app(self) -> TunerService:
        return self.server.app

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Route per-request logging through the server's optional logger."""
        if self.server.log is not None:
            self.server.log(f"{self.address_string()} {format % args}")

    @staticmethod
    def _cursor(value: str, source: str) -> int:
        """Parse an SSE cursor; a malformed one is the client's fault (400)."""
        try:
            return int(value)
        except ValueError:
            raise ServeError(
                f"{source} must be an integer event sequence, got {value!r}"
            ) from None

    def _read_json_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length", "0") or "0")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeError(f"request body is not valid JSON: {error}") from None
        if not isinstance(body, dict):
            raise ServeError("request body must be a JSON object")
        return body

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, status: int = 200) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        self.app.stats.count("requests")
        path = self.path.split("?", 1)[0]
        for route_method, pattern, attr in _ROUTES:
            if route_method != method:
                continue
            match = pattern.match(path)
            if match is None:
                continue
            handler: Callable[..., None] = getattr(self, attr)
            with get_tracer().span(
                "http.request",
                attributes={"method": method, "route": attr},
            ) as span:
                try:
                    handler(**match.groupdict())
                except (BrokenPipeError, ConnectionResetError):
                    pass  # the client went away mid-response; nothing to send
                except Exception as error:  # noqa: BLE001 - mapped to a status
                    self.app.stats.count("errors")
                    status = _status_for(error)
                    span.set_attribute("status_code", status)
                    self._send_json({"error": str(error)}, status=status)
            return
        self._send_json(
            {"error": f"no route for {method} {path}"}, status=404
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("POST")

    # -- endpoints ---------------------------------------------------------------
    def handle_health(self) -> None:
        self._send_json(
            {
                "status": "draining" if self.app.closing else "ok",
                "uptime_seconds": self.app.stats.snapshot()["uptime_seconds"],
            }
        )

    def handle_health_deep(self) -> None:
        verdict = self.app.health_deep()
        # 503 while critical: load balancers and submitters can use this
        # route as an admission-control gate, not just a status page.
        status = 503 if verdict["status"] == "critical" else 200
        self._send_json(verdict, status=status)

    def handle_alerts(self) -> None:
        self._send_json(self.app.alerts(self._query_param("campaign_id")))

    def handle_stats(self) -> None:
        self._send_json(self.app.server_stats())

    def handle_list(self) -> None:
        self._send_json({"campaigns": self.app.list_campaigns()})

    def handle_submit(self) -> None:
        self._send_json(self.app.submit(self._read_json_body()), status=201)

    def handle_resume_all(self) -> None:
        self._send_json({"resumed": self.app.resume_all()})

    def handle_show(self, campaign_id: str) -> None:
        self._send_json(self.app.show(campaign_id))

    def handle_result(self, campaign_id: str) -> None:
        self._send_json(
            {"campaign_id": campaign_id, "result": self.app.result(campaign_id)}
        )

    def handle_log(self, campaign_id: str) -> None:
        self._send_json(
            {"campaign_id": campaign_id, "events": self.app.log(campaign_id)}
        )

    def _query_param(self, key: str) -> str | None:
        query = self.path.partition("?")[2]
        for pair in query.split("&"):
            name, _, value = pair.partition("=")
            if name == key and value:
                return value
        return None

    def handle_report(self, campaign_id: str) -> None:
        kind = self._query_param("kind") or "summary"
        self._send_json(self.app.report(kind, campaign_id))

    def handle_reports_summary(self) -> None:
        kind = self._query_param("kind") or "summary"
        self._send_json(self.app.report(kind))

    def handle_spans(self, campaign_id: str) -> None:
        self._send_json(self.app.span_summary(campaign_id))

    def handle_metrics(self) -> None:
        fmt = self._query_param("format")
        if fmt == "prometheus":
            self._send_text(render_prometheus(self.app.metrics_snapshot()))
            return
        if fmt is not None and fmt != "json":
            raise ServeError(
                f"unknown metrics format {fmt!r}; use json or prometheus"
            )
        self._send_json(self.app.metrics_snapshot())

    def handle_pause(self, campaign_id: str) -> None:
        self._send_json(self.app.pause(campaign_id))

    def handle_resume(self, campaign_id: str) -> None:
        self._send_json(self.app.resume(campaign_id))

    def handle_events(self, campaign_id: str) -> None:
        after = 0
        query = self.path.partition("?")[2]
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key == "after" and value:
                after = self._cursor(value, "after")
        header_cursor = self.headers.get("Last-Event-ID")
        if header_cursor:
            after = max(after, self._cursor(header_cursor, "Last-Event-ID"))
        # Validate before committing to the SSE content type, so unknown
        # campaigns still get a clean JSON 404 (the generator body does not
        # run until the first frame is pulled).
        self.app.store.get_campaign(campaign_id)
        frames = stream_campaign_events(self.app, campaign_id, after=after)
        self.app.stats.count("sse_connections")
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE bodies have no predictable length; close delimits the stream.
        self.send_header("Connection", "close")
        self.end_headers()
        for frame in frames:
            self.wfile.write(frame.encode("utf-8"))
            self.wfile.flush()
            if not frame.startswith(":"):
                self.app.stats.count("events_streamed")
        self.close_connection = True


class TunerServer:
    """``ThreadingHTTPServer`` wrapper around one :class:`TunerService`.

    Parameters
    ----------
    app:
        The service core (its scheduler pump is *not* started here; call
        ``app.start()`` — or use :func:`serve_until` from the CLI).
    host / port:
        Bind address; port 0 picks a free port (see :attr:`port`).
    log:
        Optional ``callable(str)`` receiving one line per request; None
        (the default) disables request logging.
    """

    def __init__(
        self,
        app: TunerService,
        host: str = "127.0.0.1",
        port: int = 0,
        log: Callable[[str], None] | None = None,
    ) -> None:
        self.app = app
        self.log = log
        self._httpd = ThreadingHTTPServer((host, int(port)), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = app  # type: ignore[attr-defined]
        self._httpd.log = log  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        """Base URL clients should use."""
        return f"http://{self.host}:{self.port}"

    def start_background(self) -> "TunerServer":
        """Serve on a daemon thread; returns self."""
        if self._thread is not None and self._thread.is_alive():
            raise ServeError("the server is already running")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="tuner-http-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._httpd.serve_forever(poll_interval=0.1)

    def shutdown(self) -> None:
        """Stop accepting requests and join the background thread (if any)."""
        self._httpd.shutdown()
        if self._thread is not None and self._thread.is_alive():
            self._thread.join()
        self._thread = None
        self._httpd.server_close()
